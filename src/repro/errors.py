"""Exception hierarchy for the DHQP reproduction.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  Sub-hierarchies mirror the
major subsystems: SQL front end, catalog/binding, optimization,
execution, providers (OLE DB layer), and distributed transactions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SqlError(ReproError):
    """Base class for errors in the SQL front end."""


class LexerError(SqlError):
    """Raised when the lexer encounters an invalid token."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class ParseError(SqlError):
    """Raised when the parser cannot produce an AST."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class BindError(SqlError):
    """Raised when names cannot be resolved against the catalog."""


class TypeCheckError(SqlError):
    """Raised when an expression is ill-typed."""


class CatalogError(ReproError):
    """Raised for catalog inconsistencies (missing/duplicate objects)."""


class ConstraintError(ReproError):
    """Raised when a row violates a table constraint."""


class OptimizerError(ReproError):
    """Raised when optimization fails to produce a plan."""


class DecoderError(OptimizerError):
    """Raised when a logical tree cannot be decoded into remote SQL."""


class ExecutionError(ReproError):
    """Raised for runtime failures in the execution engine."""


class ProviderError(ReproError):
    """Base class for OLE DB provider-layer errors."""


class NotSupportedError(ProviderError):
    """A provider was asked for a capability it does not expose."""


class ConnectionError_(ProviderError):
    """Raised when a data source object cannot be initialized."""


class AuthenticationError(ConnectionError_):
    """Raised when the supplied credentials are rejected."""


class SchemaValidationError(ProviderError):
    """Raised by delayed schema validation when a remote schema drifted."""


class NetworkError(ProviderError):
    """Base class for simulated network failures (see docs/FAULT_MODEL.md).

    Every failure a :class:`~repro.resilience.faults.FaultInjector` can
    produce surfaces as one of the three subclasses below, so callers
    can distinguish "retry it" from "give up" from "the server is gone".
    """


class TransientNetworkError(NetworkError):
    """A message was lost or a connection dropped; retrying the same
    operation may succeed (the retryable class)."""


class RemoteTimeoutError(NetworkError):
    """A remote operation exceeded its per-message timeout or the
    statement exhausted its per-query timeout budget."""


class ServerUnavailableError(NetworkError):
    """The remote server is down/unreachable; retrying within the same
    statement will not help."""


class CircuitOpenError(ServerUnavailableError):
    """A linked server's circuit breaker is open: the operation was
    rejected *without* touching the network.  Subclasses
    :class:`ServerUnavailableError` so every unavailability handler
    (pruning, partial results, fail-stop DML) treats it identically."""


class TransactionError(ReproError):
    """Base class for transaction failures."""


class TransactionAborted(TransactionError):
    """Raised when a distributed transaction is rolled back."""


class TransactionInDoubtError(TransactionError):
    """A two-phase commit lost its coordinator (or a participant) after
    prepare: the outcome is unknown until ``Coordinator.recover()``
    replays the durable log and re-drives the decision.  Reads and
    writes against an in-doubt member fail fast with this error so no
    statement observes torn state.

    ``txn_id`` identifies the in-doubt distributed transaction and
    ``crash_point`` names the protocol step where the failure was
    injected (None for statements merely *blocked by* an in-doubt
    member rather than crashed themselves).
    """

    def __init__(
        self,
        message: str,
        txn_id: "int | None" = None,
        crash_point: "str | None" = None,
    ):
        super().__init__(message)
        self.txn_id = txn_id
        self.crash_point = crash_point


class UnknownSetOptionError(SqlError):
    """``SET <option>`` named an option the engine does not recognize.

    Carries the offending option and the supported set so callers (and
    error messages) can point at exactly what is available instead of
    a bare "unknown option" string.
    """

    def __init__(self, option: str, supported: "tuple[str, ...]"):
        self.option = option
        self.supported = tuple(supported)
        super().__init__(
            f"unknown SET option {option.upper()!r}; supported options "
            f"are: {', '.join(self.supported)}"
        )


class GovernorError(ReproError):
    """Base class for Resource Governor failures (admission control,
    workload classification, memory grants)."""


class AdmissionTimeoutError(GovernorError):
    """Admission control shed this statement: the pool's concurrency
    gate stayed full past the workload group's deadline, or the bounded
    wait queue had no room.  Overload degrades by fast typed rejection,
    never by unbounded queueing.
    """

    def __init__(
        self,
        message: str,
        group: "str | None" = None,
        pool: "str | None" = None,
        wait_ms: float = 0.0,
    ):
        super().__init__(message)
        self.group = group
        self.pool = pool
        self.wait_ms = wait_ms


class GrantTimeoutError(GovernorError):
    """A memory grant could not be satisfied before the workload
    group's ``request_timeout_ms`` deadline on the simulated clock.
    The statement never started executing, so no partial effects exist.
    """

    def __init__(
        self,
        message: str,
        group: "str | None" = None,
        pool: "str | None" = None,
        required_kb: float = 0.0,
        wait_ms: float = 0.0,
    ):
        super().__init__(message)
        self.group = group
        self.pool = pool
        self.required_kb = required_kb
        self.wait_ms = wait_ms


class FullTextError(ReproError):
    """Raised for full-text catalog or query-language errors."""
