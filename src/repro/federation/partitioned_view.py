"""Partitioned view definition and member discovery.

"A partitioned view unions horizontally partitioned data from a set of
member tables across one or more servers ... The range of values in
each member table is enforced by a CHECK constraint on a column
designated as the partitioning column.  Each table must store a
disjoint range of partitioned values."
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.errors import CatalogError, SqlError
from repro.sql import ast
from repro.sql.parser import parse_sql
from repro.storage.catalog import Database, ViewDefinition
from repro.types.intervals import IntervalSet


class PartitionMember:
    """One member table of a partitioned view."""

    __slots__ = ("server_name", "database_name", "schema_name", "table_name",
                 "domain", "partition_column")

    def __init__(
        self,
        table_name: str,
        domain: Optional[IntervalSet],
        partition_column: Optional[str],
        server_name: Optional[str] = None,
        database_name: Optional[str] = None,
        schema_name: str = "dbo",
    ):
        self.table_name = table_name
        self.domain = domain
        self.partition_column = partition_column
        self.server_name = server_name
        self.database_name = database_name
        self.schema_name = schema_name

    @property
    def is_remote(self) -> bool:
        return self.server_name is not None

    def qualified_name(self) -> str:
        parts = [
            p
            for p in (
                self.server_name,
                self.database_name,
                self.schema_name,
                self.table_name,
            )
            if p
        ]
        return ".".join(parts)

    def accepts(self, value: Any) -> bool:
        """Does this member's partition domain admit ``value``?"""
        if self.domain is None:
            return True
        return self.domain.contains(value)

    def __repr__(self) -> str:
        return f"PartitionMember({self.qualified_name()}, {self.domain!r})"


def create_partitioned_view(
    engine: Any,  # ServerInstance
    view_name: str,
    member_names: Sequence[str],
    database: Optional[str] = None,
) -> ViewDefinition:
    """CREATE VIEW <name> AS SELECT * FROM m1 UNION ALL SELECT * FROM m2
    ... over the given member names (which may be four-part remote
    names)."""
    if not member_names:
        raise SqlError("a partitioned view needs at least one member")
    body = " UNION ALL ".join(
        f"SELECT * FROM {member}" for member in member_names
    )
    engine.execute(f"CREATE VIEW {view_name} AS {body}")
    db = engine.catalog.database(database)
    return db.view(view_name)


def partition_members(
    engine: Any,
    database: Database,
    schema_name: str,
    view: ViewDefinition,
) -> list[PartitionMember]:
    """Resolve a partitioned view's members and their partition domains.

    Local members read CHECK constraints from the catalog; remote
    members read them through the CHECK_CONSTRAINTS schema rowset
    cached on the linked server (Section 4.1.5 + Section 3's metadata
    contract).
    """
    stmt = parse_sql(view.sql_text)
    if not isinstance(stmt, ast.SelectStmt):
        raise CatalogError(f"view {view.name} is not a SELECT")
    branches = [stmt] + list(stmt.union_all)
    members: list[PartitionMember] = []
    for branch in branches:
        if len(branch.sources) != 1 or not isinstance(
            branch.sources[0], ast.NamedTable
        ):
            raise CatalogError(
                f"partitioned view {view.name}: branches must be single "
                "table SELECTs"
            )
        named = branch.sources[0]
        parts = list(named.parts)
        if len(parts) == 4:
            server_name, database_name, member_schema, table_name = parts
            server = engine.linked_server(server_name)
            if server is None:
                raise CatalogError(f"unknown linked server {server_name!r}")
            info = server.table_info(table_name, database_name)
            column, domain = _single_domain(info.check_domains)
            members.append(
                PartitionMember(
                    table_name,
                    domain,
                    column,
                    server_name,
                    database_name,
                    member_schema or "dbo",
                )
            )
        else:
            table_name = parts[-1]
            member_schema = parts[-2] if len(parts) >= 2 else schema_name
            table = database.table(table_name, member_schema or schema_name)
            domains = {
                c.column_name.lower(): c.domain
                for c in table.check_constraints()
                if c.column_name and c.domain is not None
            }
            column, domain = _single_domain(domains)
            members.append(
                PartitionMember(
                    table_name,
                    domain,
                    column,
                    None,
                    database.name,
                    member_schema or schema_name,
                )
            )
    return members


def validate_disjoint(members: Sequence[PartitionMember]) -> None:
    """Check members hold disjoint ranges ("Each table must store a
    disjoint range of partitioned values")."""
    for i, a in enumerate(members):
        for b in members[i + 1:]:
            if a.domain is None or b.domain is None:
                raise CatalogError(
                    "partitioned view members must all carry CHECK "
                    "constraints on the partitioning column"
                )
            if not a.domain.disjoint_from(b.domain):
                raise CatalogError(
                    f"partition domains of {a.table_name} and "
                    f"{b.table_name} overlap"
                )


def _single_domain(domains: dict) -> tuple[Optional[str], Optional[IntervalSet]]:
    if len(domains) == 1:
        ((column, domain),) = domains.items()
        return column, domain
    return None, None
