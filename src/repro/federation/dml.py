"""DML through partitioned views.

Rows route to the member whose CHECK-constraint domain admits the
partitioning value.  Statements that touch more than one server run
under a distributed transaction coordinated by the DTC (Section 2):
every touched server contributes one branch, and any failure rolls the
whole statement back atomically.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Dict, Optional

from repro.errors import ConstraintError, ExecutionError, NetworkError
from repro.federation.partitioned_view import (
    PartitionMember,
    partition_members,
)
from repro.network.channel import current_statement_scope
from repro.sql import ast
from repro.storage.catalog import Database, ViewDefinition
from repro.types.datatypes import infer_type


def _render_value(value: Any) -> str:
    if value is None:
        return "NULL"
    return infer_type(value).render_literal(value)


class _RemoteBranch:
    """Resource-manager wrapper for a remote member's transaction branch.

    2PC protocol messages (PREPARE/COMMIT/ABORT) traverse the member's
    :class:`~repro.network.channel.NetworkChannel` as control messages
    *before* the remote branch acts, so injected channel faults hit the
    protocol exactly like any other remote command — and because the
    fault fires before the remote side executes, a retried message never
    double-applies.  ABORT tolerates an unreachable peer: under presumed
    abort a participant that never saw a commit decision rolls back
    unilaterally, so the coordinator's sweep must not wedge on it.
    """

    def __init__(self, server: Any, rm: Any):
        self.server = server
        self.rm = rm

    @property
    def channel(self) -> Any:
        return self.server.channel

    def _send(self, verb: str) -> None:
        name = getattr(self.rm, "name", "txn")
        self.server.channel.send_command(f"DTC {verb} {name}")

    def prepare(self) -> bool:
        self._send("PREPARE")
        return self.rm.prepare()

    def commit(self) -> None:
        self._send("COMMIT")
        self.rm.commit()

    def abort(self) -> None:
        try:
            self._send("ABORT")
        except NetworkError:
            pass  # presumed abort: the member rolls back on its own
        self.rm.abort()

    def touched_tables(self) -> frozenset:
        tables = getattr(self.rm, "touched_tables", None)
        return frozenset(tables()) if callable(tables) else frozenset()


def _fail_if_in_doubt(engine: Any, members: list[PartitionMember]) -> None:
    """The in-doubt resolver gate: refuse DML that would touch a member
    (or local table) held by an in-doubt distributed transaction."""
    engine.dtc.check_accessible(
        servers={m.server_name for m in members if m.is_remote},
        tables={m.table_name for m in members},
    )


def _txn_span(session: "_DmlSession") -> Any:
    """A ``txn`` trace span parented under the current statement span."""
    trace, __ = current_statement_scope()
    if trace is None:
        return nullcontext()
    return trace.span(
        "txn",
        txn_id=session.dtxn.txn_id,
        coordinator=session.engine.dtc.name,
    )


class _DmlSession:
    """Per-statement bookkeeping: transactions across touched servers."""

    def __init__(self, engine: Any):
        self.engine = engine
        self.local_txn = None
        self.remote_sessions: Dict[str, Any] = {}
        self.remote_txns: Dict[str, Any] = {}
        self.dtxn = engine.dtc.begin()

    def local_transaction(self):
        if self.local_txn is None:
            self.local_txn = self.engine.begin_transaction()
            self.dtxn.enlist(self.engine.name, self.local_txn)
        return self.local_txn

    def remote(self, member: PartitionMember):
        """(session, command factory) for a remote member's server."""
        key = member.server_name.lower()
        if key not in self.remote_sessions:
            server = self.engine.linked_server(member.server_name)
            if server is None:
                raise ExecutionError(
                    f"unknown linked server {member.server_name!r}"
                )
            session = server.create_session()
            self.remote_sessions[key] = session
            branch = session.begin_transaction()
            self.remote_txns[key] = branch
            self.dtxn.enlist(member.server_name, _RemoteBranch(server, branch))
        return self.remote_sessions[key]

    def execute_remote(self, member: PartitionMember, sql_text: str) -> None:
        """Ship one member's DML under the server's retry policy.

        Faults fire on the channel before the remote side executes, so
        a retried command never double-applies; a persistent failure
        propagates and the caller aborts the distributed transaction.
        """
        session = self.remote(member)
        server = self.engine.linked_server(member.server_name)

        def attempt():
            command = session.create_command()
            command.set_text(sql_text)
            command.execute()

        server.run_with_retry(
            attempt, description=f"pv-dml:{member.server_name}"
        )

    def commit(self) -> None:
        self.engine.dtc.commit(self.dtxn)

    def abort(self) -> None:
        if self.dtxn.state == self.dtxn.IN_DOUBT:
            return  # only recovery may resolve an in-doubt transaction
        self.engine.dtc.abort(self.dtxn)


def _resolve_members(
    engine: Any, database: Database, schema_name: str, view: ViewDefinition
) -> list[PartitionMember]:
    members = partition_members(engine, database, schema_name, view)
    return members


def _route(members: list[PartitionMember], value: Any) -> PartitionMember:
    for member in members:
        if member.accepts(value):
            return member
    raise ConstraintError(
        f"value {value!r} fits no partition of the view"
    )


def insert_into_partitioned_view(
    engine: Any,
    database: Database,
    schema_name: str,
    view: ViewDefinition,
    stmt: ast.InsertStmt,
    params: Optional[Dict[str, Any]],
) -> int:
    members = _resolve_members(engine, database, schema_name, view)
    _fail_if_in_doubt(engine, members)
    if stmt.select is not None:
        source = engine._execute_select(stmt.select, params)
        raw_rows = source.rows
        column_names = stmt.columns or source.columns
    else:
        assert stmt.rows is not None
        raw_rows = [
            tuple(engine._eval_standalone(expr, params) for expr in row)
            for row in stmt.rows
        ]
        column_names = stmt.columns
    # column layout comes from any local member, or the remote schema
    reference_schema = _member_schema(engine, database, members[0])
    names = column_names or [c.name for c in reference_schema]
    partition_column = members[0].partition_column
    if partition_column is None:
        raise ConstraintError(
            f"view {view.name} has no partitioning CHECK constraints"
        )
    partition_ordinal = [n.lower() for n in names].index(
        partition_column.lower()
    )
    partition_type = reference_schema[
        reference_schema.ordinal_of(partition_column)
    ].type
    session = _DmlSession(engine)
    with _txn_span(session):
        try:
            count = 0
            for raw in raw_rows:
                value = partition_type.validate(raw[partition_ordinal])
                member = _route(members, value)
                if member.is_remote:
                    sql_text = (
                        f"INSERT INTO {member.database_name or 'master'}."
                        f"{member.schema_name}.{member.table_name} "
                        f"({', '.join(names)}) VALUES "
                        f"({', '.join(_render_value(v) for v in raw)})"
                    )
                    session.execute_remote(member, sql_text)
                else:
                    table = database.table(
                        member.table_name, member.schema_name
                    )
                    arranged = engine._arrange_insert_row(
                        table, list(names), raw
                    )
                    table.insert(arranged, txn=session.local_transaction())
                count += 1
            session.commit()
            return count
        except Exception:
            session.abort()
            raise


def update_partitioned_view(
    engine: Any,
    database: Database,
    schema_name: str,
    view: ViewDefinition,
    stmt: ast.UpdateStmt,
    params: Optional[Dict[str, Any]],
) -> int:
    """UPDATE fans out to every member (each applies its own WHERE);
    updates that would move a row across partitions are rejected, as in
    SQL Server 2000's first release of partitioned views."""
    members = _resolve_members(engine, database, schema_name, view)
    _fail_if_in_doubt(engine, members)
    partition_column = members[0].partition_column
    assignments_touch_partition = partition_column is not None and any(
        name.lower() == partition_column.lower()
        for name, __ in stmt.assignments
    )
    if assignments_touch_partition:
        raise ConstraintError(
            "updating the partitioning column through a partitioned view "
            "is not supported; DELETE + INSERT instead"
        )
    session = _DmlSession(engine)
    with _txn_span(session):
        try:
            count = 0
            for member in members:
                count += _update_one_member(
                    engine, database, session, member, stmt, params
                )
            session.commit()
            return count
        except Exception:
            session.abort()
            raise


def _update_one_member(
    engine: Any,
    database: Database,
    session: _DmlSession,
    member: PartitionMember,
    stmt: ast.UpdateStmt,
    params: Optional[Dict[str, Any]],
) -> int:
    if member.is_remote:
        set_sql = ", ".join(
            f"{name} = {_render_expr(engine, expr, params)}"
            for name, expr in stmt.assignments
        )
        where_sql = (
            f" WHERE {_render_where(engine, stmt.where, params)}"
            if stmt.where is not None
            else ""
        )
        sql_text = (
            f"UPDATE {member.database_name or 'master'}."
            f"{member.schema_name}.{member.table_name} SET {set_sql}"
            f"{where_sql}"
        )
        session.execute_remote(member, sql_text)
        # remote rowcount is not surfaced through the command; count 0
        return 0
    table = database.table(member.table_name, member.schema_name)
    predicate = engine._bind_table_predicate(table, stmt.where)
    matching = list(
        (rid, row)
        for rid, row in table.scan()
        if predicate is None or predicate(row, params or {}) is True
    )
    txn = session.local_transaction()
    count = 0
    for rid, row in matching:
        new_row = list(row)
        for column_name, expr in stmt.assignments:
            ordinal = table.schema.ordinal_of(column_name)
            new_row[ordinal] = engine._eval_row_expr(table, expr, row, params)
        table.update(rid, tuple(new_row), txn=txn)
        count += 1
    return count


def delete_from_partitioned_view(
    engine: Any,
    database: Database,
    schema_name: str,
    view: ViewDefinition,
    stmt: ast.DeleteStmt,
    params: Optional[Dict[str, Any]],
) -> int:
    members = _resolve_members(engine, database, schema_name, view)
    _fail_if_in_doubt(engine, members)
    session = _DmlSession(engine)
    with _txn_span(session):
        try:
            count = 0
            for member in members:
                if member.is_remote:
                    where_sql = (
                        f" WHERE {_render_where(engine, stmt.where, params)}"
                        if stmt.where is not None
                        else ""
                    )
                    sql_text = (
                        f"DELETE FROM {member.database_name or 'master'}."
                        f"{member.schema_name}.{member.table_name}{where_sql}"
                    )
                    session.execute_remote(member, sql_text)
                else:
                    table = database.table(
                        member.table_name, member.schema_name
                    )
                    predicate = engine._bind_table_predicate(
                        table, stmt.where
                    )
                    matching = list(
                        (rid, row)
                        for rid, row in table.scan()
                        if predicate is None
                        or predicate(row, params or {}) is True
                    )
                    txn = session.local_transaction()
                    for rid, __ in matching:
                        table.delete(rid, txn=txn)
                        count += 1
            session.commit()
            return count
        except Exception:
            session.abort()
            raise


def _member_schema(engine: Any, database: Database, member: PartitionMember):
    if member.is_remote:
        server = engine.linked_server(member.server_name)
        return server.table_info(member.table_name).schema
    return database.table(member.table_name, member.schema_name).schema


def _render_expr(engine: Any, expr: ast.Expr, params: Optional[Dict]) -> str:
    value = engine._eval_standalone(expr, params)
    return _render_value(value)


def _render_where(engine: Any, where: ast.Expr, params: Optional[Dict]) -> str:
    """Render a WHERE clause for a remote member, substituting
    parameter values as literals."""
    return _render_predicate(engine, where, params)


def _render_predicate(engine: Any, expr: ast.Expr, params: Optional[Dict]) -> str:
    if isinstance(expr, ast.BinaryExpr):
        left = _render_predicate(engine, expr.left, params)
        right = _render_predicate(engine, expr.right, params)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, ast.NotExpr):
        return f"(NOT {_render_predicate(engine, expr.operand, params)})"
    if isinstance(expr, ast.NameExpr):
        return expr.parts[-1]
    if isinstance(expr, ast.LiteralExpr):
        return _render_value(expr.value)
    if isinstance(expr, ast.ParamExpr):
        name = expr.name.lstrip("@")
        if params is None or name not in params:
            raise ExecutionError(f"parameter @{name} not supplied")
        return _render_value(params[name])
    if isinstance(expr, ast.IsNullExpr):
        middle = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"({_render_predicate(engine, expr.operand, params)} {middle})"
    if isinstance(expr, ast.BetweenExpr):
        operand = _render_predicate(engine, expr.operand, params)
        low = _render_predicate(engine, expr.low, params)
        high = _render_predicate(engine, expr.high, params)
        body = f"({operand} BETWEEN {low} AND {high})"
        return f"(NOT {body})" if expr.negated else body
    if isinstance(expr, ast.InExpr) and expr.items is not None:
        operand = _render_predicate(engine, expr.operand, params)
        items = ", ".join(
            _render_predicate(engine, item, params) for item in expr.items
        )
        middle = "NOT IN" if expr.negated else "IN"
        return f"({operand} {middle} ({items}))"
    raise ExecutionError(
        f"cannot render {type(expr).__name__} for a remote member"
    )
