"""Federated database support (Section 4.1.5).

"A federated database system is a set of loosely coupled database
systems all logically forming a single database store."  This package
builds distributed partitioned views on top of the DHQP: helpers to
define a partitioned view over member tables spread across servers,
and DML that routes rows to the owning member by its CHECK-constraint
domain, wrapped in a distributed transaction (MS DTC, Section 2).

Concurrency contract: :func:`partition_members` holds no mutable state
of its own — member metadata (CHECK-constraint domains, schema
versions) is cached per linked server under that server's metadata
lock, so parallel exchange workers scanning different members may
trigger concurrent discovery safely.  Partitioned-view DML remains
strictly single-threaded (fail-stop/atomic through the DTC); only read
paths ever run under an exchange.
"""

from repro.federation.partitioned_view import (
    PartitionMember,
    create_partitioned_view,
    partition_members,
)
from repro.federation.dml import (
    insert_into_partitioned_view,
    update_partitioned_view,
    delete_from_partitioned_view,
)

__all__ = [
    "PartitionMember",
    "create_partitioned_view",
    "partition_members",
    "insert_into_partitioned_view",
    "update_partitioned_view",
    "delete_from_partitioned_view",
]
