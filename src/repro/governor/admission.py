"""Admission control: the per-pool concurrency gate.

Every statement entering ``engine.execute`` passes through its
workload group's pool gate before anything is parsed.  Under load the
gate turns overload into *policy*: a bounded FIFO wait on the
simulated clock, then a typed :class:`~repro.errors
.AdmissionTimeoutError` — fast rejection the client can retry —
instead of an ever-growing queue.

Admission is re-entrant per thread and pool: a statement that nests
another ``execute`` on the same engine (and hence the same pool) must
not deadlock against its own slot, so nested entries ride the outer
ticket.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from repro.errors import AdmissionTimeoutError

__all__ = ["AdmissionController", "AdmissionTicket"]

_held = threading.local()


def _held_pools() -> set:
    pools = getattr(_held, "pools", None)
    if pools is None:
        pools = set()
        _held.pools = pools
    return pools


class AdmissionTicket:
    """Proof of admission; releasing returns the slot exactly once."""

    __slots__ = ("pool", "wait_ms", "nested", "_released")

    def __init__(self, pool: Any, wait_ms: float, nested: bool = False):
        self.pool = pool
        self.wait_ms = wait_ms
        #: nested tickets ride the outer statement's slot
        self.nested = nested
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        if self.nested or self.pool is None:
            return
        _held_pools().discard(id(self.pool))
        self.pool.release_slot()


class AdmissionController:
    """Gates statements on their group's pool concurrency slots."""

    def __init__(self, clock: Any, metrics: Any = None):
        self.clock = clock
        self.metrics = metrics

    def admit(
        self,
        group: Any,
        pool: Any,
        trace: Any = None,
    ) -> AdmissionTicket:
        """Acquire one concurrency slot from ``pool`` under ``group``'s
        deadline.  Fast path: an uncontended (or unbounded) pool costs
        one lock acquire.  Contended path: FIFO wait with an
        ``admission_wait`` trace span, shedding at the deadline or when
        the bounded queue is full."""
        held = _held_pools()
        if id(pool) in held:
            return AdmissionTicket(pool, 0.0, nested=True)
        if pool.try_acquire_slot():
            held.add(id(pool))
            return AdmissionTicket(pool, 0.0)
        span = None
        if trace is not None:
            span = trace.begin_span(
                "admission_wait", pool=pool.name, group=group.name
            )
        try:
            wait_ms = pool.acquire_slot(
                self.clock, timeout_ms=group.request_timeout_ms
            )
        except TimeoutError as error:
            pool.admission_timeouts += 1
            if self.metrics is not None:
                self.metrics.increment("governor.admission_timeouts")
            if trace is not None:
                trace.event(
                    "admission_shed", pool=pool.name, group=group.name,
                    reason=str(error),
                )
            raise AdmissionTimeoutError(
                f"statement shed by admission control on pool "
                f"{pool.name!r} (group {group.name!r}): {error}",
                group=group.name, pool=pool.name,
            ) from None
        finally:
            if span is not None:
                trace.exit_span(span)
        held.add(id(pool))
        if self.metrics is not None and wait_ms:
            self.metrics.increment("governor.admission_waits")
            self.metrics.observe("governor.admission_wait_ms", wait_ms)
        if trace is not None and wait_ms:
            trace.event(
                "admission_granted", pool=pool.name,
                wait_ms=round(wait_ms, 3),
            )
        return AdmissionTicket(pool, wait_ms)
