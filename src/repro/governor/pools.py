"""Resource pools: memory-grant capacity plus concurrency slots.

A :class:`ResourcePool` is the Resource Governor's unit of physical
capacity — a memory budget in KB that outstanding grants draw down and
a slot count that bounds concurrent statements.  Workload groups bind
to pools; many groups may share one pool (the real server's model).

Waiting is FIFO on the engine's :class:`~repro.resilience.health
.SimulatedClock`.  Waiters block on a condition variable so releases
wake them promptly under real thread concurrency; when a poll interval
passes with nothing released, the waiter bills one simulated *wait
quantum* to the shared clock, so deadlines measured in simulated ms
always make progress even when the engine is otherwise idle (a waiter
can never hang forever behind a capacity its own deadline should have
shed).  Wait time charged to a request is the simulated-clock delta
between enqueue and acquire.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Optional

__all__ = ["ResourcePool", "DEFAULT_POOL", "INTERNAL_POOL"]

#: names of the built-in pools every governor starts with
DEFAULT_POOL = "default"
INTERNAL_POOL = "internal"

#: real seconds between deadline checks while blocked on the condvar
POLL_S = 0.002
#: simulated ms billed per idle poll so deadlines progress without help
WAIT_QUANTUM_MS = 25.0


class ResourcePool:
    """Memory-grant capacity (KB) + concurrency slots for one pool.

    ``max_memory_kb`` / ``max_concurrency`` of ``None`` mean unbounded
    (the built-in ``default`` pool ships unbounded so an ungoverned
    engine behaves exactly as before).  Both resources share one lock
    and FIFO queues; head-of-line blocking is deliberate — it is what
    makes wait time proportional to queue depth and shedding fair.
    """

    def __init__(
        self,
        name: str,
        max_memory_kb: Optional[float] = None,
        max_concurrency: Optional[int] = None,
        max_queue_length: Optional[int] = None,
    ):
        self.name = name
        self.max_memory_kb = max_memory_kb
        self.max_concurrency = max_concurrency
        #: bound on *admission* waiters; a full queue sheds immediately
        self.max_queue_length = max_queue_length
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        #: outstanding grant KB / statements currently holding a slot
        self.used_memory_kb = 0.0
        self.active_requests = 0
        self._mem_queue: deque = deque()
        self._slot_queue: deque = deque()
        # lifetime accounting (DMV surface)
        self.total_admissions = 0
        self.total_admission_wait_ms = 0.0
        self.admission_timeouts = 0
        self.total_grants = 0
        self.total_grant_wait_ms = 0.0
        self.grant_timeouts = 0
        self.peak_memory_kb = 0.0
        self.peak_concurrency = 0

    # -- concurrency slots -------------------------------------------------
    def try_acquire_slot(self) -> bool:
        """Non-blocking slot acquire; the engine's fast path."""
        with self._lock:
            if self._slot_queue or not self._slot_free():
                return False
            self._take_slot()
            return True

    def acquire_slot(
        self, clock, timeout_ms: Optional[float] = None
    ) -> float:
        """Blocking FIFO slot acquire; returns simulated wait ms.

        Raises ``TimeoutError`` (caught and retyped by the admission
        controller) when the queue is full or the deadline passes.
        """
        with self._lock:
            if (
                self.max_queue_length is not None
                and len(self._slot_queue) >= self.max_queue_length
            ):
                raise TimeoutError("admission queue full")
            waited = self._wait(
                self._slot_queue, self._slot_free, self._take_slot,
                clock, timeout_ms,
            )
            self.total_admission_wait_ms += waited
            return waited

    def release_slot(self) -> None:
        with self._cond:
            self.active_requests = max(0, self.active_requests - 1)
            self._cond.notify_all()

    def _slot_free(self) -> bool:
        return (
            self.max_concurrency is None
            or self.active_requests < self.max_concurrency
        )

    def _take_slot(self) -> None:
        self.active_requests += 1
        self.total_admissions += 1
        if self.active_requests > self.peak_concurrency:
            self.peak_concurrency = self.active_requests

    # -- memory grants -----------------------------------------------------
    def try_acquire_memory(self, kb: float) -> bool:
        with self._lock:
            if self._mem_queue or not self._memory_free(kb):
                return False
            self._take_memory(kb)
            return True

    def acquire_memory(
        self, kb: float, clock, timeout_ms: Optional[float] = None
    ) -> float:
        """Blocking FIFO memory acquire; returns simulated wait ms."""
        with self._lock:
            waited = self._wait(
                self._mem_queue,
                lambda: self._memory_free(kb),
                lambda: self._take_memory(kb),
                clock, timeout_ms,
            )
            self.total_grant_wait_ms += waited
            return waited

    def release_memory(self, kb: float) -> None:
        with self._cond:
            self.used_memory_kb = max(0.0, self.used_memory_kb - kb)
            self._cond.notify_all()

    def _memory_free(self, kb: float) -> bool:
        return (
            self.max_memory_kb is None
            or self.used_memory_kb + kb <= self.max_memory_kb
        )

    def _take_memory(self, kb: float) -> None:
        self.used_memory_kb += kb
        self.total_grants += 1
        if self.used_memory_kb > self.peak_memory_kb:
            self.peak_memory_kb = self.used_memory_kb

    # -- shared FIFO wait loop ---------------------------------------------
    def _wait(
        self,
        queue: deque,
        can_take: Callable[[], bool],
        take: Callable[[], None],
        clock,
        timeout_ms: Optional[float],
    ) -> float:
        """FIFO wait under ``self._lock``; returns simulated wait ms or
        raises ``TimeoutError`` at the deadline.  Only the queue head
        may take (strict FIFO); every release notifies the condvar."""
        if not queue and can_take():
            take()
            return 0.0
        token = object()
        queue.append(token)
        enqueued_ms = clock.now_ms
        try:
            while True:
                if queue[0] is token and can_take():
                    queue.popleft()
                    take()
                    self._cond.notify_all()
                    return clock.now_ms - enqueued_ms
                waited = clock.now_ms - enqueued_ms
                if timeout_ms is not None and waited >= timeout_ms:
                    queue.remove(token)
                    self._cond.notify_all()
                    raise TimeoutError(
                        f"waited {waited:.0f}ms (deadline {timeout_ms:.0f}ms)"
                    )
                if not self._cond.wait(timeout=POLL_S):
                    # nothing released this interval: bill simulated
                    # wait time so deadlines progress deterministically
                    clock.advance(WAIT_QUANTUM_MS)
        except BaseException:
            if token in queue:
                queue.remove(token)
                self._cond.notify_all()
            raise

    # -- introspection -----------------------------------------------------
    def queued_requests(self) -> int:
        with self._lock:
            return len(self._slot_queue) + len(self._mem_queue)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ResourcePool({self.name!r}, mem={self.used_memory_kb:.0f}/"
            f"{self.max_memory_kb}, active={self.active_requests}/"
            f"{self.max_concurrency})"
        )
