"""The Resource Governor: workload management over the DHQP engine.

Four cooperating parts (see ``docs/GOVERNOR.md``):

* :mod:`~repro.governor.pools` — :class:`ResourcePool`: memory-grant
  capacity in KB plus a concurrency-slot gate, FIFO waits on the
  engine's simulated clock;
* :mod:`~repro.governor.classifier` — :class:`WorkloadGroup` (policy:
  ``max_dop``, ``max_memory_grant_pct``, ``request_timeout_ms``, pool
  binding) and the predicate-rule :class:`Classifier`;
* :mod:`~repro.governor.grants` — per-plan ``required_memory_kb``
  estimation from the cost model's operator memory estimates, and the
  :class:`MemoryGrant` lease lifecycle;
* :mod:`~repro.governor.admission` — the per-pool concurrency gate at
  the top of ``engine.execute`` with deadline-based shedding.

:class:`ResourceGovernor` is the engine-facing facade wiring them
together; every :class:`~repro.engine.ServerInstance` owns one.  An
untouched governor (default group on an unbounded default pool) is a
near-zero-cost pass-through, so single-user engines behave exactly as
before.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

from repro.errors import GovernorError, GrantTimeoutError
from repro.governor.admission import AdmissionController, AdmissionTicket
from repro.governor.classifier import (
    Classifier,
    DEFAULT_GROUP,
    INTERNAL_GROUP,
    WorkloadGroup,
)
from repro.governor.grants import MemoryGrant, estimate_plan_memory_kb
from repro.governor.pools import DEFAULT_POOL, INTERNAL_POOL, ResourcePool

__all__ = [
    "ResourceGovernor",
    "ResourcePool",
    "WorkloadGroup",
    "Classifier",
    "MemoryGrant",
    "AdmissionController",
    "AdmissionTicket",
    "estimate_plan_memory_kb",
]


class ResourceGovernor:
    """Pools + groups + classifier + admission for one engine."""

    def __init__(self, clock: Any, metrics: Any = None):
        self.clock = clock
        self.metrics = metrics
        self._lock = threading.RLock()
        self.pools: Dict[str, ResourcePool] = {
            DEFAULT_POOL: ResourcePool(DEFAULT_POOL),
            INTERNAL_POOL: ResourcePool(INTERNAL_POOL),
        }
        self.groups: Dict[str, WorkloadGroup] = {
            DEFAULT_GROUP: WorkloadGroup(DEFAULT_GROUP, pool=DEFAULT_POOL),
            INTERNAL_GROUP: WorkloadGroup(INTERNAL_GROUP, pool=INTERNAL_POOL),
        }
        self.classifier = Classifier()
        self.admission = AdmissionController(clock, metrics=metrics)
        self._active_grants: Dict[int, MemoryGrant] = {}

    # -- configuration -----------------------------------------------------
    def create_pool(
        self,
        name: str,
        max_memory_kb: Optional[float] = None,
        max_concurrency: Optional[int] = None,
        max_queue_length: Optional[int] = None,
    ) -> ResourcePool:
        with self._lock:
            key = name.lower()
            if key in self.pools:
                raise GovernorError(f"resource pool {name!r} already exists")
            pool = ResourcePool(
                key,
                max_memory_kb=max_memory_kb,
                max_concurrency=max_concurrency,
                max_queue_length=max_queue_length,
            )
            self.pools[key] = pool
            return pool

    def create_group(
        self,
        name: str,
        pool: str = DEFAULT_POOL,
        max_dop: int = 0,
        max_memory_grant_pct: float = 25.0,
        request_timeout_ms: Optional[float] = None,
    ) -> WorkloadGroup:
        with self._lock:
            key = name.lower()
            if key in self.groups:
                raise GovernorError(f"workload group {name!r} already exists")
            if pool.lower() not in self.pools:
                raise GovernorError(f"unknown resource pool {pool!r}")
            group = WorkloadGroup(
                key,
                pool=pool.lower(),
                max_dop=max_dop,
                max_memory_grant_pct=max_memory_grant_pct,
                request_timeout_ms=request_timeout_ms,
            )
            self.groups[key] = group
            return group

    def add_classifier_rule(
        self, name: str, predicate: Any, group: str
    ) -> None:
        if group.lower() not in self.groups:
            raise GovernorError(f"unknown workload group {group!r}")
        self.classifier.add_rule(name, predicate, group)

    # -- classification ----------------------------------------------------
    def classify(self, session: Any) -> WorkloadGroup:
        """The workload group a session's next statement runs under.
        Unknown names (a group dropped after SET bound it) fall back to
        ``default`` rather than failing the statement."""
        name = self.classifier.classify(session)
        group = self.groups.get(name)
        if group is None:
            group = self.groups[DEFAULT_GROUP]
        return group

    def pool_for(self, group: WorkloadGroup) -> ResourcePool:
        pool = self.pools.get(group.pool)
        if pool is None:
            return self.pools[DEFAULT_POOL]
        return pool

    # -- admission ---------------------------------------------------------
    def admit(self, group: WorkloadGroup, trace: Any = None) -> AdmissionTicket:
        pool = self.pool_for(group)
        ticket = self.admission.admit(group, pool, trace=trace)
        if not ticket.nested:
            with self._lock:
                group.total_requests += 1
                group.active_requests += 1
            if self.metrics is not None:
                self.metrics.increment("governor.admitted")
        return ticket

    def complete(self, group: WorkloadGroup, ticket: AdmissionTicket) -> None:
        """Release a statement's admission slot and group accounting."""
        nested = ticket.nested
        ticket.release()
        if not nested:
            with self._lock:
                group.active_requests = max(0, group.active_requests - 1)

    def record_timeout(self, group: WorkloadGroup) -> None:
        with self._lock:
            group.total_timeouts += 1

    # -- memory grants -----------------------------------------------------
    def acquire_grant(
        self,
        plan: Any,
        group: WorkloadGroup,
        session: Any,
        cost_model: Any,
        trace: Any = None,
        sql_text: Optional[str] = None,
    ) -> Optional[MemoryGrant]:
        """Estimate and lease the plan's memory from the group's pool.

        Returns None for streaming-only plans (no memory operators —
        no grant, exactly like the real server).  The request is capped
        at the group's ``max_memory_grant_pct`` share of the pool (a
        reduced grant), then waits FIFO behind earlier requests,
        shedding with :class:`GrantTimeoutError` at the deadline."""
        required_kb = estimate_plan_memory_kb(plan, cost_model)
        if required_kb <= 0.0:
            return None
        pool = self.pool_for(group)
        cap = group.grant_cap_kb(pool.max_memory_kb)
        granted_kb = required_kb if cap is None else min(required_kb, cap)
        wait_ms = 0.0
        if not pool.try_acquire_memory(granted_kb):
            span = None
            if trace is not None:
                span = trace.begin_span(
                    "grant_wait", pool=pool.name, group=group.name,
                    required_kb=round(granted_kb, 1),
                )
            try:
                wait_ms = pool.acquire_memory(
                    granted_kb, self.clock,
                    timeout_ms=group.request_timeout_ms,
                )
            except TimeoutError as error:
                pool.grant_timeouts += 1
                self.record_timeout(group)
                if self.metrics is not None:
                    self.metrics.increment("governor.grant_timeouts")
                if trace is not None:
                    trace.event(
                        "grant_shed", pool=pool.name, group=group.name,
                        required_kb=round(granted_kb, 1),
                        reason=str(error),
                    )
                raise GrantTimeoutError(
                    f"memory grant of {granted_kb:.1f}KB timed out on "
                    f"pool {pool.name!r} (group {group.name!r}): {error}",
                    group=group.name, pool=pool.name,
                    required_kb=granted_kb,
                ) from None
            finally:
                if span is not None:
                    trace.exit_span(span)
        grant = MemoryGrant(
            group_name=group.name,
            pool=pool,
            requested_kb=required_kb,
            granted_kb=granted_kb,
            wait_ms=wait_ms,
            session_id=getattr(session, "session_id", None),
            sql_text=sql_text,
            acquired_at_ms=self.clock.now_ms,
            on_release=self._unregister_grant,
        )
        with self._lock:
            self._active_grants[grant.grant_id] = grant
            group.total_grant_kb += granted_kb
        if self.metrics is not None:
            self.metrics.increment("governor.grants")
            if wait_ms:
                self.metrics.increment("governor.grant_waits")
                self.metrics.observe("governor.grant_wait_ms", wait_ms)
        if trace is not None and wait_ms:
            trace.event(
                "grant_acquired", pool=pool.name,
                granted_kb=round(granted_kb, 1),
                wait_ms=round(wait_ms, 3),
            )
        return grant

    def _unregister_grant(self, grant: MemoryGrant) -> None:
        with self._lock:
            self._active_grants.pop(grant.grant_id, None)

    def active_grants(self) -> List[MemoryGrant]:
        with self._lock:
            return list(self._active_grants.values())
