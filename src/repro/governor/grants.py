"""Memory grants: per-plan estimation and the grant lifecycle.

Before a SELECT plan executes, the governor estimates its
``required_memory_kb`` by walking the physical tree and charging the
cost model's per-operator memory estimates for the operators that
materialize state — hash-join build sides, hash aggregates, sorts and
spools.  Streaming operators (scans, filters, stream aggregates,
nested loops) need no grant; a plan composed only of those skips the
grant path entirely, so cheap statements stay grant-free exactly like
the real server.

The grant itself is a lease on the bound pool's memory: acquired FIFO
before execution (waiting on the simulated clock, shedding with
:class:`~repro.errors.GrantTimeoutError` at the group's deadline) and
released unconditionally when execution finishes — success, error or
replan.  ``sys.dm_exec_query_memory_grants`` lists the outstanding
leases; an empty view at quiesce is the no-leak invariant the
concurrency tests assert.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Optional

from repro.core import physical as P

__all__ = ["MemoryGrant", "estimate_plan_memory_kb"]


def estimate_plan_memory_kb(plan: Any, cost_model: Any) -> float:
    """Walk a physical plan, annotate each memory-consuming operator
    with ``est_memory_kb``, and return the plan total (KB)."""
    total = 0.0
    for node in plan.walk():
        kb = _operator_memory_kb(node, cost_model)
        node.est_memory_kb = kb
        total += kb
    return total


def _operator_memory_kb(node: Any, cost_model: Any) -> float:
    if isinstance(node, P.HashJoin):
        build = node.right
        width = cost_model.row_width_bytes(len(build.output_ids()))
        return cost_model.hash_join_memory_kb(build.est_rows, width)
    if isinstance(node, P.HashAggregate):
        width = cost_model.row_width_bytes(len(node.output_ids()))
        return cost_model.hash_aggregate_memory_kb(node.est_rows, width)
    if isinstance(node, P.PhysicalSort):
        width = cost_model.row_width_bytes(len(node.output_ids()))
        return cost_model.sort_memory_kb(node.child.est_rows, width)
    if isinstance(node, P.Spool):
        width = cost_model.row_width_bytes(len(node.output_ids()))
        return cost_model.spool_memory_kb(node.child.est_rows, width)
    return 0.0


_grant_ids = itertools.count(1)
_grant_ids_lock = threading.Lock()


class MemoryGrant:
    """One outstanding memory lease on a resource pool."""

    __slots__ = (
        "grant_id", "group_name", "pool", "requested_kb", "granted_kb",
        "wait_ms", "session_id", "sql_text", "acquired_at_ms",
        "_released", "_on_release",
    )

    def __init__(
        self,
        group_name: str,
        pool: Any,
        requested_kb: float,
        granted_kb: float,
        wait_ms: float,
        session_id: Optional[int] = None,
        sql_text: Optional[str] = None,
        acquired_at_ms: float = 0.0,
        on_release: Optional[Any] = None,
    ):
        with _grant_ids_lock:
            self.grant_id = next(_grant_ids)
        self.group_name = group_name
        self.pool = pool
        #: the plan's raw estimate, before the group's pct cap
        self.requested_kb = requested_kb
        #: what the pool actually leased (the reduced grant when capped)
        self.granted_kb = granted_kb
        self.wait_ms = wait_ms
        self.session_id = session_id
        self.sql_text = sql_text
        self.acquired_at_ms = acquired_at_ms
        self._released = False
        self._on_release = on_release

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        """Return the lease to the pool.  Idempotent — the engine's
        ``finally`` may race a replan's explicit release."""
        if self._released:
            return
        self._released = True
        self.pool.release_memory(self.granted_kb)
        if self._on_release is not None:
            self._on_release(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MemoryGrant(#{self.grant_id}, {self.granted_kb:.1f}KB, "
            f"group={self.group_name!r}, wait={self.wait_ms:.1f}ms)"
        )
