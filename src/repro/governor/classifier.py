"""Workload groups and session classification.

A :class:`WorkloadGroup` is the Resource Governor's unit of *policy*:
it binds sessions to a :class:`~repro.governor.pools.ResourcePool` and
carries the limits applied to every statement that runs under it —
``max_dop`` (exchange degree clamp), ``max_memory_grant_pct`` (one
query's share of the pool) and ``request_timeout_ms`` (the admission /
grant deadline on the simulated clock).

Classification runs per statement: an explicit ``SET WORKLOAD GROUP
'name'`` on the session always wins; otherwise registered predicate
rules are evaluated in registration order (like the real server's
classifier UDF); sessions nothing claims land in ``default``.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

__all__ = ["WorkloadGroup", "Classifier", "DEFAULT_GROUP", "INTERNAL_GROUP"]

DEFAULT_GROUP = "default"
INTERNAL_GROUP = "internal"


class WorkloadGroup:
    """One named policy bundle over a resource pool."""

    def __init__(
        self,
        name: str,
        pool: str = "default",
        max_dop: int = 0,
        max_memory_grant_pct: float = 25.0,
        request_timeout_ms: Optional[float] = None,
    ):
        self.name = name
        #: name of the bound resource pool
        self.pool = pool
        #: exchange-degree clamp; 0 means "no clamp"
        self.max_dop = int(max_dop)
        #: one statement's grant is capped at this share of the pool
        self.max_memory_grant_pct = float(max_memory_grant_pct)
        #: admission/grant deadline in simulated ms; None waits forever
        self.request_timeout_ms = request_timeout_ms
        # lifetime accounting (DMV surface); guarded by the governor
        self.total_requests = 0
        self.active_requests = 0
        self.total_timeouts = 0
        self.total_grant_kb = 0.0

    def grant_cap_kb(self, pool_max_memory_kb: Optional[float]) -> Optional[float]:
        """The largest grant one statement in this group may hold —
        ``max_memory_grant_pct`` of the pool.  Clamping the *request*
        to this cap (a reduced grant, like the real server's) means a
        single statement can always eventually run on an empty pool."""
        if pool_max_memory_kb is None:
            return None
        return pool_max_memory_kb * self.max_memory_grant_pct / 100.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WorkloadGroup({self.name!r}, pool={self.pool!r}, "
            f"max_dop={self.max_dop}, "
            f"grant_pct={self.max_memory_grant_pct})"
        )


class Classifier:
    """Ordered predicate rules mapping sessions to group names."""

    def __init__(self) -> None:
        self._rules: List[Tuple[str, Callable[[Any], bool], str]] = []

    def add_rule(
        self, name: str, predicate: Callable[[Any], bool], group: str
    ) -> None:
        """Register ``predicate(session) -> bool`` routing matching
        sessions to ``group``.  First match wins, in registration
        order."""
        self._rules.append((name, predicate, group.lower()))

    def rules(self) -> List[Tuple[str, Callable[[Any], bool], str]]:
        return list(self._rules)

    def classify(self, session: Any) -> str:
        """The group *name* for a session: the session's explicit
        ``SET WORKLOAD GROUP`` binding, else the first matching rule,
        else ``default``."""
        explicit = getattr(session, "workload_group", None)
        if explicit:
            return explicit
        for __, predicate, group in self._rules:
            if predicate(session):
                return group
        return DEFAULT_GROUP
