"""The full-text service: catalogs, indexing, and query support.

Figure 2 splits the Microsoft Search Service into an *index engine*
(creation/maintenance of full-text catalogs) and a *query support*
component ("given a full-text predicate, the search service determines
which entries in the index meet the full-text selection criteria ...
[and] returns an OLE DB Rowset containing the identity of the row ...
and a ranking value").  :class:`FullTextService` plays both roles:

* file-system catalogs index a dict of path → document content through
  registered IFilters (the Section 2.2 scenario), exposing per-document
  properties (path, filename, size, timestamps) as SCOPE() columns;
* relational catalogs index (key, text) pairs pushed from a table (the
  Section 2.3 scenario) and return (KEY, RANK) rowsets.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Dict, Iterable, Optional

from repro.errors import FullTextError
from repro.fulltext.ifilters import get_filter_for
from repro.fulltext.index import InvertedIndex
from repro.fulltext.querylang import ContainsQuery, parse_contains


class Document:
    """A file-system document registered in a catalog."""

    __slots__ = ("path", "content", "size", "created", "written", "properties")

    def __init__(
        self,
        path: str,
        content: str,
        created: Optional[_dt.datetime] = None,
        written: Optional[_dt.datetime] = None,
    ):
        self.path = path
        self.content = content
        self.size = len(content)
        self.created = created or _dt.datetime(2000, 1, 1)
        self.written = written or self.created
        self.properties: Dict[str, str] = {}

    @property
    def directory(self) -> str:
        slash = self.path.replace("\\", "/").rfind("/")
        return self.path[:slash] if slash >= 0 else ""

    @property
    def filename(self) -> str:
        normalized = self.path.replace("\\", "/")
        return normalized.rsplit("/", 1)[-1]

    def __repr__(self) -> str:
        return f"Document({self.path})"


class Match:
    """One query hit: document key + ranking value."""

    __slots__ = ("key", "rank")

    def __init__(self, key: Any, rank: float):
        self.key = key
        self.rank = rank

    def __repr__(self) -> str:
        return f"Match({self.key!r}, rank={self.rank:.4f})"


class FullTextCatalog:
    """One full-text catalog: an inverted index over documents or rows."""

    FILESYSTEM = "filesystem"
    RELATIONAL = "relational"

    def __init__(self, name: str, kind: str):
        if kind not in (self.FILESYSTEM, self.RELATIONAL):
            raise FullTextError(f"unknown catalog kind {kind!r}")
        self.name = name
        self.kind = kind
        self.index = InvertedIndex()
        self.documents: Dict[str, Document] = {}
        self.skipped_paths: list[str] = []

    # -- index engine: file-system side ------------------------------------
    def index_document(self, document: Document) -> bool:
        """Index one file through its IFilter; returns False when no
        filter handles the format (the file is skipped, as the real
        service skips formats without an installed IFilter)."""
        if self.kind != self.FILESYSTEM:
            raise FullTextError(f"catalog {self.name} is not a file catalog")
        filter_ = get_filter_for(document.path)
        if filter_ is None:
            self.skipped_paths.append(document.path)
            return False
        text = filter_.extract_text(document.content)
        document.properties = filter_.extract_properties(document.content)
        self.documents[document.path] = document
        self.index.add_document(document.path, text)
        return True

    def index_directory(self, files: Dict[str, str]) -> int:
        """Index a directory snapshot {path: content}; returns the count
        of documents actually indexed."""
        count = 0
        for path, content in sorted(files.items()):
            if self.index_document(Document(path, content)):
                count += 1
        return count

    # -- index engine: relational side ---------------------------------------
    def index_row(self, key: Any, text: str) -> None:
        """Index one (row key, column text) pair pushed from a table."""
        if self.kind != self.RELATIONAL:
            raise FullTextError(
                f"catalog {self.name} is not a relational catalog"
            )
        self.index.add_document(key, text or "")

    def remove_row(self, key: Any) -> None:
        self.index.remove_document(key)

    # -- query support --------------------------------------------------------
    def search(self, contains_text: str) -> list[Match]:
        """Evaluate a CONTAINS expression; matches ranked best-first."""
        query: ContainsQuery = parse_contains(contains_text)
        return [Match(key, rank) for key, rank in query.rank_matches(self.index)]

    def document(self, path: str) -> Document:
        if path not in self.documents:
            raise FullTextError(f"document {path!r} not in catalog {self.name}")
        return self.documents[path]

    def __repr__(self) -> str:
        return (
            f"FullTextCatalog({self.name}, {self.kind}, "
            f"{self.index.document_count} docs)"
        )


class FullTextService:
    """The search service: a registry of catalogs (one per SCOPE)."""

    def __init__(self) -> None:
        self._catalogs: Dict[str, FullTextCatalog] = {}

    def create_catalog(self, name: str, kind: str) -> FullTextCatalog:
        key = name.lower()
        if key in self._catalogs:
            raise FullTextError(f"catalog {name!r} already exists")
        catalog = FullTextCatalog(name, kind)
        self._catalogs[key] = catalog
        return catalog

    def catalog(self, name: str) -> FullTextCatalog:
        key = name.lower()
        if key not in self._catalogs:
            raise FullTextError(f"catalog {name!r} does not exist")
        return self._catalogs[key]

    def catalogs(self) -> Iterable[FullTextCatalog]:
        return list(self._catalogs.values())

    def drop_catalog(self, name: str) -> None:
        key = name.lower()
        if key not in self._catalogs:
            raise FullTextError(f"catalog {name!r} does not exist")
        del self._catalogs[key]

    def __repr__(self) -> str:
        return f"FullTextService({sorted(self._catalogs)})"
