"""Word breaking for full-text indexing and querying."""

from __future__ import annotations

import re

_WORD = re.compile(r"[a-z0-9]+(?:'[a-z0-9]+)?")

#: words too common to index (a small SQL-Server-style noise word list)
NOISE_WORDS = frozenset(
    """a an and are as at be but by for from has have he her his i in is it
    its of on or that the their them they this to was we were what when
    which who will with you your""".split()
)


def tokenize(text: str, drop_noise: bool = True) -> list[str]:
    """Break text into lowercase word tokens."""
    words = _WORD.findall(text.lower())
    if drop_noise:
        return [w for w in words if w not in NOISE_WORDS]
    return words


def tokenize_with_positions(
    text: str, drop_noise: bool = True
) -> list[tuple[str, int]]:
    """Tokens paired with their word position (noise words still count
    toward positions so proximity distances stay faithful)."""
    out = []
    for position, word in enumerate(_WORD.findall(text.lower())):
        if drop_noise and word in NOISE_WORDS:
            continue
        out.append((word, position))
    return out
