"""The CONTAINS query language.

Section 2.3: "The types of full-text queries supported include
searching for words or phrases, words in close proximity to each
other, and inflectional forms of verbs and nouns."  The grammar we
support (a faithful subset of SQL Server's CONTAINS syntax):

::

    query     := or_expr
    or_expr   := and_expr ( OR and_expr )*
    and_expr  := not_expr ( AND [NOT] not_expr )*
    not_expr  := primary
    primary   := '(' query ')'
               | '"' word+ '"'                     -- phrase
               | word NEAR word                    -- proximity
               | FORMSOF '(' INFLECTIONAL ',' word ')'
               | word [ '*' ]                      -- term (prefix with *)

Example from the paper (Section 2.2):
``'"Parallel database" OR "heterogeneous query"'``.
"""

from __future__ import annotations

import re
from typing import Any

from repro.errors import FullTextError
from repro.fulltext.index import InvertedIndex
from repro.fulltext.stemmer import inflectional_forms


class QueryNode:
    """Base class of the CONTAINS expression tree."""

    def evaluate(self, index: InvertedIndex) -> set[Any]:
        """Keys of matching documents."""
        raise NotImplementedError

    def words(self) -> list[str]:
        """All positive query words (feed the ranking function)."""
        return []


class TermNode(QueryNode):
    """A single word, optionally a prefix search (``word*``)."""

    def __init__(self, word: str, prefix: bool = False):
        self.word = word.lower()
        self.prefix = prefix

    def evaluate(self, index: InvertedIndex) -> set[Any]:
        if not self.prefix:
            return index.documents_with_word(self.word)
        out: set[Any] = set()
        for term, by_doc in index._postings.items():  # noqa: SLF001
            if term.startswith(self.word):
                out.update(by_doc)
        return out

    def words(self) -> list[str]:
        return [self.word]

    def __repr__(self) -> str:
        star = "*" if self.prefix else ""
        return f"Term({self.word}{star})"


class PhraseNode(QueryNode):
    """An exact phrase in double quotes."""

    def __init__(self, phrase_words: list[str]):
        self.phrase_words = [w.lower() for w in phrase_words]

    def evaluate(self, index: InvertedIndex) -> set[Any]:
        return set(index.documents_with_phrase(self.phrase_words))

    def words(self) -> list[str]:
        return list(self.phrase_words)

    def __repr__(self) -> str:
        return f"Phrase({' '.join(self.phrase_words)})"


class AndNode(QueryNode):
    def __init__(self, left: QueryNode, right: QueryNode):
        self.left = left
        self.right = right

    def evaluate(self, index: InvertedIndex) -> set[Any]:
        return self.left.evaluate(index) & self.right.evaluate(index)

    def words(self) -> list[str]:
        return self.left.words() + self.right.words()

    def __repr__(self) -> str:
        return f"And({self.left!r}, {self.right!r})"


class OrNode(QueryNode):
    def __init__(self, left: QueryNode, right: QueryNode):
        self.left = left
        self.right = right

    def evaluate(self, index: InvertedIndex) -> set[Any]:
        return self.left.evaluate(index) | self.right.evaluate(index)

    def words(self) -> list[str]:
        return self.left.words() + self.right.words()

    def __repr__(self) -> str:
        return f"Or({self.left!r}, {self.right!r})"


class AndNotNode(QueryNode):
    def __init__(self, left: QueryNode, right: QueryNode):
        self.left = left
        self.right = right

    def evaluate(self, index: InvertedIndex) -> set[Any]:
        return self.left.evaluate(index) - self.right.evaluate(index)

    def words(self) -> list[str]:
        return self.left.words()

    def __repr__(self) -> str:
        return f"AndNot({self.left!r}, {self.right!r})"


class NearNode(QueryNode):
    """``word NEAR word`` proximity."""

    def __init__(self, left_word: str, right_word: str, max_distance: int = 10):
        self.left_word = left_word.lower()
        self.right_word = right_word.lower()
        self.max_distance = max_distance

    def evaluate(self, index: InvertedIndex) -> set[Any]:
        return index.documents_with_near(
            self.left_word, self.right_word, self.max_distance
        )

    def words(self) -> list[str]:
        return [self.left_word, self.right_word]

    def __repr__(self) -> str:
        return f"Near({self.left_word}, {self.right_word})"


class FormsOfNode(QueryNode):
    """``FORMSOF(INFLECTIONAL, word)``: match any inflected form."""

    def __init__(self, word: str):
        self.word = word.lower()

    def evaluate(self, index: InvertedIndex) -> set[Any]:
        out: set[Any] = set()
        for form in inflectional_forms(self.word):
            out.update(index.documents_with_word(form))
        return out

    def words(self) -> list[str]:
        return [self.word]

    def __repr__(self) -> str:
        return f"FormsOf({self.word})"


class ContainsQuery:
    """A parsed CONTAINS expression."""

    def __init__(self, root: QueryNode, text: str):
        self.root = root
        self.text = text

    def evaluate(self, index: InvertedIndex) -> set[Any]:
        return self.root.evaluate(index)

    def rank_matches(self, index: InvertedIndex) -> list[tuple[Any, float]]:
        """Matching keys with tf-idf ranks, best first."""
        words = self.root.words()
        matches = self.root.evaluate(index)
        ranked = [(key, index.rank(key, words)) for key in matches]
        ranked.sort(key=lambda kr: (-kr[1], str(kr[0])))
        return ranked

    def __repr__(self) -> str:
        return f"ContainsQuery({self.root!r})"


_TOKEN = re.compile(
    r"""\s*(?:
        (?P<lparen>\() |
        (?P<rparen>\)) |
        (?P<comma>,)   |
        (?P<quote>"[^"]*") |
        (?P<word>[A-Za-z0-9_']+\*?)
    )""",
    re.VERBOSE,
)


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = self._lex(text)
        self.pos = 0

    @staticmethod
    def _lex(text: str) -> list[str]:
        tokens = []
        i = 0
        while i < len(text):
            match = _TOKEN.match(text, i)
            if match is None:
                if text[i].isspace():
                    i += 1
                    continue
                raise FullTextError(
                    f"bad CONTAINS syntax at {text[i:i + 10]!r}"
                )
            tokens.append(match.group().strip())
            i = match.end()
        return tokens

    def peek(self) -> str:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else ""

    def next(self) -> str:
        token = self.peek()
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got.upper() != token.upper():
            raise FullTextError(f"expected {token!r}, got {got!r}")

    # -- grammar ------------------------------------------------------------
    def parse(self) -> QueryNode:
        node = self.or_expr()
        if self.pos != len(self.tokens):
            raise FullTextError(
                f"trailing tokens in CONTAINS query: {self.tokens[self.pos:]}"
            )
        return node

    def or_expr(self) -> QueryNode:
        node = self.and_expr()
        while self.peek().upper() == "OR":
            self.next()
            node = OrNode(node, self.and_expr())
        return node

    def and_expr(self) -> QueryNode:
        node = self.primary()
        while self.peek().upper() == "AND":
            self.next()
            if self.peek().upper() == "NOT":
                self.next()
                node = AndNotNode(node, self.primary())
            else:
                node = AndNode(node, self.primary())
        return node

    def primary(self) -> QueryNode:
        token = self.peek()
        if not token:
            raise FullTextError("unexpected end of CONTAINS query")
        if token == "(":
            self.next()
            node = self.or_expr()
            self.expect(")")
            return node
        if token.startswith('"'):
            self.next()
            from repro.fulltext.tokenizer import tokenize

            phrase_words = tokenize(token[1:-1], drop_noise=True)
            if not phrase_words:
                raise FullTextError("empty phrase in CONTAINS query")
            if len(phrase_words) == 1:
                return TermNode(phrase_words[0])
            return PhraseNode(phrase_words)
        if token.upper() == "FORMSOF":
            self.next()
            self.expect("(")
            mode = self.next()
            if mode.upper() not in ("INFLECTIONAL", "THESAURUS"):
                raise FullTextError(f"unknown FORMSOF mode {mode!r}")
            self.expect(",")
            word = self.next().strip('"')
            self.expect(")")
            return FormsOfNode(word)
        # plain word, maybe followed by NEAR
        word = self.next()
        if self.peek().upper() == "NEAR":
            self.next()
            right = self.next()
            if not right or right in ("(", ")"):
                raise FullTextError("NEAR requires a right-hand word")
            return NearNode(word, right.strip('"'))
        prefix = word.endswith("*")
        return TermNode(word.rstrip("*"), prefix=prefix)


def parse_contains(text: str) -> ContainsQuery:
    """Parse CONTAINS query text into an evaluable expression tree."""
    stripped = text.strip()
    if stripped.startswith("'") and stripped.endswith("'"):
        stripped = stripped[1:-1]
    if not stripped:
        raise FullTextError("empty CONTAINS query")
    return ContainsQuery(_Parser(stripped).parse(), text)
