"""IFilters: text extraction from document formats.

"The IFilter is an interface for retrieving text and properties out of
documents.  It provides the foundation for building higher-level
applications such as document indexers" (Section 2.2).  Each filter
handles a family of extensions; ``register_filter`` lets applications
plug in third-party formats exactly as the paper describes installing
IFilters for PDF/ZIP.

Our synthetic "document formats" wrap text in light structure so the
filters do real extraction work:

* ``.txt`` — plain text (identity).
* ``.html`` / ``.xml`` — markup stripped, tags discarded.
* ``.doc`` / ``.ppt`` — a faux binary format: lines of
  ``FIELD|name|value`` records plus ``BODY|...`` text records; the
  filter extracts body text and properties.
"""

from __future__ import annotations

import re
from typing import Dict, Optional

from repro.errors import FullTextError


class IFilter:
    """Base text-extraction filter."""

    #: extensions (lowercase, with dot) this filter handles
    extensions: tuple[str, ...] = ()

    def extract_text(self, content: str) -> str:
        """The indexable text of a document."""
        raise NotImplementedError

    def extract_properties(self, content: str) -> Dict[str, str]:
        """Named document properties (title, author, ...)."""
        return {}


class PlainTextFilter(IFilter):
    """Identity filter for .txt files."""

    extensions = (".txt", ".log", ".md")

    def extract_text(self, content: str) -> str:
        return content


class MarkupFilter(IFilter):
    """Strips tags from HTML/XML-ish documents; <title> is a property."""

    extensions = (".html", ".htm", ".xml")

    _TAG = re.compile(r"<[^>]*>")
    _TITLE = re.compile(r"<title>(.*?)</title>", re.IGNORECASE | re.DOTALL)

    def extract_text(self, content: str) -> str:
        return self._TAG.sub(" ", content)

    def extract_properties(self, content: str) -> Dict[str, str]:
        match = self._TITLE.search(content)
        if match:
            return {"title": match.group(1).strip()}
        return {}


class WordDocumentFilter(IFilter):
    """Parses the faux Office record format (FIELD/BODY lines)."""

    extensions = (".doc", ".ppt", ".xlsnotes")

    def extract_text(self, content: str) -> str:
        body: list[str] = []
        for line in content.splitlines():
            if line.startswith("BODY|"):
                body.append(line[len("BODY|"):])
            elif not line.startswith("FIELD|") and line.strip():
                raise FullTextError(
                    f"malformed document record: {line[:40]!r}"
                )
        return "\n".join(body)

    def extract_properties(self, content: str) -> Dict[str, str]:
        props: Dict[str, str] = {}
        for line in content.splitlines():
            if line.startswith("FIELD|"):
                parts = line.split("|", 2)
                if len(parts) == 3:
                    props[parts[1].lower()] = parts[2]
        return props


_REGISTRY: Dict[str, IFilter] = {}


def register_filter(filter_: IFilter) -> None:
    """Install an IFilter for its declared extensions (the paper's
    "install necessary IFilters" step)."""
    for extension in filter_.extensions:
        _REGISTRY[extension.lower()] = filter_


def get_filter_for(path: str) -> Optional[IFilter]:
    """The registered filter for a file path, or None if the format is
    not indexable."""
    dot = path.rfind(".")
    if dot < 0:
        return None
    return _REGISTRY.get(path[dot:].lower())


# built-in filters are always registered
register_filter(PlainTextFilter())
register_filter(MarkupFilter())
register_filter(WordDocumentFilter())
