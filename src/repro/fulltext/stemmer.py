"""Stemming and inflectional form generation.

The paper: "it is possible to find related words by searching over word
stems.  For example, 'runner', 'run', and 'ran' can all be equivalent
in full-text searches" (Section 2.3), and the CONTAINS language exposes
this as FORMSOF(INFLECTIONAL, word).

We implement a compact Porter-style suffix stripper plus an irregular
verb/noun table covering the common cases (including the paper's own
run/ran/runner example).
"""

from __future__ import annotations

# irregular form -> canonical stem
_IRREGULAR = {
    "ran": "run",
    "runner": "run",
    "runners": "run",
    "running": "run",
    "went": "go",
    "gone": "go",
    "goes": "go",
    "going": "go",
    "better": "good",
    "best": "good",
    "was": "be",
    "were": "be",
    "been": "be",
    "is": "be",
    "are": "be",
    "am": "be",
    "children": "child",
    "mice": "mouse",
    "feet": "foot",
    "geese": "goose",
    "men": "man",
    "women": "woman",
    "wrote": "write",
    "written": "write",
    "writes": "write",
    "writing": "write",
    "spoke": "speak",
    "spoken": "speak",
    "took": "take",
    "taken": "take",
    "gave": "give",
    "given": "give",
    "found": "find",
    "thought": "think",
    "bought": "buy",
    "brought": "bring",
    "sent": "send",
    "built": "build",
    "held": "hold",
    "kept": "keep",
    "left": "leave",
    "made": "make",
    "met": "meet",
    "paid": "pay",
    "said": "say",
    "sold": "sell",
    "told": "tell",
}

# stem -> all inflected surface forms (built lazily, inverse of the above)
_FORMS: dict[str, set[str]] = {}


def _is_vowel(word: str, i: int) -> bool:
    ch = word[i]
    if ch in "aeiou":
        return True
    if ch == "y":
        return i > 0 and word[i - 1] not in "aeiou"
    return False


def _has_vowel(word: str) -> bool:
    return any(_is_vowel(word, i) for i in range(len(word)))


def stem(word: str) -> str:
    """Reduce a word to its stem (lowercase in, lowercase out)."""
    word = word.lower()
    if word in _IRREGULAR:
        return _IRREGULAR[word]
    if len(word) <= 3:
        return word
    # plural / 3rd person -s
    if word.endswith("sses"):
        word = word[:-2]
    elif word.endswith("ies") and len(word) > 4:
        word = word[:-3] + "y"
    elif word.endswith("s") and not word.endswith("ss") and not word.endswith("us"):
        word = word[:-1]
    # -ing / -ed
    if word.endswith("ing") and len(word) > 5 and _has_vowel(word[:-3]):
        word = word[:-3]
        undoubled = _undouble(word)
        word = undoubled if undoubled != word else _restore_e(word)
    elif word.endswith("ed") and len(word) > 4 and _has_vowel(word[:-2]):
        word = word[:-2]
        undoubled = _undouble(word)
        word = undoubled if undoubled != word else _restore_e(word)
    # -er / -est (runner -> run handled by irregulars; "bigger" -> "big")
    elif word.endswith("est") and len(word) > 5:
        word = _undouble(word[:-3])
    elif word.endswith("er") and len(word) > 4:
        word = _undouble(word[:-2])
    # -ly / -ness
    if word.endswith("ly") and len(word) > 4:
        word = word[:-2]
    if word.endswith("ness") and len(word) > 5:
        word = word[:-4]
    return word


def _undouble(word: str) -> str:
    """drop a doubled final consonant: 'runn' -> 'run'."""
    if (
        len(word) >= 3
        and word[-1] == word[-2]
        and word[-1] not in "aeioulsz"
    ):
        return word[:-1]
    return word


def _restore_e(word: str) -> str:
    """'creat' -> 'create', 'us' -> 'use': add e after C-V-C endings
    where the stripped form is short."""
    if (
        len(word) >= 3
        and not _is_vowel(word, len(word) - 1)
        and _is_vowel(word, len(word) - 2)
        and not _is_vowel(word, len(word) - 3)
        and word[-1] not in "wxy"
        and len(word) <= 4
    ):
        return word + "e"
    return word


def inflectional_forms(word: str) -> set[str]:
    """All surface forms sharing ``word``'s stem (FORMSOF INFLECTIONAL).

    Generated forms cover regular inflections plus known irregulars;
    the index also stores stems, so matching works even for forms this
    generator misses.
    """
    base = stem(word)
    if not _FORMS:
        for surface, canonical in _IRREGULAR.items():
            _FORMS.setdefault(canonical, set()).add(surface)
    forms = {word.lower(), base}
    forms.update(_FORMS.get(base, set()))
    doubled = base + base[-1] if base[-1] not in "aeiou" else base
    forms.update(
        {
            base + "s",
            base + "es",
            base + "ed",
            base + "ing",
            doubled + "ed",
            doubled + "ing",
            base + "er",
            base + "ers",
        }
    )
    if base.endswith("e"):
        forms.update({base[:-1] + "ing", base + "d"})
    if base.endswith("y"):
        forms.update({base[:-1] + "ies", base[:-1] + "ied"})
    return forms
