"""The inverted index behind full-text catalogs.

Stores, for each stemmed term, a postings list of (document key,
positions).  Supports the query primitives the CONTAINS language needs:
term lookup, phrase matching via positions, proximity (NEAR), and
tf-idf ranking — the "ranking value" the query component returns with
each key (Section 2.3).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable

from repro.fulltext.stemmer import stem
from repro.fulltext.tokenizer import tokenize_with_positions


class Posting:
    """Occurrences of one term in one document."""

    __slots__ = ("key", "positions")

    def __init__(self, key: Any, positions: list[int]):
        self.key = key
        self.positions = positions

    @property
    def term_frequency(self) -> int:
        return len(self.positions)

    def __repr__(self) -> str:
        return f"Posting({self.key!r}, tf={self.term_frequency})"


class InvertedIndex:
    """Positional inverted index keyed by stemmed terms."""

    def __init__(self) -> None:
        # stem -> {doc key -> Posting}
        self._postings: Dict[str, Dict[Any, Posting]] = {}
        self._doc_lengths: Dict[Any, int] = {}

    # -- maintenance -----------------------------------------------------
    def add_document(self, key: Any, text: str) -> None:
        """Index (or re-index) one document under ``key``."""
        if key in self._doc_lengths:
            self.remove_document(key)
        tokens = tokenize_with_positions(text)
        self._doc_lengths[key] = len(tokens)
        for word, position in tokens:
            stemmed = stem(word)
            by_doc = self._postings.setdefault(stemmed, {})
            posting = by_doc.get(key)
            if posting is None:
                by_doc[key] = Posting(key, [position])
            else:
                posting.positions.append(position)

    def remove_document(self, key: Any) -> None:
        if key not in self._doc_lengths:
            return
        del self._doc_lengths[key]
        empty_terms = []
        for term, by_doc in self._postings.items():
            by_doc.pop(key, None)
            if not by_doc:
                empty_terms.append(term)
        for term in empty_terms:
            del self._postings[term]

    # -- basic facts -----------------------------------------------------
    @property
    def document_count(self) -> int:
        return len(self._doc_lengths)

    @property
    def term_count(self) -> int:
        return len(self._postings)

    def document_length(self, key: Any) -> int:
        return self._doc_lengths.get(key, 0)

    def __contains__(self, key: Any) -> bool:
        return key in self._doc_lengths

    # -- query primitives ---------------------------------------------------
    def postings_for_word(self, word: str) -> Dict[Any, Posting]:
        """Postings of a surface word (stemmed before lookup)."""
        return self._postings.get(stem(word), {})

    def documents_with_word(self, word: str) -> set[Any]:
        return set(self.postings_for_word(word))

    def documents_with_phrase(self, words: Iterable[str]) -> Dict[Any, int]:
        """Documents containing the exact phrase; value = occurrence count.

        Adjacency is checked on stored positions; noise words were
        dropped at index time but kept their position numbers, so a
        phrase across a noise word ("parallel database") still matches
        with the right gap.
        """
        word_list = [stem(w) for w in words]
        if not word_list:
            return {}
        candidate_postings = [self._postings.get(w, {}) for w in word_list]
        if any(not p for p in candidate_postings):
            return {}
        candidates = set(candidate_postings[0])
        for postings in candidate_postings[1:]:
            candidates &= set(postings)
        out: Dict[Any, int] = {}
        for key in candidates:
            count = 0
            for start in candidate_postings[0][key].positions:
                if self._phrase_continues(candidate_postings, key, start):
                    count += 1
            if count:
                out[key] = count
        return out

    @staticmethod
    def _phrase_continues(
        candidate_postings: list[Dict[Any, Posting]], key: Any, start: int
    ) -> bool:
        """Do words 1..n-1 follow ``start`` in order, allowing a gap of
        one position per step (dropped noise words keep their position
        numbers, so 'parallel [the] database' still matches)?"""
        prev = start
        for postings in candidate_postings[1:]:
            positions = postings[key].positions
            step = next(
                (p for p in sorted(positions) if prev < p <= prev + 2), None
            )
            if step is None:
                return False
            prev = step
        return True

    def documents_with_near(
        self, left_word: str, right_word: str, max_distance: int = 10
    ) -> set[Any]:
        """Documents where the two words occur within ``max_distance``
        positions of each other (the NEAR operator)."""
        left = self.postings_for_word(left_word)
        right = self.postings_for_word(right_word)
        out = set()
        for key in set(left) & set(right):
            left_positions = left[key].positions
            right_positions = right[key].positions
            if any(
                abs(lp - rp) <= max_distance
                for lp in left_positions
                for rp in right_positions
            ):
                out.add(key)
        return out

    # -- ranking -------------------------------------------------------------
    def rank(self, key: Any, words: Iterable[str]) -> float:
        """tf-idf rank of a document for a bag of query words."""
        n_docs = max(1, self.document_count)
        doc_len = max(1, self.document_length(key))
        score = 0.0
        for word in words:
            postings = self.postings_for_word(word)
            posting = postings.get(key)
            if posting is None:
                continue
            tf = posting.term_frequency / doc_len
            idf = math.log(1.0 + n_docs / (1 + len(postings)))
            score += tf * idf
        return score

    def __repr__(self) -> str:
        return (
            f"InvertedIndex({self.document_count} docs, "
            f"{self.term_count} terms)"
        )
