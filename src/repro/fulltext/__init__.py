"""Full-text search service (Microsoft Search Service simulation).

Sections 2.2–2.3 and Figure 2: an external index engine maintains
full-text catalogs over file-system documents or relational text
columns; the query component evaluates a CONTAINS predicate and returns
an OLE DB rowset of (key, rank) pairs that the relational engine joins
back to base rows.

This package is that service: :mod:`ifilters` extract text from
"document formats", :mod:`index` maintains the inverted index,
:mod:`querylang` parses the CONTAINS language (phrases, AND/OR/AND NOT,
NEAR proximity, FORMSOF inflectional via the stemmer), and
:mod:`service` ties catalogs together behind the API the OLE DB
provider wraps.
"""

from repro.fulltext.tokenizer import tokenize, tokenize_with_positions
from repro.fulltext.stemmer import stem, inflectional_forms
from repro.fulltext.ifilters import (
    IFilter,
    PlainTextFilter,
    MarkupFilter,
    WordDocumentFilter,
    get_filter_for,
    register_filter,
)
from repro.fulltext.index import InvertedIndex, Posting
from repro.fulltext.querylang import (
    ContainsQuery,
    parse_contains,
    TermNode,
    PhraseNode,
    AndNode,
    OrNode,
    AndNotNode,
    NearNode,
    FormsOfNode,
)
from repro.fulltext.service import (
    FullTextCatalog,
    FullTextService,
    Document,
    Match,
)

__all__ = [
    "tokenize",
    "tokenize_with_positions",
    "stem",
    "inflectional_forms",
    "IFilter",
    "PlainTextFilter",
    "MarkupFilter",
    "WordDocumentFilter",
    "get_filter_for",
    "register_filter",
    "InvertedIndex",
    "Posting",
    "ContainsQuery",
    "parse_contains",
    "TermNode",
    "PhraseNode",
    "AndNode",
    "OrNode",
    "AndNotNode",
    "NearNode",
    "FormsOfNode",
    "FullTextCatalog",
    "FullTextService",
    "Document",
    "Match",
]
