"""Synthetic document corpus generator (Section 2.2's scenario data).

Produces a {path: content} directory snapshot mixing formats the
built-in IFilters handle (.txt, .html, .doc) plus some they do not
(.pdf, .zip — skipped exactly as the real service skips formats with no
installed IFilter).
"""

from __future__ import annotations

import random
from typing import Dict

_TOPIC_SENTENCES = {
    "parallel": [
        "parallel database systems partition data across nodes",
        "shared nothing parallel architectures scale linearly",
        "parallel query execution overlaps scan and join work",
    ],
    "heterogeneous": [
        "heterogeneous query processing federates diverse sources",
        "a heterogeneous system integrates relational and file data",
        "wrappers expose heterogeneous capabilities to the optimizer",
    ],
    "fulltext": [
        "full text indexes support phrase and proximity search",
        "inverted indexes map stems to document postings",
        "ranking orders matches by relevance scores",
    ],
    "filler": [
        "quarterly planning documents are due friday",
        "the cafeteria menu changes seasonally",
        "remember to submit expense reports on time",
        "the annual picnic was well attended",
    ],
}


def generate_corpus(
    document_count: int = 60,
    topic_mix: Dict[str, float] | None = None,
    seed: int = 123,
) -> Dict[str, str]:
    """A directory snapshot of synthetic documents."""
    rng = random.Random(seed)
    topic_mix = topic_mix or {
        "parallel": 0.2,
        "heterogeneous": 0.2,
        "fulltext": 0.15,
        "filler": 0.45,
    }
    topics = list(topic_mix)
    weights = [topic_mix[t] for t in topics]
    corpus: Dict[str, str] = {}
    for index in range(document_count):
        topic = rng.choices(topics, weights)[0]
        sentences = rng.choices(_TOPIC_SENTENCES[topic], k=rng.randint(2, 6))
        extension = rng.choice([".txt", ".txt", ".html", ".doc", ".pdf"])
        path = f"d:\\docs\\{topic}_{index:04d}{extension}"
        body = ". ".join(sentences)
        if extension == ".html":
            content = (
                f"<html><title>{topic} {index}</title>"
                f"<body><p>{body}</p></body></html>"
            )
        elif extension == ".doc":
            content = f"FIELD|author|author{index % 9}\nBODY|{body}"
        else:
            content = body
        corpus[path] = content
    return corpus
