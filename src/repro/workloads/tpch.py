"""TPC-H-lite generator.

Schema and value distributions follow TPC-H's shape (25 nations, 5
regions, customers/suppliers keyed to nations, orders per customer,
lineitems per order with commit dates spread over 1992–1998); the scale
factor counts rows, not gigabytes — Figure 4's plan choice depends only
on *relative* cardinalities, which survive downscaling.
"""

from __future__ import annotations

import datetime as _dt
import random
from typing import Any, Dict, Optional

NATION_NAMES = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
    "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
]
REGION_NAMES = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]


class TpchData:
    """Generated rows per table (plain tuples)."""

    def __init__(self) -> None:
        self.region: list[tuple] = []
        self.nation: list[tuple] = []
        self.customer: list[tuple] = []
        self.supplier: list[tuple] = []
        self.orders: list[tuple] = []
        self.lineitem: list[tuple] = []

    def table_rows(self) -> Dict[str, list[tuple]]:
        return {
            "region": self.region,
            "nation": self.nation,
            "customer": self.customer,
            "supplier": self.supplier,
            "orders": self.orders,
            "lineitem": self.lineitem,
        }


#: CREATE TABLE statements, keyed by table name
TPCH_DDL: Dict[str, str] = {
    "region": (
        "CREATE TABLE region (r_regionkey int PRIMARY KEY, "
        "r_name varchar(25))"
    ),
    "nation": (
        "CREATE TABLE nation (n_nationkey int PRIMARY KEY, "
        "n_name varchar(25), n_regionkey int)"
    ),
    "customer": (
        "CREATE TABLE customer (c_custkey int PRIMARY KEY, "
        "c_name varchar(25), c_address varchar(40), c_nationkey int, "
        "c_phone varchar(15), c_acctbal float, c_mktsegment varchar(10))"
    ),
    "supplier": (
        "CREATE TABLE supplier (s_suppkey int PRIMARY KEY, "
        "s_name varchar(25), s_address varchar(40), s_nationkey int, "
        "s_acctbal float)"
    ),
    "orders": (
        "CREATE TABLE orders (o_orderkey int PRIMARY KEY, o_custkey int, "
        "o_orderstatus varchar(1), o_totalprice float, o_orderdate date)"
    ),
    "lineitem": (
        "CREATE TABLE lineitem (l_orderkey int, l_linenumber int, "
        "l_suppkey int, l_quantity int, l_extendedprice float, "
        "l_commitdate date)"
    ),
}


def generate_tpch(
    customers: int = 1000,
    suppliers: int = 100,
    orders_per_customer: int = 2,
    lineitems_per_order: int = 3,
    seed: int = 42,
) -> TpchData:
    """Generate a deterministic TPC-H-lite dataset."""
    rng = random.Random(seed)
    data = TpchData()
    for key, name in enumerate(REGION_NAMES):
        data.region.append((key, name))
    for key, name in enumerate(NATION_NAMES):
        data.nation.append((key, name, key % len(REGION_NAMES)))
    for key in range(1, customers + 1):
        data.customer.append(
            (
                key,
                f"Customer#{key:09d}",
                f"{rng.randint(1, 999)} Main St Apt {key % 50}",
                rng.randrange(len(NATION_NAMES)),
                f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.choice(SEGMENTS),
            )
        )
    for key in range(1, suppliers + 1):
        data.supplier.append(
            (
                key,
                f"Supplier#{key:09d}",
                f"{rng.randint(1, 999)} Dock Rd",
                rng.randrange(len(NATION_NAMES)),
                round(rng.uniform(-999.99, 9999.99), 2),
            )
        )
    order_key = 0
    for customer_key in range(1, customers + 1):
        for __ in range(orders_per_customer):
            order_key += 1
            order_date = _dt.date(1992, 1, 1) + _dt.timedelta(
                days=rng.randrange(0, 2400)
            )
            data.orders.append(
                (
                    order_key,
                    customer_key,
                    rng.choice("OFP"),
                    round(rng.uniform(100.0, 100000.0), 2),
                    order_date,
                )
            )
            for line_number in range(1, lineitems_per_order + 1):
                commit_date = order_date + _dt.timedelta(
                    days=rng.randrange(1, 120)
                )
                data.lineitem.append(
                    (
                        order_key,
                        line_number,
                        rng.randint(1, max(1, suppliers)),
                        rng.randint(1, 50),
                        round(rng.uniform(10.0, 9000.0), 2),
                        commit_date,
                    )
                )
    return data


def load_tpch(
    engine: Any,
    data: Optional[TpchData] = None,
    tables: Optional[list[str]] = None,
    **generate_kwargs: Any,
) -> TpchData:
    """Create the TPC-H-lite tables on ``engine`` and bulk-load them.

    ``tables`` restricts which tables land on this server — the
    distributed experiments spread tables across instances.
    """
    data = data or generate_tpch(**generate_kwargs)
    wanted = tables if tables is not None else list(TPCH_DDL)
    for table_name in wanted:
        engine.execute(TPCH_DDL[table_name])
        table = engine.catalog.database().table(table_name)
        for row in data.table_rows()[table_name]:
            table.insert(row)
    return data
