"""Synthetic mailbox generator (Section 2.4's scenario data)."""

from __future__ import annotations

import datetime as _dt
import random
from typing import Optional, Sequence

from repro.providers.email import MailFile, MailMessage

_SUBJECTS = [
    "order status", "quote request", "meeting notes", "invoice",
    "delivery window", "renewal", "support question", "thanks",
]
_BODIES = [
    "please confirm the order for next week",
    "can you send the latest quote",
    "attached are the meeting notes from tuesday",
    "the invoice total looks wrong",
    "what is the delivery window for SKU-1182",
]


def generate_mailbox(
    path: str = "d:\\mail\\smith.mmf",
    message_count: int = 100,
    senders: Optional[Sequence[str]] = None,
    reply_fraction: float = 0.4,
    today: _dt.datetime = _dt.datetime(2004, 6, 15, 9, 0),
    seed: int = 99,
) -> MailFile:
    """A mailbox with a mix of recent/old messages, some answered.

    ``reply_fraction`` of incoming messages get a reply authored by the
    mailbox owner (so NOT EXISTS(... InReplyTo ...) has real work).
    """
    rng = random.Random(seed)
    senders = list(
        senders
        or [f"user{i}@customer{i % 7}.example" for i in range(12)]
    )
    mailbox = MailFile(path)
    message_id = 0
    for __ in range(message_count):
        message_id += 1
        age_days = rng.uniform(0, 14)
        date = today - _dt.timedelta(days=age_days)
        sender = rng.choice(senders)
        extras = {}
        attachments = []
        if rng.random() < 0.2:
            extras["Location"] = f"Room {rng.randint(1, 40)}"
        if rng.random() < 0.3:
            attachments.append(
                (f"doc{message_id}.doc", rng.randint(1024, 99999))
            )
        mailbox.add(
            MailMessage(
                message_id,
                sender,
                "smith@corp.example",
                rng.choice(_SUBJECTS),
                date,
                body=rng.choice(_BODIES),
                extras=extras,
                attachments=attachments,
            )
        )
        if rng.random() < reply_fraction:
            reply_to = message_id
            message_id += 1
            mailbox.add(
                MailMessage(
                    message_id,
                    "smith@corp.example",
                    sender,
                    "re: " + mailbox.messages[-1].subject,
                    date + _dt.timedelta(hours=rng.uniform(1, 20)),
                    in_reply_to=reply_to,
                    body="replying to your message",
                )
            )
    return mailbox
