"""Workload generators used by examples, tests, and benchmarks.

* :mod:`tpch` — TPC-H-lite: the customer/supplier/nation/orders/
  lineitem subset the paper's Example 1 and partitioned-view discussion
  use, at row-count scale factors a laptop handles.
* :mod:`tpcc` — TPC-C-lite: warehouses/districts/customers/orders plus
  a new-order transaction driver for the federation scaling experiment
  (Section 4.1.5's federated TPC-C claim).
* :mod:`mailgen` — synthetic mailbox files for the Section 2.4 scenario.
* :mod:`docgen` — synthetic document corpora for the Section 2.2
  full-text scenario.

All generators are deterministic given a seed.
"""

from repro.workloads.tpch import TpchData, generate_tpch, load_tpch
from repro.workloads.tpcc import TpccFederation, build_federation, new_order
from repro.workloads.mailgen import generate_mailbox
from repro.workloads.docgen import generate_corpus

__all__ = [
    "TpchData",
    "generate_tpch",
    "load_tpch",
    "TpccFederation",
    "build_federation",
    "new_order",
    "generate_mailbox",
    "generate_corpus",
]
