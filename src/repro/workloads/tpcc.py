"""TPC-C-lite for the federation scaling experiment.

Section 4.1.5: "SQL Server announced this technology in February 2000
by publishing the world record TPCC benchmark using a federation of 32
Microsoft SQL Server instances."  We reproduce the *shape* of that
result: customers horizontally partitioned by warehouse across N
simulated server instances behind a distributed partitioned view, with
a new-order transaction driver.  Throughput should scale near-linearly
with member count because startup filters route each transaction to a
single member.
"""

from __future__ import annotations

import random
import threading

from repro.engine import ServerInstance
from repro.network.channel import NetworkChannel


class TpccFederation:
    """A federation of server instances plus the coordinating engine."""

    def __init__(
        self,
        coordinator: ServerInstance,
        members: list[ServerInstance],
        warehouses_per_member: int,
        customers_per_warehouse: int,
    ):
        self.coordinator = coordinator
        self.members = members
        self.warehouses_per_member = warehouses_per_member
        self.customers_per_warehouse = customers_per_warehouse
        self._next_order_key = 1
        #: concurrent sessions draw order keys from one sequence
        self._order_key_lock = threading.Lock()

    @property
    def warehouse_count(self) -> int:
        return self.warehouses_per_member * len(self.members)


def build_federation(
    member_count: int = 2,
    warehouses_per_member: int = 2,
    customers_per_warehouse: int = 50,
    latency_ms: float = 0.5,
    seed: int = 7,
) -> TpccFederation:
    """Build an N-member federation with customer/orders partitioned by
    warehouse id."""
    rng = random.Random(seed)
    coordinator = ServerInstance("tpcc-coordinator")
    members: list[ServerInstance] = []
    customer_branches = []
    order_branches = []
    for member_index in range(member_count):
        member = ServerInstance(f"fed{member_index}")
        low = member_index * warehouses_per_member + 1
        high = low + warehouses_per_member - 1
        member.execute(
            f"CREATE TABLE customer_{member_index} ("
            f"c_w_id int NOT NULL CHECK (c_w_id >= {low} AND c_w_id <= {high}), "
            "c_id int, c_name varchar(25), c_balance float)"
        )
        member.execute(
            f"CREATE INDEX ix_cust_{member_index} "
            f"ON customer_{member_index} (c_w_id)"
        )
        member.execute(
            f"CREATE TABLE orders_{member_index} ("
            f"o_w_id int NOT NULL CHECK (o_w_id >= {low} AND o_w_id <= {high}), "
            "o_id int, o_c_id int, o_amount float)"
        )
        customer_table = member.catalog.database().table(
            f"customer_{member_index}"
        )
        for warehouse in range(low, high + 1):
            for customer_id in range(1, customers_per_warehouse + 1):
                customer_table.insert(
                    (
                        warehouse,
                        customer_id,
                        f"Cust-{warehouse}-{customer_id}",
                        round(rng.uniform(0, 5000), 2),
                    )
                )
        coordinator.add_linked_server(
            f"fed{member_index}",
            member,
            NetworkChannel(f"fed{member_index}", latency_ms=latency_ms),
        )
        customer_branches.append(
            f"SELECT * FROM fed{member_index}.master.dbo.customer_{member_index}"
        )
        order_branches.append(
            f"SELECT * FROM fed{member_index}.master.dbo.orders_{member_index}"
        )
        members.append(member)
    coordinator.execute(
        "CREATE VIEW customer AS " + " UNION ALL ".join(customer_branches)
    )
    coordinator.execute(
        "CREATE VIEW orders AS " + " UNION ALL ".join(order_branches)
    )
    return TpccFederation(
        coordinator, members, warehouses_per_member, customers_per_warehouse
    )


def new_order(
    federation: TpccFederation,
    warehouse_id: int,
    customer_id: int,
    amount: float,
    session=None,
) -> int:
    """One new-order transaction: read the customer through the
    partitioned view (startup filters route to one member), then insert
    the order through the view (DTC-coordinated).  ``session`` runs
    both statements under a specific coordinator session (its workload
    group, DOP and settings apply); None uses the default session."""
    coordinator = federation.coordinator
    run = session.execute if session is not None else coordinator.execute
    result = run(
        "SELECT c_name, c_balance FROM customer "
        "WHERE c_w_id = @w AND c_id = @c",
        params={"w": warehouse_id, "c": customer_id},
    )
    if not result.rows:
        raise LookupError(
            f"customer ({warehouse_id}, {customer_id}) not found"
        )
    with federation._order_key_lock:
        order_key = federation._next_order_key
        federation._next_order_key += 1
    run(
        f"INSERT INTO orders VALUES ({warehouse_id}, {order_key}, "
        f"{customer_id}, {amount})"
    )
    return order_key


def run_new_orders(
    federation: TpccFederation, count: int, seed: int = 13, session=None
) -> int:
    """Drive ``count`` uniformly distributed new-order transactions;
    returns the number committed."""
    rng = random.Random(seed)
    committed = 0
    for __ in range(count):
        warehouse_id = rng.randint(1, federation.warehouse_count)
        customer_id = rng.randint(1, federation.customers_per_warehouse)
        new_order(federation, warehouse_id, customer_id,
                  round(rng.uniform(10, 500), 2), session=session)
        committed += 1
    return committed
