"""Per-session execution state for a shared engine.

A :class:`Session` owns everything that used to live as mutable
singletons on :class:`~repro.engine.ServerInstance` — ``PARALLEL_DOP``,
``PARTIAL_RESULTS``, the active collation, the current transaction —
so many threads can run statements against one engine concurrently
without settings leaking between them.  ``engine.execute`` without an
explicit session runs on the engine's *default session*, preserving
the single-user API; ``engine.create_session()`` mints independent
ones.

Settings are applied atomically by ``SET``: validation happens before
any field is mutated, so a failed ``SET`` leaves the session exactly
as it was (the historical bug was ``SET`` writing through to the
engine singleton, where a mid-statement failure left half-applied
state visible to every caller).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.types.collation import DEFAULT_COLLATION

__all__ = ["Session"]


class Session:
    """One client's settings + transaction scope over a shared engine.

    A session is *not* a thread: any thread may use it, but a single
    session should not run two statements at once (like one ODBC
    connection).  Cross-session concurrency is the supported mode.
    """

    def __init__(self, engine: Any, session_id: int, name: str = ""):
        self.engine = engine
        self.session_id = session_id
        self.name = name or f"session-{session_id}"
        #: degree of parallelism for exchange scheduling (cache-invariant)
        self.parallel_dop = 1
        #: answer PV reads from live partitions when members are dark
        self.partial_results = False
        #: active collation (plan-affecting: comparisons fold under it)
        self.collation = DEFAULT_COLLATION
        #: active local transaction attached to DML when none is passed
        self.txn: Optional[Any] = None
        #: explicit workload-group binding (SET WORKLOAD GROUP 'name');
        #: None lets the governor's classifier rules decide
        self.workload_group: Optional[str] = None
        #: statements executed through this session (DMV surface)
        self.statement_count = 0

    # -- statement entry points --------------------------------------------
    def execute(self, sql_text: str, params: Any = None, txn: Any = None):
        return self.engine.execute(sql_text, params, txn=txn, session=self)

    def plan(self, sql_text: str):
        return self.engine.plan(sql_text, session=self)

    # -- transactions -------------------------------------------------------
    def begin_transaction(self, name: str = ""):
        from repro.storage.transactions import LocalTransaction

        if self.txn is not None and self.txn.state == LocalTransaction.ACTIVE:
            raise RuntimeError(
                f"{self.name} already has an active transaction"
            )
        self.txn = LocalTransaction(name or f"{self.name}-txn")
        return self.txn

    def commit(self) -> None:
        if self.txn is None:
            raise RuntimeError(f"{self.name} has no active transaction")
        self.txn.commit()
        self.txn = None

    def abort(self) -> None:
        if self.txn is None:
            raise RuntimeError(f"{self.name} has no active transaction")
        self.txn.abort()
        self.txn = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Session({self.name!r}, dop={self.parallel_dop}, "
            f"partial={self.partial_results})"
        )
