"""Distributed transaction coordinator (MS DTC simulation).

"SQL Server uses the Microsoft Distributed Transaction Coordinator to
ensure atomicity of transactions across data sources" (Section 2).
This package implements crash-safe presumed-abort two-phase commit over
the :class:`~repro.storage.transactions.ResourceManager` protocol: a
write-ahead coordinator log (:mod:`repro.dtc.log`) whose only forced
write is the commit decision, protocol-step crash injection via
:class:`~repro.resilience.faults.TwoPCFaultPlan`, and an in-doubt
recovery path (:meth:`TransactionCoordinator.recover`) that replays the
durable log and re-drives decisions idempotently.
"""

from repro.dtc.coordinator import (
    Branch,
    DistributedTransaction,
    RecoveryReport,
    TransactionCoordinator,
)
from repro.dtc.log import CoordinatorLog, LogRecord, ReplayedTransaction

__all__ = [
    "Branch",
    "CoordinatorLog",
    "DistributedTransaction",
    "LogRecord",
    "RecoveryReport",
    "ReplayedTransaction",
    "TransactionCoordinator",
]
