"""Distributed transaction coordinator (MS DTC simulation).

"SQL Server uses the Microsoft Distributed Transaction Coordinator to
ensure atomicity of transactions across data sources" (Section 2).
This package implements classic presumed-abort two-phase commit over
the :class:`~repro.storage.transactions.ResourceManager` protocol.
"""

from repro.dtc.coordinator import DistributedTransaction, TransactionCoordinator

__all__ = ["DistributedTransaction", "TransactionCoordinator"]
