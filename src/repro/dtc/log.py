"""Write-ahead coordinator log for presumed-abort two-phase commit.

The log is the coordinator's only durable state.  Records are appended
to a volatile tail and become crash-survivable on :meth:`flush` — the
simulated fsync, which charges ``FSYNC_MS`` to the engine's
:class:`~repro.resilience.health.SimulatedClock` so durability has a
visible latency cost in every experiment.  A coordinator crash
(:meth:`crash`) discards the volatile tail, exactly like losing the OS
page cache.

Presumed abort needs only one forced write per committed transaction —
the ``commit-decision`` record.  Everything else (``begin``,
per-branch ``prepared`` votes, phase-2 ``branch-acked`` entries and the
terminal ``forgotten`` record) rides along unforced: if they are lost,
recovery *presumes abort* for transactions with no durable decision and
conservatively re-delivers COMMIT (idempotently) for transactions whose
decision survived but whose acks did not.

Record kinds::

    begin            txn started phase 1 (participants listed)
    prepared         one branch voted yes
    commit-decision  the commit point (the only forced record)
    branch-acked     one branch acknowledged the decision
    forgotten        all acks in; the coordinator may drop the txn
"""

from __future__ import annotations

from typing import Any, Optional

#: simulated cost of one forced log write
FSYNC_MS = 2.0

BEGIN = "begin"
PREPARED = "prepared"
COMMIT_DECISION = "commit-decision"
BRANCH_ACKED = "branch-acked"
FORGOTTEN = "forgotten"

RECORD_KINDS = (BEGIN, PREPARED, COMMIT_DECISION, BRANCH_ACKED, FORGOTTEN)


class LogRecord:
    """One coordinator-log entry."""

    __slots__ = ("kind", "txn_id", "data", "at_ms", "durable")

    def __init__(self, kind: str, txn_id: int, data: dict, at_ms: float):
        self.kind = kind
        self.txn_id = txn_id
        self.data = data
        self.at_ms = at_ms
        #: True once a flush has made this record crash-survivable
        self.durable = False

    def __repr__(self) -> str:
        tag = "durable" if self.durable else "volatile"
        return f"LogRecord({self.kind}, txn={self.txn_id}, {tag})"


class ReplayedTransaction:
    """What the durable log knows about one transaction after a crash."""

    __slots__ = ("txn_id", "participants", "decided", "acked", "forgotten")

    def __init__(self, txn_id: int):
        self.txn_id = txn_id
        self.participants: list[str] = []
        #: True iff a durable commit-decision record exists
        self.decided = False
        self.acked: set[str] = set()
        self.forgotten = False

    @property
    def decision(self) -> str:
        """``commit`` when the decision record survived, else the
        presumed-abort default."""
        return "commit" if self.decided else "abort"

    def __repr__(self) -> str:
        return (
            f"ReplayedTransaction(txn={self.txn_id}, "
            f"decision={self.decision}, acked={sorted(self.acked)})"
        )


class CoordinatorLog:
    """In-memory WAL with explicit fsync points on the simulated clock."""

    def __init__(self, clock: Any, metrics: Optional[Any] = None,
                 fsync_ms: float = FSYNC_MS):
        self._clock = clock
        self._metrics = metrics
        self.fsync_ms = fsync_ms
        self._records: list[LogRecord] = []
        self.fsyncs = 0

    # -- writing -----------------------------------------------------------
    def append(self, kind: str, txn_id: int, **data: Any) -> LogRecord:
        if kind not in RECORD_KINDS:
            raise ValueError(f"unknown log record kind {kind!r}")
        record = LogRecord(kind, txn_id, data, self._clock.now_ms)
        self._records.append(record)
        return record

    def flush(self) -> None:
        """Force every appended record to stable storage (simulated):
        charges one fsync to the clock and marks the tail durable."""
        self._clock.advance(self.fsync_ms)
        self.fsyncs += 1
        if self._metrics is not None:
            self._metrics.increment("dtc.fsyncs")
        for record in self._records:
            record.durable = True

    # -- crash & recovery ---------------------------------------------------
    def crash(self) -> int:
        """Lose the volatile tail (a coordinator process crash).
        Returns how many unflushed records were dropped."""
        survivors = [r for r in self._records if r.durable]
        dropped = len(self._records) - len(survivors)
        self._records = survivors
        return dropped

    def durable_records(self) -> list[LogRecord]:
        return [r for r in self._records if r.durable]

    @property
    def records(self) -> list[LogRecord]:
        return list(self._records)

    def replay(self) -> dict[int, ReplayedTransaction]:
        """Reconstruct per-transaction durable state — the recovery
        scan.  Only durable records count: a lost ``commit-decision``
        means the transaction is presumed aborted."""
        replayed: dict[int, ReplayedTransaction] = {}

        def entry(txn_id: int) -> ReplayedTransaction:
            found = replayed.get(txn_id)
            if found is None:
                found = ReplayedTransaction(txn_id)
                replayed[txn_id] = found
            return found

        for record in self._records:
            if not record.durable:
                continue
            txn = entry(record.txn_id)
            if record.kind == BEGIN:
                txn.participants = list(record.data.get("participants", ()))
            elif record.kind == COMMIT_DECISION:
                txn.decided = True
                participants = record.data.get("participants")
                if participants:
                    txn.participants = list(participants)
            elif record.kind == BRANCH_ACKED:
                txn.acked.add(record.data.get("branch", ""))
            elif record.kind == FORGOTTEN:
                txn.forgotten = True
        return replayed

    def __repr__(self) -> str:
        durable = sum(1 for r in self._records if r.durable)
        return (
            f"CoordinatorLog({len(self._records)} records, "
            f"{durable} durable, {self.fsyncs} fsyncs)"
        )
