"""Crash-safe presumed-abort two-phase commit coordinator.

The protocol (Section 2 delegates this to MS DTC; we implement it):

::

    phase 1                      phase 2
    -------                      -------
    PREPARE -> every branch      log commit-decision  (FORCED write)
    collect votes                COMMIT -> every branch
    any "no" -> abort all        log branch-acked per ack
                                 log forgotten, drop the txn

*Presumed abort* means the only forced log write is the commit
decision: a transaction with no durable decision record is aborted by
definition, so recovery after any crash earlier than the decision
flush rolls every prepared branch back, while a crash after it
re-drives COMMIT (idempotently) until every branch acks.

Crash injection: a :class:`~repro.resilience.faults.TwoPCFaultPlan`
arms protocol-step crash points (``coordinator_mid_commit``,
``commit_ack_lost:r1``, ...).  A fired coordinator crash point drops
the volatile log tail and surfaces as
:class:`~repro.errors.TransactionInDoubtError`; the transaction parks
in the in-doubt set until :meth:`TransactionCoordinator.recover`
replays the durable log and re-drives the logged decision to every
branch with the standard :class:`~repro.resilience.retry.RetryPolicy`.

While a transaction is in doubt its participants hold prepared state
whose effects are visible in the storage layer (undo is logical, not
versioned), so the coordinator doubles as the **in-doubt resolver**:
the engine consults :meth:`TransactionCoordinator.check_accessible`
before running statements against members or tables an in-doubt
transaction touches, failing them fast instead of exposing torn state.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Optional

from repro.dtc.log import (
    BEGIN,
    BRANCH_ACKED,
    COMMIT_DECISION,
    CoordinatorLog,
    FORGOTTEN,
    PREPARED,
)
from repro.errors import (
    TransactionAborted,
    TransactionError,
    TransactionInDoubtError,
    TransientNetworkError,
    ServerUnavailableError,
)
from repro.network.channel import current_statement_scope
from repro.resilience.health import SimulatedClock
from repro.resilience.retry import RetryPolicy, call_with_retry
from repro.storage.transactions import ResourceManager


class Branch:
    """One enlisted resource manager (one participating server)."""

    ENLISTED = "enlisted"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"

    __slots__ = ("name", "rm", "state", "prepared_at_ms")

    def __init__(self, name: str, rm: ResourceManager):
        self.name = name
        self.rm = rm
        self.state = self.ENLISTED
        self.prepared_at_ms: Optional[float] = None

    def touched_tables(self) -> frozenset:
        tables = getattr(self.rm, "touched_tables", None)
        if callable(tables):
            return frozenset(tables())
        return frozenset()

    def __repr__(self) -> str:
        return f"Branch({self.name}, {self.state})"


class DistributedTransaction:
    """One distributed transaction spanning multiple resource managers."""

    ACTIVE = "active"
    PREPARING = "preparing"
    COMMITTING = "committing"
    COMMITTED = "committed"
    ABORTING = "aborting"
    ABORTED = "aborted"
    IN_DOUBT = "in-doubt"

    def __init__(self, txn_id: int, coordinator: Optional[
            "TransactionCoordinator"] = None):
        self.txn_id = txn_id
        self.state = self.ACTIVE
        self._branches: list[Branch] = []
        self._coordinator = coordinator
        self._lock = threading.RLock()
        #: exactly-once counter latch: set when the coordinator has
        #: attributed this txn to committed_count or aborted_count
        self._counted = False
        #: clock reading when the txn entered the in-doubt state
        self.in_doubt_since_ms: Optional[float] = None
        #: the protocol step whose injected crash parked the txn
        self.crash_point: Optional[str] = None

    def enlist(self, name: str, branch: ResourceManager) -> None:
        """Add a resource manager branch (one per participating server)."""
        with self._lock:
            if self.state != self.ACTIVE:
                raise TransactionError(
                    f"cannot enlist in {self.state} transaction {self.txn_id}"
                )
            self._branches.append(Branch(name, branch))

    @property
    def branches(self) -> list[Branch]:
        return list(self._branches)

    @property
    def branch_names(self) -> list[str]:
        return [branch.name for branch in self._branches]

    def commit(self) -> None:
        """Run both phases through the owning coordinator."""
        if self._coordinator is None:
            raise TransactionError(
                f"transaction {self.txn_id} has no coordinator"
            )
        self._coordinator.commit(self)

    def abort(self) -> None:
        """Roll back every branch.

        The sweep always attempts *every* branch: a failure rolling one
        back is collected, the remaining branches are still aborted,
        and the aggregate surfaces afterwards — one unreachable member
        must never leave its siblings un-rolled-back.
        """
        with self._lock:
            if self.state == self.COMMITTED:
                raise TransactionError(
                    f"transaction {self.txn_id} already committed"
                )
            if self.state == self.ABORTED:
                return
            if self.state == self.IN_DOUBT:
                raise TransactionInDoubtError(
                    f"transaction {self.txn_id} is in doubt; only "
                    f"recovery may resolve it",
                    txn_id=self.txn_id,
                    crash_point=self.crash_point,
                )
            self.state = self.ABORTING
        failures = self._abort_sweep()
        with self._lock:
            self.state = self.ABORTED
        if failures:
            details = "; ".join(
                f"{name}: {type(error).__name__}: {error}"
                for name, error in failures
            )
            raise TransactionError(
                f"transaction {self.txn_id} aborted, but "
                f"{len(failures)} branch rollback(s) failed: {details}"
            )

    def _abort_sweep(self) -> list[tuple[str, Exception]]:
        """Abort every branch not already terminal; aggregate failures."""
        failures: list[tuple[str, Exception]] = []
        for branch in self._branches:
            if branch.state in (Branch.COMMITTED, Branch.ABORTED):
                continue
            try:
                branch.rm.abort()
                branch.state = Branch.ABORTED
            except Exception as error:  # noqa: BLE001 - aggregated
                failures.append((branch.name, error))
        return failures

    def __repr__(self) -> str:
        return (
            f"DistributedTransaction({self.txn_id}, {self.state}, "
            f"branches={self.branch_names})"
        )


class RecoveryReport:
    """What one :meth:`TransactionCoordinator.recover` pass resolved."""

    def __init__(self) -> None:
        #: txn ids whose durable commit decision was re-driven to
        #: completion
        self.committed: list[int] = []
        #: txn ids presumed aborted (no durable decision survived)
        self.aborted: list[int] = []
        #: txn ids still unresolved (a branch stayed unreachable)
        self.unresolved: list[int] = []

    @property
    def resolved(self) -> int:
        return len(self.committed) + len(self.aborted)

    def __repr__(self) -> str:
        return (
            f"RecoveryReport(committed={self.committed}, "
            f"aborted={self.aborted}, unresolved={self.unresolved})"
        )


class TransactionCoordinator:
    """The MS DTC role: registry, WAL, crash points, and recovery.

    Thread-safe: ``begin``/``commit``/``abort`` may race across
    sessions — id minting, the active/in-doubt registries and the
    outcome counters all mutate under one lock, and each transaction
    is attributed to ``committed_count``/``aborted_count`` exactly once
    (a ``_counted`` latch survives commit-then-abort error paths).
    The 2PC protocol itself runs outside the registry lock (branch
    prepare/commit calls can traverse the simulated network), guarded
    per-transaction by the transaction's own lock-protected state
    machine.
    """

    def __init__(
        self,
        name: str = "dtc",
        clock: Optional[SimulatedClock] = None,
        metrics: Optional[Any] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self.name = name
        self.clock = clock or SimulatedClock()
        self.metrics = metrics
        self.retry_policy = retry_policy or RetryPolicy()
        self.log = CoordinatorLog(self.clock, metrics)
        #: armed protocol-step crash points (None = no injection)
        self.crash_plan = None
        self._lock = threading.RLock()
        self._next_id = 1
        self._active: dict[int, DistributedTransaction] = {}
        self._in_doubt: dict[int, DistributedTransaction] = {}
        self.committed_count = 0
        self.aborted_count = 0
        self.recovered_count = 0

    # -- metrics / trace helpers -------------------------------------------
    def _count(self, metric: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.increment(metric, amount)

    def _gauge_in_doubt(self) -> None:
        if self.metrics is not None:
            self.metrics.set_gauge(
                "dtc.in_doubt_active", float(len(self._in_doubt))
            )

    @staticmethod
    def _trace_event(name: str, **attrs: Any) -> None:
        trace, __ = current_statement_scope()
        if trace is not None:
            trace.event(name, **attrs)

    # -- lifecycle ----------------------------------------------------------
    def begin(self) -> DistributedTransaction:
        with self._lock:
            txn = DistributedTransaction(self._next_id, self)
            self._active[self._next_id] = txn
            self._next_id += 1
        return txn

    def commit(self, txn: DistributedTransaction) -> None:
        """Drive both phases; raises :class:`TransactionAborted` on a
        "no" vote (after rolling every branch back) and
        :class:`TransactionInDoubtError` when an injected crash leaves
        the outcome to recovery."""
        with txn._lock:
            if txn.state != DistributedTransaction.ACTIVE:
                raise TransactionError(
                    f"transaction {txn.txn_id} already {txn.state}"
                )
            txn.state = DistributedTransaction.PREPARING
        try:
            self._phase_one(txn)
            self._phase_two(txn)
        except TransactionAborted:
            self._finish(txn, DistributedTransaction.ABORTED)
            raise
        except TransactionInDoubtError:
            raise
        self._finish(txn, DistributedTransaction.COMMITTED)

    def abort(self, txn: DistributedTransaction) -> None:
        try:
            txn.abort()
        finally:
            if txn.state == DistributedTransaction.ABORTED:
                self._finish(txn, DistributedTransaction.ABORTED)

    # -- the protocol -------------------------------------------------------
    def _phase_one(self, txn: DistributedTransaction) -> None:
        self._crash(txn, "coordinator_before_prepare")
        self.log.append(BEGIN, txn.txn_id, participants=txn.branch_names)
        for branch in txn.branches:
            refusal: Optional[str] = None
            try:
                vote = self._deliver(txn, branch, "prepare")
            except Exception as error:  # noqa: BLE001 - vote no
                vote = False
                refusal = f"{type(error).__name__}: {error}"
            if not vote:
                # the refusing branch self-aborted (or is unreachable);
                # sweep the rest — every branch, aggregated failures
                branch.state = Branch.ABORTED
                failures = txn._abort_sweep()
                with txn._lock:
                    txn.state = DistributedTransaction.ABORTED
                detail = f" ({refusal})" if refusal else ""
                if failures:
                    detail += (
                        "; rollback also failed on "
                        + ", ".join(name for name, __ in failures)
                    )
                self._trace_event(
                    "txn_abort", txn_id=txn.txn_id, branch=branch.name
                )
                raise TransactionAborted(
                    f"transaction {txn.txn_id} aborted: branch "
                    f"{branch.name!r} voted no during prepare{detail}"
                )
            branch.state = Branch.PREPARED
            branch.prepared_at_ms = self.clock.now_ms
            self.log.append(PREPARED, txn.txn_id, branch=branch.name)
            self._count("dtc.prepares")
        self._crash(txn, "coordinator_after_prepare")

    def _phase_two(self, txn: DistributedTransaction) -> None:
        with txn._lock:
            txn.state = DistributedTransaction.COMMITTING
        self.log.append(
            COMMIT_DECISION, txn.txn_id, participants=txn.branch_names
        )
        self._crash(txn, "coordinator_after_decision_append")
        self.log.flush()  # THE commit point: the one forced write
        self._trace_event("txn_decision", txn_id=txn.txn_id,
                          decision="commit")
        self._crash(txn, "coordinator_after_decision_flush")
        first = True
        for branch in txn.branches:
            self._deliver_commit(txn, branch)
            self.log.append(BRANCH_ACKED, txn.txn_id, branch=branch.name)
            if first:
                first = False
                self._crash(txn, "coordinator_mid_commit")
        self._crash(txn, "coordinator_before_forget")
        self.log.append(FORGOTTEN, txn.txn_id)

    def _deliver_commit(
        self, txn: DistributedTransaction, branch: Branch
    ) -> None:
        """Phase-2 delivery: converts an undeliverable decision into
        the in-doubt state (the decision is already durable, so only
        recovery — not this statement — may resolve the branch)."""
        try:
            self._deliver(txn, branch, "commit")
        except TransactionInDoubtError:
            raise
        except Exception as error:  # noqa: BLE001 - park in doubt
            self._park_in_doubt(
                txn, f"participant_down_on_commit:{branch.name}"
            )
            raise TransactionInDoubtError(
                f"commit decision for transaction {txn.txn_id} could not "
                f"be delivered to branch {branch.name!r} "
                f"({type(error).__name__}: {error}); the branch holds "
                f"prepared state until recovery re-drives the decision",
                txn_id=txn.txn_id,
                crash_point=f"participant_down_on_commit:{branch.name}",
            ) from error

    def _deliver(
        self, txn: DistributedTransaction, branch: Branch, verb: str
    ) -> Any:
        """One protocol message to one branch, under the retry policy.

        Injected delivery faults fire here: ``participant_down_on_commit``
        makes the branch unreachable (non-retryable), ``commit_ack_lost``
        applies the commit but loses the ack, so the retry loop
        re-delivers and the branch must treat the duplicate as a no-op.
        """
        plan = self.crash_plan
        attempts = {"n": 0}

        def attempt() -> Any:
            attempts["n"] += 1
            if (
                verb == "commit"
                and plan is not None
                and plan.should_fire(
                    f"participant_down_on_commit:{branch.name}"
                )
            ):
                raise ServerUnavailableError(
                    f"participant {branch.name!r} unreachable between "
                    f"prepare-ack and commit"
                )
            result = getattr(branch.rm, verb)()
            if (
                verb == "commit"
                and plan is not None
                and plan.should_fire(f"commit_ack_lost:{branch.name}")
            ):
                self._count("dtc.acks_lost")
                raise TransientNetworkError(
                    f"commit ack from branch {branch.name!r} lost; "
                    f"re-delivering"
                )
            return result

        channel = getattr(branch.rm, "channel", None)
        result = call_with_retry(
            self.retry_policy, channel, attempt,
            description=f"dtc-{verb}:{branch.name}",
        )
        if attempts["n"] > 1:
            self._count("dtc.redeliveries", float(attempts["n"] - 1))
        if verb == "commit":
            branch.state = Branch.COMMITTED
        return result

    # -- crash modeling -----------------------------------------------------
    def _crash(self, txn: DistributedTransaction, step: str) -> None:
        plan = self.crash_plan
        if plan is None or not plan.should_fire(step):
            return
        dropped = self.log.crash()
        self._park_in_doubt(txn, step)
        self._trace_event(
            "txn_in_doubt", txn_id=txn.txn_id, crash_point=step,
            log_records_lost=dropped,
        )
        raise TransactionInDoubtError(
            f"coordinator crashed at {step} during transaction "
            f"{txn.txn_id} ({dropped} volatile log record(s) lost); "
            f"run recover() to resolve",
            txn_id=txn.txn_id,
            crash_point=step,
        )

    def _park_in_doubt(
        self, txn: DistributedTransaction, step: str
    ) -> None:
        with txn._lock:
            txn.state = DistributedTransaction.IN_DOUBT
            txn.in_doubt_since_ms = self.clock.now_ms
            txn.crash_point = step
        with self._lock:
            self._active.pop(txn.txn_id, None)
            self._in_doubt[txn.txn_id] = txn
            self._count("dtc.in_doubt")
            self._gauge_in_doubt()

    def _finish(self, txn: DistributedTransaction, state: str) -> None:
        """Terminal bookkeeping; counts each txn exactly once."""
        with txn._lock:
            txn.state = state
        with self._lock:
            if not txn._counted:
                txn._counted = True
                if state == DistributedTransaction.COMMITTED:
                    self.committed_count += 1
                    self._count("dtc.commits")
                else:
                    self.aborted_count += 1
                    self._count("dtc.aborts")
            self._active.pop(txn.txn_id, None)
            self._in_doubt.pop(txn.txn_id, None)
            self._gauge_in_doubt()

    # -- recovery -----------------------------------------------------------
    def recover(self) -> RecoveryReport:
        """Replay the durable log and resolve every in-doubt txn.

        Transactions with a durable ``commit-decision`` get the commit
        re-driven to every branch (idempotently — branches that already
        committed treat the duplicate as a no-op); transactions without
        one are *presumed aborted* and every prepared branch is rolled
        back.  Idempotent: a second pass with nothing in doubt is a
        no-op, and re-running after a partial recovery only touches the
        still-unresolved transactions.
        """
        report = RecoveryReport()
        with self._lock:
            pending = list(self._in_doubt.values())
        replayed = self.log.replay()
        for txn in pending:
            info = replayed.get(txn.txn_id)
            commit = (
                info is not None and info.decided and not info.forgotten
            )
            verb = "commit" if commit else "abort"
            failures: list[tuple[str, Exception]] = []
            for branch in txn.branches:
                target = Branch.COMMITTED if commit else Branch.ABORTED
                try:
                    self._deliver(txn, branch, verb)
                    branch.state = target
                    if commit:
                        self.log.append(
                            BRANCH_ACKED, txn.txn_id, branch=branch.name
                        )
                except Exception as error:  # noqa: BLE001 - aggregated
                    failures.append((branch.name, error))
            if failures:
                report.unresolved.append(txn.txn_id)
                continue
            self.log.append(FORGOTTEN, txn.txn_id)
            self.log.flush()
            self._finish(
                txn,
                DistributedTransaction.COMMITTED
                if commit
                else DistributedTransaction.ABORTED,
            )
            with self._lock:
                self.recovered_count += 1
            self._count("dtc.recoveries")
            (report.committed if commit else report.aborted).append(
                txn.txn_id
            )
        return report

    # -- the in-doubt resolver ----------------------------------------------
    def has_in_doubt(self) -> bool:
        return bool(self._in_doubt)

    def in_doubt_transactions(self) -> list[DistributedTransaction]:
        with self._lock:
            return list(self._in_doubt.values())

    @staticmethod
    def _undecided(branch: Branch) -> bool:
        # a committed or aborted branch holds decided, final state —
        # reading it is safe even while the txn awaits its forget
        # record; only enlisted/prepared branches hide torn state
        return branch.state not in (Branch.COMMITTED, Branch.ABORTED)

    def in_doubt_branches(self) -> frozenset:
        """Lower-cased branch (server) names with *undecided* state
        held by in-doubt txns."""
        with self._lock:
            return frozenset(
                branch.name.lower()
                for txn in self._in_doubt.values()
                for branch in txn.branches
                if self._undecided(branch)
            )

    def is_branch_in_doubt(self, name: str) -> bool:
        return name.lower() in self.in_doubt_branches()

    def in_doubt_tables(self) -> frozenset:
        """Lower-cased table names touched by undecided branches."""
        with self._lock:
            return frozenset(
                table.lower()
                for txn in self._in_doubt.values()
                for branch in txn.branches
                if self._undecided(branch)
                for table in branch.touched_tables()
            )

    def check_accessible(
        self,
        servers: Iterable[str] = (),
        tables: Iterable[str] = (),
    ) -> None:
        """Fail fast when a statement would touch in-doubt state.

        ``servers`` are linked-server names the statement reads or
        writes through; ``tables`` are unqualified table names.  Any
        overlap with an in-doubt transaction's branches or touched
        tables raises :class:`TransactionInDoubtError` — the statement
        must not observe effects whose fate is undecided.
        """
        if not self._in_doubt:
            return
        blocked_servers = sorted(
            {s.lower() for s in servers} & self.in_doubt_branches()
        )
        blocked_tables = sorted(
            {t.lower() for t in tables} & self.in_doubt_tables()
        )
        if not blocked_servers and not blocked_tables:
            return
        with self._lock:
            txn_ids = sorted(self._in_doubt)
        what = []
        if blocked_servers:
            what.append(f"member(s) {', '.join(blocked_servers)}")
        if blocked_tables:
            what.append(f"table(s) {', '.join(blocked_tables)}")
        raise TransactionInDoubtError(
            f"{' and '.join(what)} held by in-doubt transaction(s) "
            f"{txn_ids}; run recover() or SET PARTIAL_RESULTS ON to "
            f"degrade around the member",
            txn_id=txn_ids[0] if txn_ids else None,
        )

    # -- introspection -------------------------------------------------------
    @property
    def active_transactions(self) -> Iterable[DistributedTransaction]:
        with self._lock:
            return list(self._active.values())

    def transaction_rows(self) -> list[tuple]:
        """Rows for ``sys.dm_tran_active_transactions``: every active
        and in-doubt transaction with its branch roster and (for
        in-doubt ones) how long it has been awaiting recovery."""
        replayed = self.log.replay()
        rows: list[tuple] = []
        with self._lock:
            txns = list(self._active.values()) + list(
                self._in_doubt.values()
            )
        for txn in txns:
            info = replayed.get(txn.txn_id)
            decision = (
                "commit"
                if info is not None and info.decided
                else ("abort" if txn.state == txn.IN_DOUBT else None)
            )
            age = (
                self.clock.now_ms - txn.in_doubt_since_ms
                if txn.in_doubt_since_ms is not None
                else None
            )
            rows.append(
                (
                    txn.txn_id,
                    txn.state,
                    len(txn.branches),
                    ",".join(txn.branch_names),
                    age,
                    decision,
                    txn.crash_point,
                )
            )
        return rows

    def __repr__(self) -> str:
        return (
            f"TransactionCoordinator(active={len(self._active)}, "
            f"in_doubt={len(self._in_doubt)}, "
            f"committed={self.committed_count}, aborted={self.aborted_count})"
        )
