"""Two-phase commit coordinator.

Presumed-abort 2PC: the coordinator collects votes from every enlisted
resource manager; any "no" vote (or exception) aborts all branches.
Distributed DML through partitioned views (Section 4.1.5) enlists one
branch per member server.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import TransactionAborted, TransactionError
from repro.storage.transactions import ResourceManager


class DistributedTransaction:
    """One distributed transaction spanning multiple resource managers."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"

    def __init__(self, txn_id: int):
        self.txn_id = txn_id
        self.state = self.ACTIVE
        self._branches: list[tuple[str, ResourceManager]] = []

    def enlist(self, name: str, branch: ResourceManager) -> None:
        """Add a resource manager branch (one per participating server)."""
        if self.state != self.ACTIVE:
            raise TransactionError(
                f"cannot enlist in {self.state} transaction {self.txn_id}"
            )
        self._branches.append((name, branch))

    @property
    def branch_names(self) -> list[str]:
        return [name for name, __ in self._branches]

    def commit(self) -> None:
        """Run both phases; raises :class:`TransactionAborted` on any
        "no" vote, after rolling every branch back."""
        if self.state != self.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} already {self.state}"
            )
        # phase 1: prepare
        prepared: list[tuple[str, ResourceManager]] = []
        refusing: Optional[str] = None
        for name, branch in self._branches:
            try:
                vote = branch.prepare()
            except Exception:
                vote = False
            if not vote:
                refusing = name
                break
            prepared.append((name, branch))
        if refusing is not None:
            for name, branch in prepared:
                branch.abort()
            self.state = self.ABORTED
            raise TransactionAborted(
                f"transaction {self.txn_id} aborted: branch {refusing!r} "
                "voted no during prepare"
            )
        # phase 2: commit
        for __, branch in self._branches:
            branch.commit()
        self.state = self.COMMITTED

    def abort(self) -> None:
        """Roll back every branch."""
        if self.state == self.COMMITTED:
            raise TransactionError(
                f"transaction {self.txn_id} already committed"
            )
        if self.state == self.ABORTED:
            return
        for __, branch in self._branches:
            branch.abort()
        self.state = self.ABORTED


class TransactionCoordinator:
    """Factory/registry for distributed transactions (the MS DTC role)."""

    def __init__(self) -> None:
        self._next_id = 1
        self._active: dict[int, DistributedTransaction] = {}
        self.committed_count = 0
        self.aborted_count = 0

    def begin(self) -> DistributedTransaction:
        txn = DistributedTransaction(self._next_id)
        self._active[self._next_id] = txn
        self._next_id += 1
        return txn

    def commit(self, txn: DistributedTransaction) -> None:
        try:
            txn.commit()
            self.committed_count += 1
        except TransactionAborted:
            self.aborted_count += 1
            raise
        finally:
            self._active.pop(txn.txn_id, None)

    def abort(self, txn: DistributedTransaction) -> None:
        already_aborted = txn.state == DistributedTransaction.ABORTED
        txn.abort()
        if not already_aborted:
            self.aborted_count += 1
        self._active.pop(txn.txn_id, None)

    @property
    def active_transactions(self) -> Iterable[DistributedTransaction]:
        return list(self._active.values())

    def __repr__(self) -> str:
        return (
            f"TransactionCoordinator(active={len(self._active)}, "
            f"committed={self.committed_count}, aborted={self.aborted_count})"
        )
