"""Golden-plan snapshot corpus.

Each case pins the *shape* of a canonical plan from the paper —
Figure 4(b)'s remote-join choice, Section 4.1.5's partition pruning,
Section 4.1.4's remote spool, and the Section 4.1.2 parameterized
join — as normalized EXPLAIN text under ``tests/golden/``.  Cardinality
and cost numbers are masked (they move with estimator tuning and are
not semantics), but operator structure and the decoded remote SQL are
kept verbatim: if Figure 4(b) silently degrades to 4(a), or a pruned
view starts contacting every member, the snapshot diff says exactly
what changed.

Regenerate deliberately with ``python tools/update_golden.py`` after
reviewing the diff; CI runs ``tools/update_golden.py --check``.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Callable

from repro.testcheck import worlds

#: repo-root-relative snapshot directory
GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "golden"

#: estimator outputs masked out of snapshots (not plan shape)
_VOLATILE = re.compile(r"(rows|cost)=[-+0-9.e]+")

#: synthetic column ids (7+ digits) come from a process-global counter,
#: so their value depends on what compiled earlier in the process —
#: mask the number, keep the alias structure
_SYNTHETIC_COL = re.compile(r"\[c\d{7,}\]")


def normalize_plan(text: str) -> str:
    """Mask cardinality/cost numbers and process-global synthetic
    column ids; keep operator structure and remote SQL."""
    lines = []
    for line in text.splitlines():
        line = _VOLATILE.sub(r"\1=#", line.rstrip())
        line = _SYNTHETIC_COL.sub("[c#]", line)
        lines.append(line)
    return "\n".join(lines).rstrip() + "\n"


def _fig4_plan() -> str:
    local, _remote, _channel = worlds.build_fig4_world()
    return local.plan(worlds.FIG4_SQL).explain()


def _pruning_plan() -> str:
    local, _channels = worlds.build_pruning_world()
    return local.plan(worlds.PRUNING_SQL).explain()


def _spool_plan() -> str:
    local, _channel = worlds.build_spool_world()
    return local.plan(worlds.SPOOL_SQL).explain()


def _param_join_plan() -> str:
    local, _remote, _channel = worlds.build_param_join_world()
    return local.plan(worlds.PARAM_JOIN_SQL).explain()


def _health_penalized_plan() -> str:
    """Figure 4(b)'s deep remote join with remote0's breaker open: the
    optimizer must abandon pushdown and fall back to fetch-and-filter
    (RemoteScans + local join) so the plan survives a replan."""
    local, _remote, _channel = worlds.build_fig4_world()
    local.plan(worlds.FIG4_SQL)  # warm remote metadata while healthy
    local.health.breaker("remote0").force_open(reason="golden")
    return local.plan(worlds.FIG4_SQL).explain()


#: case name -> plan producer (raw EXPLAIN text)
GOLDEN_CASES: dict[str, Callable[[], str]] = {
    "fig4_remote_join": _fig4_plan,
    "partition_pruning": _pruning_plan,
    "remote_spool": _spool_plan,
    "parameterized_join": _param_join_plan,
    "health_penalized_fallback": _health_penalized_plan,
}


def compute_golden(name: str) -> str:
    """Current normalized plan text for one case."""
    return normalize_plan(GOLDEN_CASES[name]())


def snapshot_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.txt"


def load_snapshot(name: str) -> str:
    return snapshot_path(name).read_text(encoding="utf-8")


def plan_diff(name: str, expected: str, actual: str) -> str:
    """Readable unified diff for a regressed plan."""
    import difflib

    return "".join(
        difflib.unified_diff(
            expected.splitlines(keepends=True),
            actual.splitlines(keepends=True),
            fromfile=f"tests/golden/{name}.txt (checked in)",
            tofile=f"{name} (current optimizer)",
        )
    )
