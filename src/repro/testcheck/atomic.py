"""The ``atomic`` oracle: crash 2PC mid-protocol, recover, diff.

The eighth differential configuration is not a SELECT oracle: it drives
seeded DML through the distributed partitioned view with a crash armed
at a random 2PC protocol step (every coordinator crash point plus every
per-branch delivery fault — the full matrix in
:data:`repro.resilience.faults.TWO_PC_CRASH_POINTS` /
:data:`~repro.resilience.faults.TWO_PC_DELIVERY_FAULTS`), resolves any
in-doubt transaction through :meth:`TransactionCoordinator.recover`,
and then requires every member to be **all-or-nothing** against a
single-engine reference that applied exactly the statements that
committed.

Four properties are checked per statement:

1. *atomicity* — after resolution, ``SELECT * FROM pv`` on the
   distributed world equals the reference multiset (no torn writes);
2. *fail-fast* — while a transaction is in doubt, reads through the
   view raise :class:`~repro.errors.TransactionInDoubtError` rather
   than observing prepared-but-undecided effects;
3. *resolution* — recovery resolves every in-doubt transaction to the
   logged decision (commit iff the decision record was flushed);
4. *idempotency* — a second recovery pass is a no-op.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import TransactionAborted, TransactionInDoubtError
from repro.resilience.faults import TwoPCFaultPlan
from repro.testcheck.oracle import (
    DiffReport,
    Mismatch,
    OracleWorld,
    build_world,
    canonical_rows,
    rowsets_equal,
)
from repro.testcheck.schema import PV_YEARS, generate_schema

#: the all-members probe compared after every statement
PROBE_SQL = "SELECT k, pdate, val, tag FROM pv"

#: DML statements driven per seed
STATEMENTS_PER_SEED = 8


def atomic_case_id(seed: int, statement_index: int) -> str:
    """Atomic cases are namespaced ``a<seed>:<index>`` so the plain
    query-oracle case ids stay parseable as integers."""
    return f"a{seed}:{statement_index}"


def _render(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return str(value)


def _generate_statement(rng: random.Random, next_key: list) -> str:
    """One seeded DML statement against the partitioned view.

    Inserts may span partition years (multi-branch transactions are
    where torn commits hide); updates and deletes fan out to every
    member.  Keys from a private high counter keep inserts collision-
    free without consulting table state.
    """
    kind = rng.choice(("insert", "insert", "update", "delete"))
    if kind == "insert":
        rows = []
        for __ in range(rng.randint(1, 3)):
            year = rng.choice(PV_YEARS)
            key = next_key[0]
            next_key[0] += 1
            rows.append(
                f"({key}, '{year}-{rng.randint(1, 12)}-{rng.randint(1, 27)}',"
                f" {rng.randint(0, 50)}, {_render(rng.choice(['x', 'y', None]))})"
            )
        return (
            "INSERT INTO pv (k, pdate, val, tag) VALUES "
            + ", ".join(rows)
        )
    if kind == "update":
        predicate = rng.choice(
            (
                f"val < {rng.randint(1, 8)}",
                f"k BETWEEN {rng.randint(0, 10)} AND {rng.randint(11, 30)}",
                f"tag = {_render(rng.choice(['x', 'y']))}",
            )
        )
        return f"UPDATE pv SET val = {rng.randint(0, 99)} WHERE {predicate}"
    low = rng.randint(0, 25)
    return f"DELETE FROM pv WHERE k BETWEEN {low} AND {low + rng.randint(0, 2)}"


def _probe_rows(world: OracleWorld) -> list[tuple]:
    return world.engine.execute(PROBE_SQL).rows


def _mismatch(
    case: str,
    detail: str,
    sql: str,
    reference_rows: list[tuple],
    actual_rows: list[tuple],
) -> Mismatch:
    return Mismatch(
        case_id=case,
        kind="atomic",
        config="distributed",
        detail=detail,
        sql_by_config={"distributed": sql, "local": sql},
        explain_by_config={},
        reference_rows=canonical_rows(reference_rows),
        actual_rows=canonical_rows(actual_rows),
    )


def run_atomic_battery(
    seed: int, n_statements: int = STATEMENTS_PER_SEED
) -> list[Mismatch]:
    """Drive ``n_statements`` crash-injected DML statements for one
    schema seed; returns every atomicity violation found (empty = the
    all-or-nothing guarantee held at every protocol step)."""
    schema = generate_schema(seed)
    reference = build_world(schema, "local")
    subject = build_world(schema, "distributed")
    engine = subject.engine
    member_hosts = tuple(
        dict.fromkeys(m.host for m in schema.view.members)
    )
    rng = random.Random(seed * 7919 + 11)
    next_key = [100_000]  # far above generated member keys
    mismatches: list[Mismatch] = []

    for index in range(n_statements):
        case = atomic_case_id(seed, index)
        sql = _generate_statement(rng, next_key)
        plan = TwoPCFaultPlan(seed=seed * 1_000 + index)
        armed = plan.arm_random(member_hosts)
        engine.dtc.crash_plan = plan
        committed: Optional[bool] = None
        try:
            try:
                engine.execute(sql)
                committed = True
            except TransactionAborted:
                committed = False
            except TransactionInDoubtError:
                # fail-fast check: while any branch of the in-doubt
                # txn is still undecided (enlisted/prepared), reads
                # through the view must fence.  A crash after every
                # branch committed (e.g. coordinator_before_forget)
                # leaves no torn state, so reads legitimately proceed.
                undecided = any(
                    branch.state not in ("committed", "aborted")
                    for txn in engine.dtc.in_doubt_transactions()
                    for branch in txn.branches
                )
                if undecided:
                    try:
                        rows = _probe_rows(subject)
                        mismatches.append(
                            _mismatch(
                                case,
                                f"read through the view succeeded while "
                                f"txn in doubt (armed {armed})",
                                sql,
                                _probe_rows(reference),
                                rows,
                            )
                        )
                    except TransactionInDoubtError:
                        pass
                report = engine.dtc.recover()
                if report.unresolved:
                    mismatches.append(
                        _mismatch(
                            case,
                            f"recovery left transactions unresolved: "
                            f"{report.unresolved} (armed {armed})",
                            sql,
                            [],
                            [],
                        )
                    )
                    break
                committed = bool(report.committed)
        finally:
            engine.dtc.crash_plan = None

        if engine.dtc.has_in_doubt():
            mismatches.append(
                _mismatch(
                    case,
                    f"in-doubt transactions remain after resolution "
                    f"(armed {armed})",
                    sql,
                    [],
                    [],
                )
            )
            break
        # idempotency: recovery with nothing in doubt is a no-op
        rerun = engine.dtc.recover()
        if rerun.resolved or rerun.unresolved:
            mismatches.append(
                _mismatch(
                    case,
                    f"second recovery pass was not a no-op: {rerun!r}",
                    sql,
                    [],
                    [],
                )
            )
        if committed:
            reference.engine.execute(sql)
        expected = _probe_rows(reference)
        actual = _probe_rows(subject)
        if not rowsets_equal(expected, actual):
            outcome = "committed" if committed else "aborted"
            mismatches.append(
                _mismatch(
                    case,
                    f"partitioned view diverged from reference after "
                    f"{outcome} statement (armed {armed}, "
                    f"fired {plan.fired})",
                    sql,
                    expected,
                    actual,
                )
            )
            break
    return mismatches


def run_atomic_seeds(
    seeds, n_statements: int = STATEMENTS_PER_SEED
) -> DiffReport:
    """The multi-seed crash-recovery fuzz entry point used by CI."""
    report = DiffReport()
    for seed in seeds:
        found = run_atomic_battery(seed, n_statements)
        report.cases_run += n_statements
        report.mismatches.extend(found)
    return report
