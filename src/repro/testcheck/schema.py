"""Seeded random federated schemas for the differential harness.

A :class:`SchemaSpec` is a deterministic function of its seed: table
shapes, host placement (local vs. linked server), row data, and the
year-partitioned view are all drawn from one ``random.Random``.  The
same spec materializes under any topology (everything local, or spread
across linked servers), so the oracle configurations always query
identical data.

Design choices that keep generated queries well-behaved:

* dimension tables carry a dense integer primary key that fact-table
  foreign keys reference (so equi-joins always have sensible matches,
  plus a few misses and NULLs);
* varchar columns draw from a word list with deliberate case variants
  (``'Alpha'``/``'alpha'``) to exercise collation-aware comparison;
* every nullable column actually contains NULLs;
* dates stay inside the partitioned view's year range so range
  predicates interact with partition pruning.
"""

from __future__ import annotations

import datetime as dt
import random
from typing import Optional

#: case variants are intentional: they exercise CI-collation equality,
#: grouping, and ordering across every oracle configuration
WORDS = (
    "Alpha", "alpha", "ALPHA", "Beta", "beta", "Gamma", "gamma",
    "Delta", "delta", "Echo", "Omega", "omega", "Sigma", "sigma",
    "Zeta", "Kappa",
)

#: hosts a table may land on in the distributed topology
HOSTS = ("local", "r1", "r2")

#: years the partitioned view splits on
PV_YEARS = (1992, 1993, 1994)


class ColumnSpec:
    """One column: name, SQL type text, and generation kind."""

    __slots__ = ("name", "sql_type", "kind", "nullable")

    def __init__(self, name: str, sql_type: str, kind: str,
                 nullable: bool = True):
        self.name = name
        self.sql_type = sql_type
        #: 'pk' | 'int' | 'float' | 'str' | 'date' | 'fk:<table>'
        self.kind = kind
        self.nullable = nullable

    @property
    def fk_target(self) -> Optional[str]:
        if self.kind.startswith("fk:"):
            return self.kind.split(":", 1)[1]
        return None

    def __repr__(self) -> str:
        return f"ColumnSpec({self.name} {self.sql_type} [{self.kind}])"


class TableSpec:
    """One table: columns, deterministic rows, and its distributed host."""

    __slots__ = ("name", "columns", "rows", "host", "check_sql")

    def __init__(self, name: str, columns: list[ColumnSpec],
                 rows: list[tuple], host: str,
                 check_sql: Optional[str] = None):
        self.name = name
        self.columns = columns
        self.rows = rows
        self.host = host
        #: extra table-level CHECK clause (partitioned-view members)
        self.check_sql = check_sql

    def ddl(self) -> str:
        parts = []
        for column in self.columns:
            text = f"{column.name} {column.sql_type}"
            if column.kind == "pk":
                text += " PRIMARY KEY"
            elif not column.nullable:
                text += " NOT NULL"
            parts.append(text)
        body = ", ".join(parts)
        if self.check_sql:
            body += f", CHECK ({self.check_sql})"
        return f"CREATE TABLE {self.name} ({body})"

    def column(self, name: str) -> ColumnSpec:
        for column in self.columns:
            if column.name == name:
                return column
        raise KeyError(name)

    def columns_of_kind(self, *kinds: str) -> list[ColumnSpec]:
        out = []
        for column in self.columns:
            kind = "fk" if column.kind.startswith("fk:") else column.kind
            if kind in kinds:
                out.append(column)
        return out

    def __repr__(self) -> str:
        return (
            f"TableSpec({self.name}@{self.host}, "
            f"{len(self.columns)} cols, {len(self.rows)} rows)"
        )


class ViewSpec:
    """A partitioned view over year member tables."""

    __slots__ = ("name", "members", "columns")

    def __init__(self, name: str, members: list[TableSpec],
                 columns: list[ColumnSpec]):
        self.name = name
        self.members = members
        #: logical columns of the view (same for every member)
        self.columns = columns

    def columns_of_kind(self, *kinds: str) -> list[ColumnSpec]:
        out = []
        for column in self.columns:
            kind = "fk" if column.kind.startswith("fk:") else column.kind
            if kind in kinds:
                out.append(column)
        return out


class SchemaSpec:
    """The generated world: tables, an optional partitioned view, and
    which tables reference which (for join generation)."""

    def __init__(self, seed: int):
        self.seed = seed
        self.tables: dict[str, TableSpec] = {}
        self.view: Optional[ViewSpec] = None

    @property
    def fact_tables(self) -> list[TableSpec]:
        return [t for t in self.tables.values()
                if any(c.fk_target for c in t.columns)]

    @property
    def dim_tables(self) -> list[TableSpec]:
        return [t for t in self.tables.values()
                if not any(c.fk_target for c in t.columns)
                and self.view is not None
                and t not in self.view.members]

    def __repr__(self) -> str:
        return f"SchemaSpec(seed={self.seed}, tables={list(self.tables)})"


def _string_value(rng: random.Random, nullable: bool) -> Optional[str]:
    if nullable and rng.random() < 0.15:
        return None
    return rng.choice(WORDS)


def _date_value(rng: random.Random, nullable: bool) -> Optional[dt.date]:
    if nullable and rng.random() < 0.12:
        return None
    year = rng.choice(PV_YEARS)
    return dt.date(year, rng.randint(1, 12), rng.randint(1, 27))


def generate_schema(seed: int) -> SchemaSpec:
    """Deterministic schema + data for one fuzz case family."""
    rng = random.Random(seed)
    spec = SchemaSpec(seed)

    # ---- dimension tables -------------------------------------------------
    n_dims = rng.randint(2, 3)
    for d in range(n_dims):
        name = f"dim{d}"
        n_rows = rng.randint(20, 50)
        columns = [
            ColumnSpec(f"{name}_id", "int", "pk", nullable=False),
            ColumnSpec("grp", "int", "int"),
            ColumnSpec("label", "varchar(20)", "str"),
            ColumnSpec("score", "float", "float"),
            ColumnSpec("since", "date", "date"),
        ]
        rows = []
        for i in range(n_rows):
            rows.append((
                i,
                rng.randint(0, 4) if rng.random() > 0.1 else None,
                _string_value(rng, True),
                round(rng.uniform(0, 100), 2) if rng.random() > 0.1 else None,
                _date_value(rng, True),
            ))
        spec.tables[name] = TableSpec(
            name, columns, rows, rng.choice(HOSTS)
        )

    # ---- fact tables ------------------------------------------------------
    n_facts = rng.randint(1, 2)
    for f in range(n_facts):
        name = f"fact{f}"
        n_rows = rng.randint(40, 90)
        columns = [ColumnSpec(f"{name}_id", "int", "pk", nullable=False)]
        # each fact references 1..n_dims dimensions
        referenced = rng.sample(range(n_dims), rng.randint(1, n_dims))
        for d in referenced:
            columns.append(
                ColumnSpec(f"dim{d}_fk", "int", f"fk:dim{d}")
            )
        columns += [
            ColumnSpec("qty", "int", "int"),
            ColumnSpec("amount", "float", "float"),
            ColumnSpec("note", "varchar(20)", "str"),
            ColumnSpec("odate", "date", "date"),
        ]
        rows = []
        for i in range(n_rows):
            row = [i]
            for d in referenced:
                dim_rows = len(spec.tables[f"dim{d}"].rows)
                if rng.random() < 0.08:
                    row.append(None)
                elif rng.random() < 0.08:
                    row.append(dim_rows + rng.randint(0, 5))  # dangling fk
                else:
                    row.append(rng.randrange(dim_rows))
            row.append(rng.randint(0, 9))
            row.append(round(rng.uniform(-50, 500), 2)
                       if rng.random() > 0.08 else None)
            row.append(_string_value(rng, True))
            row.append(_date_value(rng, True))
            rows.append(tuple(row))
        spec.tables[name] = TableSpec(
            name, columns, rows, rng.choice(HOSTS)
        )

    # ---- partitioned view over year members -------------------------------
    member_columns = [
        ColumnSpec("k", "int", "int", nullable=False),
        ColumnSpec("pdate", "date", "date", nullable=False),
        ColumnSpec("val", "int", "int"),
        ColumnSpec("tag", "varchar(20)", "str"),
    ]
    members = []
    hosts = list(HOSTS)
    rng.shuffle(hosts)
    for index, year in enumerate(PV_YEARS):
        member_name = f"pv_{year}"
        n_rows = rng.randint(15, 35)
        rows = []
        for i in range(n_rows):
            rows.append((
                i,
                dt.date(year, rng.randint(1, 12), rng.randint(1, 27)),
                rng.randint(0, 20) if rng.random() > 0.1 else None,
                _string_value(rng, True),
            ))
        member = TableSpec(
            member_name,
            [ColumnSpec(c.name, c.sql_type, c.kind, c.nullable)
             for c in member_columns],
            rows,
            hosts[index % len(hosts)],
            check_sql=(
                f"pdate >= '{year}-1-1' AND pdate < '{year + 1}-1-1'"
            ),
        )
        members.append(member)
        spec.tables[member_name] = member
    spec.view = ViewSpec("pv", members, member_columns)

    # guarantee the distributed topology is actually distributed: at
    # least one remote and one local table
    tables = list(spec.tables.values())
    if not any(t.host != "local" for t in tables):
        rng.choice(tables).host = "r1"
    if not any(t.host == "local" for t in tables):
        rng.choice(tables).host = "local"
    return spec
