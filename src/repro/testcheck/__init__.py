"""Differential query-correctness harness.

Three legs, one goal — every optimizer/federation/resilience change
must preserve query semantics:

* :mod:`~repro.testcheck.schema` + :mod:`~repro.testcheck.sqlgen` —
  seeded random federated schemas and always-binding SELECT workloads
  built on the :mod:`repro.sql` AST;
* :mod:`~repro.testcheck.oracle` — the multi-oracle differential
  runner (all-local reference vs. distributed vs. remote-rules-ablated
  vs. fault-injected) with collation-aware multiset equality;
* :mod:`~repro.testcheck.golden` — normalized EXPLAIN snapshots for
  the paper's canonical plans (Figure 4, partition pruning, remote
  spool, parameterized join).

CLIs: ``tools/diffcheck.py`` (fuzz runs, seed-based repro) and
``tools/update_golden.py`` (snapshot regeneration).  See
docs/TESTING.md for the workflow.
"""

from repro.testcheck.oracle import (
    CONFIGS,
    DiffReport,
    DifferentialRunner,
    Mismatch,
    build_world,
    build_worlds,
    canonical_rows,
    case_id,
    is_sorted_by,
    parse_case_id,
    rowsets_equal,
)
from repro.testcheck.schema import SchemaSpec, generate_schema
from repro.testcheck.sqlgen import GeneratedQuery, generate_query, render_select

__all__ = [
    "CONFIGS",
    "DiffReport",
    "DifferentialRunner",
    "GeneratedQuery",
    "Mismatch",
    "SchemaSpec",
    "build_world",
    "build_worlds",
    "canonical_rows",
    "case_id",
    "generate_query",
    "generate_schema",
    "is_sorted_by",
    "parse_case_id",
    "render_select",
    "rowsets_equal",
]
