"""Seeded SQL generation over a :class:`~repro.testcheck.schema.SchemaSpec`.

Queries are built as :mod:`repro.sql.ast` trees — never raw strings —
so every generated query binds by construction: column references are
alias-qualified, literals match column types, join conditions follow
declared foreign keys, and ORDER BY uses output ordinals (the binder's
contract).  The AST renders to SQL text per *topology* through a name
map (``fact0`` → ``fact0`` locally, ``r1.master.dbo.fact0`` when that
table lives on a linked server), which is what lets one generated
query run under every oracle configuration.

Determinism guardrails (the comparator relies on these):

* ``TOP`` appears only with an ORDER BY whose final key is the single
  source table's primary key — a total order, so every plan returns
  the same prefix;
* ORDER BY without TOP is checked for *sortedness*, while row content
  is compared as a multiset, so plans remain free to break ties
  differently;
* no floating-point division, and aggregates over floats are compared
  with a tolerance downstream.
"""

from __future__ import annotations

import datetime as dt
import random
from typing import Optional, Union

from repro.sql import ast
from repro.testcheck.schema import (
    PV_YEARS,
    SchemaSpec,
    TableSpec,
    ViewSpec,
    WORDS,
)

Source = Union[TableSpec, ViewSpec]


class GeneratedQuery:
    """One generated SELECT: the AST plus what the checker must know."""

    __slots__ = ("stmt", "order_keys", "has_top", "tables", "seed")

    def __init__(
        self,
        stmt: ast.SelectStmt,
        order_keys: list[tuple[int, bool]],
        has_top: bool,
        tables: list[str],
        seed: int,
    ):
        self.stmt = stmt
        #: (output ordinal, ascending) pairs the result must be sorted by
        self.order_keys = order_keys
        self.has_top = has_top
        #: base table/view names the query touches
        self.tables = tables
        self.seed = seed

    def render(self, name_map: dict[str, str]) -> str:
        """SQL text with table names resolved for one topology."""
        return render_select(self.stmt, name_map)

    def __repr__(self) -> str:
        return f"GeneratedQuery(seed={self.seed}, tables={self.tables})"


# ======================================================================
# AST -> SQL rendering
# ======================================================================

def _render_literal(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, (dt.date, dt.datetime)):
        return f"'{value.isoformat()}'"
    text = str(value).replace("'", "''")
    return f"'{text}'"


def render_expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.LiteralExpr):
        return _render_literal(expr.value)
    if isinstance(expr, ast.NameExpr):
        return ".".join(expr.parts)
    if isinstance(expr, ast.StarExpr):
        return f"{expr.qualifier}.*" if expr.qualifier else "*"
    if isinstance(expr, ast.BinaryExpr):
        return f"({render_expr(expr.left)} {expr.op} {render_expr(expr.right)})"
    if isinstance(expr, ast.UnaryExpr):
        return f"({expr.op}{render_expr(expr.operand)})"
    if isinstance(expr, ast.NotExpr):
        return f"(NOT {render_expr(expr.operand)})"
    if isinstance(expr, ast.IsNullExpr):
        suffix = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"({render_expr(expr.operand)} {suffix})"
    if isinstance(expr, ast.InExpr) and expr.items is not None:
        items = ", ".join(render_expr(item) for item in expr.items)
        keyword = "NOT IN" if expr.negated else "IN"
        return f"({render_expr(expr.operand)} {keyword} ({items}))"
    if isinstance(expr, ast.BetweenExpr):
        keyword = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (
            f"({render_expr(expr.operand)} {keyword} "
            f"{render_expr(expr.low)} AND {render_expr(expr.high)})"
        )
    if isinstance(expr, ast.LikeExpr):
        keyword = "NOT LIKE" if expr.negated else "LIKE"
        return (
            f"({render_expr(expr.operand)} {keyword} "
            f"{render_expr(expr.pattern)})"
        )
    if isinstance(expr, ast.FuncExpr):
        if expr.star:
            return f"{expr.name}(*)"
        inner = ", ".join(render_expr(a) for a in expr.args)
        if expr.distinct:
            inner = f"DISTINCT {inner}"
        return f"{expr.name}({inner})"
    if isinstance(expr, ast.CaseExpr):
        parts = ["CASE"]
        for cond, value in expr.whens:
            parts.append(f"WHEN {render_expr(cond)} THEN {render_expr(value)}")
        if expr.else_value is not None:
            parts.append(f"ELSE {render_expr(expr.else_value)}")
        parts.append("END")
        return " ".join(parts)
    raise TypeError(f"renderer does not support {type(expr).__name__}")


def _render_source(source: ast.TableSource, name_map: dict[str, str]) -> str:
    if isinstance(source, ast.NamedTable):
        base = source.parts[-1]
        full = name_map.get(base, base)
        if source.alias and source.alias != full:
            return f"{full} {source.alias}"
        return full
    if isinstance(source, ast.JoinSource):
        keyword = {
            "inner": "JOIN",
            "left_outer": "LEFT JOIN",
            "cross": "CROSS JOIN",
        }[source.kind]
        text = (
            f"{_render_source(source.left, name_map)} {keyword} "
            f"{_render_source(source.right, name_map)}"
        )
        if source.condition is not None:
            text += f" ON {render_expr(source.condition)}"
        return text
    raise TypeError(f"renderer does not support {type(source).__name__}")


def render_select(stmt: ast.SelectStmt, name_map: dict[str, str]) -> str:
    parts = ["SELECT"]
    if stmt.distinct:
        parts.append("DISTINCT")
    if stmt.top is not None:
        parts.append(f"TOP {stmt.top}")
    items = []
    for item in stmt.items:
        text = render_expr(item.expr)
        if item.alias:
            text += f" AS {item.alias}"
        items.append(text)
    parts.append(", ".join(items))
    parts.append("FROM")
    parts.append(
        ", ".join(_render_source(s, name_map) for s in stmt.sources)
    )
    if stmt.where is not None:
        parts.append(f"WHERE {render_expr(stmt.where)}")
    if stmt.group_by:
        parts.append(
            "GROUP BY " + ", ".join(render_expr(e) for e in stmt.group_by)
        )
    if stmt.having is not None:
        parts.append(f"HAVING {render_expr(stmt.having)}")
    if stmt.order_by:
        keys = []
        for item in stmt.order_by:
            text = render_expr(item.expr)
            if not item.ascending:
                text += " DESC"
            keys.append(text)
        parts.append("ORDER BY " + ", ".join(keys))
    return " ".join(parts)


# ======================================================================
# generation
# ======================================================================

def _col(alias: str, name: str) -> ast.NameExpr:
    return ast.NameExpr((alias, name))


def _lit(value: object) -> ast.LiteralExpr:
    return ast.LiteralExpr(value)


def _predicate_for(
    rng: random.Random, alias: str, column, table_rows: int
) -> ast.Expr:
    """One type-correct predicate over ``alias.column``."""
    kind = column.kind
    if kind.startswith("fk:") or kind == "pk":
        kind = "int"
    ref = _col(alias, column.name)
    if column.nullable and rng.random() < 0.15:
        return ast.IsNullExpr(ref, negated=rng.random() < 0.5)
    if kind == "int":
        roll = rng.random()
        bound = max(4, table_rows // 2)
        if roll < 0.4:
            op = rng.choice(["=", "<", "<=", ">", ">=", "<>"])
            return ast.BinaryExpr(op, ref, _lit(rng.randint(0, bound)))
        if roll < 0.7:
            lo = rng.randint(0, bound)
            return ast.BetweenExpr(ref, _lit(lo), _lit(lo + rng.randint(1, 8)))
        values = sorted({rng.randint(0, bound) for _ in range(rng.randint(2, 4))})
        return ast.InExpr(ref, items=[_lit(v) for v in values],
                          negated=rng.random() < 0.2)
    if kind == "float":
        op = rng.choice(["<", "<=", ">", ">="])
        return ast.BinaryExpr(op, ref, _lit(round(rng.uniform(-20, 300), 2)))
    if kind == "str":
        roll = rng.random()
        if roll < 0.45:
            word = rng.choice(WORDS)
            # random re-casing exercises CI-collation equality
            word = rng.choice([word, word.upper(), word.lower()])
            op = rng.choice(["=", "<>", "<", ">="])
            return ast.BinaryExpr(op, ref, _lit(word))
        pattern = rng.choice(
            ["A%", "a%", "%a%", "%ta", "_e%", "%m%", "Z%"]
        )
        return ast.LikeExpr(ref, _lit(pattern), negated=rng.random() < 0.25)
    if kind == "date":
        year = rng.choice(PV_YEARS + (1995,))
        edge = dt.date(year, rng.randint(1, 12), rng.randint(1, 27))
        roll = rng.random()
        if roll < 0.6:
            op = rng.choice(["<", "<=", ">", ">=", "="])
            return ast.BinaryExpr(op, ref, _lit(edge))
        hi = edge + dt.timedelta(days=rng.randint(30, 400))
        return ast.BetweenExpr(ref, _lit(edge), _lit(hi))
    raise AssertionError(kind)


def _where_clause(
    rng: random.Random,
    sources: list[tuple[Source, str]],
) -> Optional[ast.Expr]:
    """0-3 predicates over random columns, joined with AND/OR."""
    n = rng.choice([0, 1, 1, 2, 2, 3])
    predicates = []
    for _ in range(n):
        source, alias = rng.choice(sources)
        columns = source.columns_of_kind("int", "float", "str", "date", "fk")
        if not columns:
            continue
        column = rng.choice(columns)
        rows = len(source.rows) if isinstance(source, TableSpec) else 30
        predicate = _predicate_for(rng, alias, column, rows)
        if rng.random() < 0.1:
            predicate = ast.NotExpr(predicate)
        predicates.append(predicate)
    if not predicates:
        return None
    clause = predicates[0]
    for predicate in predicates[1:]:
        op = "AND" if rng.random() < 0.7 else "OR"
        clause = ast.BinaryExpr(op, clause, predicate)
    return clause


def _aggregate_items(
    rng: random.Random,
    sources: list[tuple[Source, str]],
    group_cols: list[tuple[str, object]],
) -> list[ast.SelectItem]:
    """Group-by columns followed by 1-3 aggregate calls."""
    items = [
        ast.SelectItem(_col(alias, column.name))
        for alias, column in group_cols
    ]
    n_aggs = rng.randint(1, 3)
    for i in range(n_aggs):
        roll = rng.random()
        if roll < 0.3:
            items.append(ast.SelectItem(
                ast.FuncExpr("COUNT", [], star=True), alias=f"agg{i}"
            ))
            continue
        source, alias = rng.choice(sources)
        numeric = source.columns_of_kind("int", "float", "fk", "pk")
        anycol = source.columns_of_kind("int", "float", "str", "date", "pk")
        if roll < 0.55 and numeric:
            column = rng.choice(numeric)
            func = rng.choice(["SUM", "AVG"])
            items.append(ast.SelectItem(
                ast.FuncExpr(func, [_col(alias, column.name)]),
                alias=f"agg{i}",
            ))
        elif roll < 0.8 and anycol:
            column = rng.choice(anycol)
            func = rng.choice(["MIN", "MAX"])
            items.append(ast.SelectItem(
                ast.FuncExpr(func, [_col(alias, column.name)]),
                alias=f"agg{i}",
            ))
        else:
            column = rng.choice(anycol)
            items.append(ast.SelectItem(
                ast.FuncExpr("COUNT", [_col(alias, column.name)],
                             distinct=rng.random() < 0.5),
                alias=f"agg{i}",
            ))
    return items


def generate_query(spec: SchemaSpec, seed: int) -> GeneratedQuery:
    """One deterministic query over the schema (valid by construction)."""
    rng = random.Random(seed)
    shape = rng.choice(
        ["single", "single", "join", "join", "aggregate", "aggregate", "pv"]
    )

    # ---- choose sources ---------------------------------------------------
    sources: list[tuple[Source, str]] = []
    join_conditions: list[ast.Expr] = []
    if shape == "pv" and spec.view is not None:
        sources.append((spec.view, "t0"))
        if rng.random() < 0.5:
            shape = "aggregate"
        else:
            shape = "single"
    elif shape == "join" or (shape == "aggregate" and rng.random() < 0.5):
        facts = spec.fact_tables
        fact = rng.choice(facts)
        sources.append((fact, "t0"))
        fk_columns = [c for c in fact.columns if c.fk_target]
        rng.shuffle(fk_columns)
        for fk in fk_columns[: rng.randint(1, 2)]:
            dim = spec.tables[fk.fk_target]
            alias = f"t{len(sources)}"
            join_conditions.append(
                ast.BinaryExpr(
                    "=", _col("t0", fk.name),
                    _col(alias, dim.columns[0].name),
                )
            )
            sources.append((dim, alias))
    else:
        pool = [t for t in spec.tables.values()
                if spec.view is None or t not in spec.view.members]
        sources.append((rng.choice(pool), "t0"))

    where = _where_clause(rng, sources)
    for condition in join_conditions:
        where = condition if where is None else ast.BinaryExpr(
            "AND", where, condition
        )

    single_table = len(sources) == 1 and isinstance(sources[0][0], TableSpec)
    order_keys: list[tuple[int, bool]] = []
    has_top = False

    # ---- shape the select list -------------------------------------------
    if shape == "aggregate":
        group_cols = []
        if rng.random() < 0.8:
            for _ in range(rng.randint(1, 2)):
                source, alias = rng.choice(sources)
                candidates = source.columns_of_kind("int", "str", "fk")
                if candidates:
                    column = rng.choice(candidates)
                    if not any(c is column for _a, c in group_cols):
                        group_cols.append((alias, column))
        items = _aggregate_items(rng, sources, group_cols)
        group_by = [_col(alias, column.name) for alias, column in group_cols]
        having = None
        if group_by and rng.random() < 0.3:
            having = ast.BinaryExpr(
                ">=", ast.FuncExpr("COUNT", [], star=True),
                _lit(rng.randint(1, 3)),
            )
        stmt = ast.SelectStmt(
            items, [t for t in _build_sources(sources)],
            where=where, group_by=group_by, having=having,
        )
        if group_by and rng.random() < 0.5:
            # order by the group-by columns (output ordinals 1..k)
            order_keys = [
                (i, rng.random() < 0.8) for i in range(len(group_by))
            ]
            stmt.order_by = [
                ast.OrderItem(_lit(ordinal + 1), ascending)
                for ordinal, ascending in order_keys
            ]
    else:
        n_cols = rng.randint(1, 4)
        picked: list[tuple[str, object]] = []
        for _ in range(n_cols):
            source, alias = rng.choice(sources)
            columns = source.columns_of_kind(
                "pk", "int", "float", "str", "date", "fk"
            )
            picked.append((alias, rng.choice(columns)))
        items = [
            ast.SelectItem(_col(alias, column.name))
            for alias, column in picked
        ]
        distinct = rng.random() < 0.25
        stmt = ast.SelectStmt(
            items, [t for t in _build_sources(sources)],
            where=where, distinct=distinct,
        )
        if rng.random() < 0.5:
            n_keys = rng.randint(1, min(2, len(picked)))
            ordinals = rng.sample(range(len(picked)), n_keys)
            order_keys = [(o, rng.random() < 0.75) for o in ordinals]
            if single_table and not distinct and rng.random() < 0.5:
                # TOP needs a total order: append the table's pk
                table, alias = sources[0]
                pk = table.columns[0]
                if all(
                    picked[o][1] is not pk for o, _asc in order_keys
                ):
                    items.append(ast.SelectItem(_col(alias, pk.name)))
                    order_keys.append((len(items) - 1, True))
                stmt.items = items
                stmt.top = rng.randint(1, 12)
                has_top = True
            stmt.order_by = [
                ast.OrderItem(_lit(ordinal + 1), ascending)
                for ordinal, ascending in order_keys
            ]

    return GeneratedQuery(
        stmt, order_keys, has_top,
        [s.name for s, _alias in sources], seed,
    )


def _build_sources(
    sources: list[tuple[Source, str]]
) -> list[ast.TableSource]:
    return [
        ast.NamedTable((source.name,), alias=alias)
        for source, alias in sources
    ]
