"""Multi-oracle differential execution.

Every generated query runs under several configurations that must agree
row-for-row (as a collation-aware multiset):

=============  ========================================================
``local``      every table in one engine — the semantics reference
               (no network, no remote rules, plain local plans)
``distributed``  tables spread across linked servers, full optimizer
               (remote-query construction, parameterized joins,
               locality grouping, remote spools all enabled)
``ablated``    same topology, remote rules disabled — remote tables
               are fetched whole and all logic runs locally
``faulted``    same topology, plus a seeded FaultInjector on every
               channel and a retry policy that must mask the faults
``traced``     same topology as ``distributed``, with hierarchical
               query tracing AND the Query Store enabled — observers
               must never change answers (no observer effect)
``parallel``   same topology, ``SET PARALLEL_DOP 4`` — exchange
               operators run remote branches on concurrent workers,
               which must never change answers (DOP invariance)
``cached``     same topology as ``distributed``; every query runs
               *twice* through the same engine — a cold compile, then
               a warm plan-cache hit — and both answers must match
               the reference (a cached plan is not a different plan)
``governed``   same topology, every statement under a constrained
               workload group (small memory pool, MAX_DOP 1, reduced
               grants) — the resource governor may delay or clamp a
               query, never change its answer
=============  ========================================================

The paper's claim under test: DHQP's remote rules participate in
cost-based search *without changing query semantics* — so plans that
ship predicates, build remote queries, probe with parameters, or
retry after transient faults must all return exactly what the
all-local reference returns.

A fifth column, ``partial``, runs when the schema has a remotely-hosted
partitioned view: the first remote member is taken down and
``SET PARTIAL_RESULTS ON`` — for monotonic queries (no TOP, no
aggregation, no direct read of the down member) the degraded answer
must be a *sub-multiset* of the all-local reference: fewer rows is
degradation, different rows is a bug.

A mismatch report carries everything needed to reproduce: the case
seed, the SQL text rendered for each configuration, each
configuration's EXPLAIN output, and the per-server network counters
(retries, backoff, breaker trips/fast-fails) of every configuration
that ran.
"""

from __future__ import annotations

import datetime as dt
import traceback
import zlib
from collections import Counter
from typing import Any, Optional

from repro.engine import Engine, QueryResult, ServerInstance
from repro.core.optimizer import OptimizerOptions
from repro.network.channel import NetworkChannel
from repro.resilience.faults import FaultInjector
from repro.resilience.retry import RetryPolicy
from repro.sql import ast as ast_sql
from repro.testcheck.schema import SchemaSpec, TableSpec, generate_schema
from repro.testcheck.sqlgen import GeneratedQuery, generate_query
from repro.types.collation import DEFAULT_COLLATION
from repro.types.intervals import SortKey

#: configuration names, in the order they run
CONFIGS = (
    "local", "distributed", "ablated", "faulted", "traced", "parallel",
    "cached", "governed",
)


def _stable_hash(text: str) -> int:
    """Process-independent hash (``hash()`` is randomized per run)."""
    return zlib.crc32(text.encode("utf-8"))

#: remote rules switched off for the ``ablated`` oracle
ABLATED_OPTIONS = dict(
    enable_remote_query=False,
    enable_parameterization=False,
    enable_locality_grouping=False,
    enable_spool=False,
)


class OracleWorld:
    """One materialized configuration: engine + name map for rendering."""

    __slots__ = ("name", "engine", "name_map", "channels")

    def __init__(
        self,
        name: str,
        engine: Engine,
        name_map: dict[str, str],
        channels: Optional[dict[str, NetworkChannel]] = None,
    ):
        self.name = name
        self.engine = engine
        self.name_map = name_map
        self.channels = channels or {}

    def run(self, query: GeneratedQuery) -> QueryResult:
        return self.engine.execute(query.render(self.name_map))

    def explain(self, query: GeneratedQuery) -> str:
        try:
            result = self.engine.execute(
                "EXPLAIN " + query.render(self.name_map)
            )
            return "\n".join(row[0] for row in result.rows)
        except Exception as error:  # EXPLAIN must never mask the report
            return f"<explain failed: {type(error).__name__}: {error}>"


def _load_tables(schema: SchemaSpec, host_for) -> dict[str, Engine]:
    """Create and fill every table on its host; returns engines by name."""
    engines: dict[str, Engine] = {"local": Engine("local")}
    for table in schema.tables.values():
        host = host_for(table)
        engine = engines.get(host)
        if engine is None:
            engine = ServerInstance(host)
            engines[host] = engine
        engine.execute(table.ddl())
        storage = engine.catalog.database().table(table.name)
        for row in table.rows:
            storage.insert(row)
    return engines


def _create_view(
    schema: SchemaSpec, local: Engine, host_for
) -> None:
    if schema.view is None:
        return
    branches = []
    for member in schema.view.members:
        host = host_for(member)
        prefix = "" if host == "local" else f"{host}.master.dbo."
        branches.append(f"SELECT * FROM {prefix}{member.name}")
    local.execute(
        f"CREATE VIEW {schema.view.name} AS " + " UNION ALL ".join(branches)
    )


def build_world(
    schema: SchemaSpec,
    config: str,
    fault_seed: int = 0,
    optimizer_options: Optional[OptimizerOptions] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> OracleWorld:
    """Materialize the schema (tables + data + partitioned view) under
    one oracle configuration."""
    distributed = config != "local"
    host_for = (lambda t: t.host) if distributed else (lambda t: "local")

    if optimizer_options is None and config == "ablated":
        optimizer_options = OptimizerOptions(**ABLATED_OPTIONS)

    engines = _load_tables(schema, host_for)
    local = engines["local"]
    if optimizer_options is not None:
        local.optimizer.options = optimizer_options
    if config == "traced":
        # the observer-effect oracle: full observability on, results
        # must still match the untraced reference row-for-row
        local.tracing_enabled = True
        local.query_store_enabled = True

    channels: dict[str, NetworkChannel] = {}
    if distributed:
        if retry_policy is None and config == "faulted":
            retry_policy = RetryPolicy(
                max_attempts=10, base_backoff_ms=1.0, max_backoff_ms=8.0
            )
        for host, engine in engines.items():
            if host == "local":
                continue
            channel = NetworkChannel(
                f"ch-{host}", latency_ms=0.5, mb_per_second=50
            )
            if config == "faulted":
                channel.fault_injector = FaultInjector(
                    seed=fault_seed + _stable_hash(host) % 1000,
                    transient_rate=0.05,
                    timeout_rate=0.02,
                )
            local.add_linked_server(
                host, engine, channel, retry_policy=retry_policy
            )
            channels[host] = channel
    _create_view(schema, local, host_for)
    if config == "parallel":
        # the DOP-invariance oracle: exchanges above remote branches,
        # answers must still match the serial reference row-for-row
        local.execute("SET PARALLEL_DOP 4")
    if config == "governed":
        # the resource-governor oracle: a constrained group (finite
        # pool, reduced grants, MAX_DOP 1) may delay or clamp every
        # statement but must never change its answer.  The timeout is
        # generous — single-session sequential execution never queues,
        # so nothing can shed.
        local.governor.create_pool(
            "oracle_pool", max_memory_kb=4096.0, max_concurrency=1
        )
        local.governor.create_group(
            "constrained",
            pool="oracle_pool",
            max_dop=1,
            max_memory_grant_pct=50.0,
            request_timeout_ms=10_000.0,
        )
        local.execute("SET WORKLOAD GROUP 'constrained'")

    name_map = {}
    for table in schema.tables.values():
        host = host_for(table)
        name_map[table.name] = (
            table.name if host == "local"
            else f"{host}.master.dbo.{table.name}"
        )
    if schema.view is not None:
        name_map[schema.view.name] = schema.view.name
    return OracleWorld(config, local, name_map, channels)


def build_worlds(
    schema: SchemaSpec, fault_seed: int = 0
) -> dict[str, OracleWorld]:
    return {
        config: build_world(schema, config, fault_seed=fault_seed)
        for config in CONFIGS
    }


# ======================================================================
# the partial-results oracle (degraded-mode subset column)
# ======================================================================

def partial_down_host(schema: SchemaSpec) -> Optional[str]:
    """The partitioned-view member host the partial oracle takes down
    (first remote member host in sorted order), or None when the schema
    has no remotely-hosted view member."""
    if schema.view is None:
        return None
    hosts = sorted(
        {m.host for m in schema.view.members if m.host != "local"}
    )
    return hosts[0] if hosts else None


def build_partial_world(
    schema: SchemaSpec, fault_seed: int = 0
) -> tuple[Optional[OracleWorld], Optional[str]]:
    """A fifth world: distributed topology, one PV member down, and
    ``SET PARTIAL_RESULTS ON`` — its answers must be sub-multisets of
    the all-local reference, never wrong rows."""
    down_host = partial_down_host(schema)
    if down_host is None:
        return None, None
    world = build_world(schema, "partial", fault_seed=fault_seed)
    # warm every member's metadata while healthy: delayed schema
    # validation then lets degraded queries still compile
    world.engine.execute(f"SELECT * FROM {schema.view.name}")
    world.channels[down_host].fault_injector = FaultInjector(
        seed=fault_seed, down=True
    )
    world.engine.execute("SET PARTIAL_RESULTS ON")
    return world, down_host


def eligible_for_partial(
    schema: SchemaSpec, query: GeneratedQuery, down_host: str
) -> bool:
    """The subset property only holds for monotonic queries: no TOP, no
    aggregation (a COUNT over fewer partitions is a *different* number,
    not a subset), and no base table hosted on the down member (those
    reads have no healthy sibling and stay fail-stop)."""
    if query.has_top:
        return False
    stmt = query.stmt
    if stmt.group_by or stmt.having is not None:
        return False
    for item in stmt.items:
        if isinstance(getattr(item, "expr", None), ast_sql.FuncExpr):
            return False
    for name in query.tables:
        table = schema.tables.get(name)
        if table is not None and table.host == down_host:
            return False
    return True


def is_sub_multiset(sub: list[tuple], sup: list[tuple]) -> bool:
    """Canonical multiset inclusion: every row of ``sub`` appears in
    ``sup`` at least as many times."""
    sub_counts = Counter(canonical_rows(sub))
    sup_counts = Counter(canonical_rows(sup))
    return all(
        count <= sup_counts[row] for row, count in sub_counts.items()
    )


# ======================================================================
# collation-aware multiset equality
# ======================================================================

def canonical_value(value: Any) -> tuple:
    """Total-orderable canonical form: NULL < numbers < temporals <
    strings; strings fold per the default collation; floats round to 9
    significant digits so plan-dependent summation order can't produce
    spurious last-ulp mismatches."""
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, float(int(value)))
    if isinstance(value, (int, float)):
        return (1, float(f"{float(value):.9g}"))
    if isinstance(value, dt.datetime):
        return (2, value.isoformat())
    if isinstance(value, dt.date):
        return (2, value.isoformat())
    if isinstance(value, str):
        return (3, DEFAULT_COLLATION.normalize(value))
    return (4, repr(value))


def canonical_rows(rows: list[tuple]) -> list[tuple]:
    """Sorted canonical multiset of a result rowset."""
    return sorted(
        tuple(canonical_value(v) for v in row) for row in rows
    )


def rowsets_equal(a: list[tuple], b: list[tuple]) -> bool:
    return canonical_rows(a) == canonical_rows(b)


def is_sorted_by(
    rows: list[tuple], order_keys: list[tuple[int, bool]]
) -> bool:
    """Whether ``rows`` respects the ORDER BY keys (ties free)."""
    for previous, current in zip(rows, rows[1:]):
        for ordinal, ascending in order_keys:
            lo, hi = SortKey(previous[ordinal]), SortKey(current[ordinal])
            if lo == hi:
                continue
            if (lo < hi) != ascending:
                return False
            break
    return True


# ======================================================================
# mismatch reporting
# ======================================================================

def _sample(rows: list[tuple], limit: int = 8) -> str:
    shown = [repr(r) for r in rows[:limit]]
    if len(rows) > limit:
        shown.append(f"... ({len(rows)} rows total)")
    return "\n    ".join(shown) if shown else "<empty>"


class Mismatch:
    """One differential failure, with everything needed to reproduce."""

    def __init__(
        self,
        case_id: str,
        kind: str,
        config: str,
        detail: str,
        sql_by_config: dict[str, str],
        explain_by_config: dict[str, str],
        reference_rows: list[tuple],
        actual_rows: list[tuple],
        network_by_config: Optional[dict[str, dict]] = None,
        trace_payload: Optional[dict] = None,
        cache_info: Optional[dict] = None,
    ):
        self.case_id = case_id
        #: 'rows' (multiset differs), 'order' (ORDER BY violated),
        #: 'partial' (degraded answer not a subset of the reference),
        #: 'cache' (warm rerun missed the plan cache or diverged),
        #: 'error' (a configuration raised), or 'atomic' (crash-injected
        #: DML left a partitioned view torn, readable while in doubt,
        #: or unresolved after recovery — see testcheck/atomic.py)
        self.kind = kind
        self.config = config
        self.detail = detail
        self.sql_by_config = sql_by_config
        self.explain_by_config = explain_by_config
        self.reference_rows = reference_rows
        self.actual_rows = actual_rows
        #: per-config network attribution (retries, backoff, breaker
        #: trips/fast-fails per server) — whether a config was retrying
        #: or fast-failing is often the whole story of a mismatch
        self.network_by_config = network_by_config or {}
        #: the traced configuration's span tree (QueryTrace.as_dict()),
        #: when that configuration got far enough to produce one — CI
        #: writes it next to the mismatch report as a trace artifact
        self.trace_payload = trace_payload
        #: the ``cached`` configuration's plan-cache evidence — the
        #: cache key plus the cold/warm hit-miss statuses — so a cache
        #: bug report pins down exactly which entry went wrong
        self.cache_info = cache_info or {}

    def describe(self) -> str:
        lines = [
            f"=== MISMATCH case {self.case_id} "
            f"[{self.kind}] config={self.config} ===",
            self.detail,
            f"repro: python tools/diffcheck.py --repro {self.case_id}",
            "",
        ]
        for config, sql in self.sql_by_config.items():
            lines.append(f"-- SQL [{config}] --")
            lines.append(f"  {sql}")
        lines.append("")
        lines.append(f"reference rows:\n    {_sample(self.reference_rows)}")
        lines.append(
            f"{self.config} rows:\n    {_sample(self.actual_rows)}"
        )
        lines.append("")
        for config, network in self.network_by_config.items():
            for server, stats in network.items():
                interesting = {
                    key: value
                    for key, value in stats.items()
                    if key in (
                        "retries", "backoff_ms",
                        "breaker_trips", "breaker_fast_fails",
                    ) and value
                }
                if interesting:
                    lines.append(
                        f"-- network [{config}/{server}] -- {interesting}"
                    )
        if self.cache_info:
            lines.append(f"-- plan cache [cached] -- {self.cache_info}")
        for config, plan in self.explain_by_config.items():
            lines.append(f"-- EXPLAIN [{config}] --")
            lines.extend(f"  {line}" for line in plan.splitlines())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Mismatch({self.case_id}, {self.kind}, {self.config})"


class DiffReport:
    """Outcome of one differential run."""

    def __init__(self) -> None:
        self.cases_run = 0
        self.mismatches: list[Mismatch] = []

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        if self.ok:
            return f"diffcheck: {self.cases_run} cases, all oracles agree"
        parts = [
            f"diffcheck: {len(self.mismatches)} mismatch(es) "
            f"in {self.cases_run} cases",
            "",
        ]
        parts += [m.describe() for m in self.mismatches]
        return "\n".join(parts)


# ======================================================================
# the runner
# ======================================================================

#: queries drawn from each generated schema before moving to the next
QUERIES_PER_SCHEMA = 10


def case_id(schema_seed: int, query_index: int) -> str:
    return f"{schema_seed}:{query_index}"


def parse_case_id(text: str) -> tuple[int, int]:
    schema_seed, _, query_index = text.partition(":")
    return int(schema_seed), int(query_index or 0)


class DifferentialRunner:
    """Seeded fuzz driver: schemas -> queries -> oracle matrix."""

    def __init__(
        self,
        seed: int,
        queries_per_schema: int = QUERIES_PER_SCHEMA,
        collect_explains: bool = True,
    ):
        self.seed = seed
        self.queries_per_schema = queries_per_schema
        self.collect_explains = collect_explains

    # -- single case -------------------------------------------------------
    def check_case(
        self,
        worlds: dict[str, OracleWorld],
        query: GeneratedQuery,
        cid: str,
        partial_world: Optional[OracleWorld] = None,
    ) -> Optional[Mismatch]:
        sql_by_config = {
            name: query.render(world.name_map)
            for name, world in worlds.items()
        }
        if partial_world is not None:
            sql_by_config["partial"] = query.render(partial_world.name_map)

        def explains() -> dict[str, str]:
            if not self.collect_explains:
                return {}
            return {
                name: world.explain(query)
                for name, world in worlds.items()
            }

        results: dict[str, QueryResult] = {}

        def networks() -> dict[str, dict]:
            return {
                name: result.network
                for name, result in results.items()
                if result.network
            }

        def traced_trace() -> Optional[dict]:
            result = results.get("traced")
            if result is not None and result.trace is not None:
                return result.trace.as_dict()
            return None

        def cache_info() -> dict:
            """Plan-cache evidence from the ``cached`` configuration's
            runs so far: the cache key plus each run's hit/miss flag."""
            info: dict = {}
            cold = results.get("cached")
            if cold is not None:
                info["cache_key"] = cold.plan_cache_key
                info["cold"] = cold.plan_cache_status
            warm = results.get("cached-warm")
            if warm is not None:
                info["warm"] = warm.plan_cache_status
            return info

        for name, world in worlds.items():
            if name == "faulted":
                # per-case deterministic fault stream, independent of
                # whatever ran before (so --repro replays exactly)
                for channel in world.channels.values():
                    if channel.fault_injector is not None:
                        channel.fault_injector.reset(
                            seed=_stable_hash(f"{cid}/{channel.name}")
                        )
            try:
                results[name] = world.run(query)
            except Exception:
                return Mismatch(
                    cid, "error", name,
                    f"configuration raised:\n{traceback.format_exc()}",
                    sql_by_config, explains(),
                    results.get("local").rows if "local" in results else [],
                    [],
                    network_by_config=networks(),
                    trace_payload=traced_trace(),
                )

        reference = results["local"]
        for name in CONFIGS[1:]:
            actual = results[name]
            if not rowsets_equal(reference.rows, actual.rows):
                return Mismatch(
                    cid, "rows", name,
                    f"result multiset differs from the all-local "
                    f"reference ({len(reference.rows)} vs "
                    f"{len(actual.rows)} rows)",
                    sql_by_config, explains(),
                    reference.rows, actual.rows,
                    network_by_config=networks(),
                    trace_payload=traced_trace(),
                    cache_info=cache_info(),
                )
        if query.order_keys:
            for name, result in results.items():
                if not is_sorted_by(result.rows, query.order_keys):
                    return Mismatch(
                        cid, "order", name,
                        f"rows violate ORDER BY keys "
                        f"{query.order_keys}",
                        sql_by_config, explains(),
                        reference.rows, result.rows,
                        network_by_config=networks(),
                    trace_payload=traced_trace(),
                    )
        if "cached" in worlds:
            # the plan-cache oracle's second leg: the same SQL through
            # the same engine again must (a) hit the shared plan cache
            # and (b) return the reference answer from the cached plan
            try:
                results["cached-warm"] = worlds["cached"].run(query)
            except Exception:
                return Mismatch(
                    cid, "cache", "cached",
                    f"warm rerun through the plan cache raised:\n"
                    f"{traceback.format_exc()}",
                    sql_by_config, explains(),
                    reference.rows, [],
                    network_by_config=networks(),
                    trace_payload=traced_trace(),
                    cache_info=cache_info(),
                )
            warm = results["cached-warm"]
            if warm.plan_cache_status != "hit":
                return Mismatch(
                    cid, "cache", "cached",
                    f"warm rerun did not hit the plan cache "
                    f"(status={warm.plan_cache_status!r})",
                    sql_by_config, explains(),
                    reference.rows, warm.rows,
                    network_by_config=networks(),
                    trace_payload=traced_trace(),
                    cache_info=cache_info(),
                )
            if not rowsets_equal(reference.rows, warm.rows):
                return Mismatch(
                    cid, "cache", "cached",
                    f"cache-hit answer differs from the all-local "
                    f"reference ({len(reference.rows)} vs "
                    f"{len(warm.rows)} rows)",
                    sql_by_config, explains(),
                    reference.rows, warm.rows,
                    network_by_config=networks(),
                    trace_payload=traced_trace(),
                    cache_info=cache_info(),
                )
            if query.order_keys and not is_sorted_by(
                warm.rows, query.order_keys
            ):
                return Mismatch(
                    cid, "cache", "cached",
                    f"cache-hit rows violate ORDER BY keys "
                    f"{query.order_keys}",
                    sql_by_config, explains(),
                    reference.rows, warm.rows,
                    network_by_config=networks(),
                    trace_payload=traced_trace(),
                    cache_info=cache_info(),
                )
        if partial_world is not None:
            try:
                results["partial"] = partial_world.run(query)
            except Exception:
                return Mismatch(
                    cid, "partial", "partial",
                    f"partial-results configuration raised instead of "
                    f"degrading:\n{traceback.format_exc()}",
                    sql_by_config, explains(),
                    reference.rows, [],
                    network_by_config=networks(),
                    trace_payload=traced_trace(),
                )
            degraded = results["partial"]
            if not is_sub_multiset(degraded.rows, reference.rows):
                return Mismatch(
                    cid, "partial", "partial",
                    f"degraded answer is not a sub-multiset of the "
                    f"all-local reference ({len(degraded.rows)} vs "
                    f"{len(reference.rows)} rows)",
                    sql_by_config, explains(),
                    reference.rows, degraded.rows,
                    network_by_config=networks(),
                    trace_payload=traced_trace(),
                )
        return None

    def run_case(self, schema_seed: int, query_index: int) -> Optional[Mismatch]:
        """Build the oracle worlds for one schema and run one query —
        the ``--repro`` path."""
        schema = generate_schema(schema_seed)
        worlds = build_worlds(schema, fault_seed=schema_seed)
        partial_world, down_host = build_partial_world(
            schema, fault_seed=schema_seed
        )
        query = generate_query(
            schema, schema_seed * 10_000 + query_index
        )
        if partial_world is not None and not eligible_for_partial(
            schema, query, down_host
        ):
            partial_world = None
        return self.check_case(
            worlds, query, case_id(schema_seed, query_index),
            partial_world=partial_world,
        )

    # -- batch -------------------------------------------------------------
    def run(self, n_queries: int, progress=None) -> DiffReport:
        report = DiffReport()
        remaining = n_queries
        schema_index = 0
        while remaining > 0:
            schema_seed = self.seed + schema_index
            schema = generate_schema(schema_seed)
            worlds = build_worlds(schema, fault_seed=schema_seed)
            partial_world, down_host = build_partial_world(
                schema, fault_seed=schema_seed
            )
            batch = min(remaining, self.queries_per_schema)
            for query_index in range(batch):
                query = generate_query(
                    schema, schema_seed * 10_000 + query_index
                )
                cid = case_id(schema_seed, query_index)
                eligible = partial_world is not None and eligible_for_partial(
                    schema, query, down_host
                )
                mismatch = self.check_case(
                    worlds, query, cid,
                    partial_world=partial_world if eligible else None,
                )
                report.cases_run += 1
                if mismatch is not None:
                    report.mismatches.append(mismatch)
            if progress is not None:
                progress(schema_seed, report)
            remaining -= batch
            schema_index += 1
        return report
