"""Shared world builders for tests, benchmarks, and the testcheck
harness.

One place to construct the standard engine topologies everything else
uses: the small people/cities dataset, the remote items/categories
pair, the year-partitioned view, and the paper's canonical scenarios
(Example 1 / Figure 4, partition pruning, remote spool, parameterized
join).  ``tests/conftest.py`` and ``benchmarks/conftest.py`` expose
these as fixtures; the golden-plan corpus and the differential
harness call them directly so every consumer agrees on the setup.
"""

from __future__ import annotations

import datetime as dt

from repro.engine import Engine, ServerInstance
from repro.network.channel import NetworkChannel


def build_people_engine() -> Engine:
    """A local engine with a small, known people/cities dataset."""
    e = Engine("local")
    e.execute(
        "CREATE TABLE people (id int PRIMARY KEY, name varchar(40), "
        "city_id int, age int, salary float)"
    )
    e.execute(
        "CREATE TABLE cities (city_id int PRIMARY KEY, city varchar(40), "
        "country varchar(40))"
    )
    e.execute(
        "INSERT INTO people VALUES "
        "(1, 'Ada', 1, 36, 100.0), (2, 'Grace', 2, 45, 120.0), "
        "(3, 'Edsger', 3, 50, 90.0), (4, 'Barbara', 1, 41, 130.0), "
        "(5, 'Tony', 3, 42, NULL), (6, 'Donald', NULL, 55, 85.0)"
    )
    e.execute(
        "INSERT INTO cities VALUES (1, 'Seattle', 'USA'), "
        "(2, 'Arlington', 'USA'), (3, 'Austin', 'USA')"
    )
    return e


def build_remote_pair() -> tuple[Engine, ServerInstance, NetworkChannel]:
    """(local engine, remote ServerInstance, channel): remote holds an
    items table, local holds a categories table."""
    local = Engine("local")
    remote = ServerInstance("remote0")
    remote.execute(
        "CREATE TABLE items (item_id int PRIMARY KEY, name varchar(40), "
        "category_id int, price float)"
    )
    for i in range(1, 101):
        remote.execute(
            f"INSERT INTO items VALUES ({i}, 'item{i}', {i % 10}, {i * 1.5})"
        )
    remote.execute("CREATE INDEX ix_items_cat ON items (category_id)")
    local.execute(
        "CREATE TABLE categories (category_id int PRIMARY KEY, "
        "label varchar(40))"
    )
    for c in range(10):
        local.execute(f"INSERT INTO categories VALUES ({c}, 'cat{c}')")
    channel = NetworkChannel("test-wan", latency_ms=1.0, mb_per_second=50)
    local.add_linked_server("remote0", remote, channel)
    return local, remote, channel


def build_partitioned_engine() -> Engine:
    """Local engine with a 3-member local partitioned view on years."""
    e = Engine("local")
    for year in (1992, 1993, 1994):
        e.execute(
            f"CREATE TABLE li_{year} (l_orderkey int, "
            f"l_commitdate date NOT NULL CHECK "
            f"(l_commitdate >= '{year}-1-1' AND l_commitdate < '{year + 1}-1-1'), "
            "l_qty int)"
        )
        for i in range(8):
            e.execute(
                f"INSERT INTO li_{year} VALUES ({i}, "
                f"'{year}-03-{i + 1:02d}', {i})"
            )
    e.execute(
        "CREATE VIEW li AS SELECT * FROM li_1992 "
        "UNION ALL SELECT * FROM li_1993 UNION ALL SELECT * FROM li_1994"
    )
    return e


def build_fig4_world(
    customers: int = 1000,
    suppliers: int = 100,
    latency_ms: float = 2.0,
    mb_per_second: float = 10.0,
) -> tuple[Engine, ServerInstance, NetworkChannel]:
    """The Example 1 setup: customer+supplier remote, nation local."""
    from repro.workloads import load_tpch
    from repro.workloads.tpch import TPCH_DDL

    local = Engine("local")
    remote = ServerInstance("remote0")
    remote.catalog.create_database("tpch10g")
    data = load_tpch(remote, customers=customers, suppliers=suppliers,
                     tables=[])
    for table_name in ("customer", "supplier"):
        remote.execute(
            TPCH_DDL[table_name].replace(
                f"CREATE TABLE {table_name}",
                f"CREATE TABLE tpch10g.dbo.{table_name}",
            )
        )
        table = remote.catalog.database("tpch10g").table(table_name)
        for row in data.table_rows()[table_name]:
            table.insert(row)
    load_tpch(local, data=data, tables=["nation", "region"])
    channel = NetworkChannel(
        "wan", latency_ms=latency_ms, mb_per_second=mb_per_second
    )
    local.add_linked_server("remote0", remote, channel)
    return local, remote, channel


#: the Example 1 / Figure 4 query ("which customers are in the same
#: nation as some supplier")
FIG4_SQL = (
    "SELECT c.c_name, c.c_address, c.c_phone "
    "FROM remote0.tpch10g.dbo.customer c, remote0.tpch10g.dbo.supplier s, "
    "nation n WHERE c.c_nationkey = n.n_nationkey "
    "AND n.n_nationkey = s.s_nationkey"
)


def build_pruning_world(
    years: tuple[int, ...] = (1992, 1993, 1994),
    rows_per_year: int = 40,
) -> tuple[Engine, dict[int, NetworkChannel]]:
    """Distributed partitioned view, one member server per year
    (Section 4.1.5's federated lineitem)."""
    local = Engine("local")
    channels: dict[int, NetworkChannel] = {}
    for year in years:
        server = ServerInstance(f"srv{year}")
        server.execute(
            f"CREATE TABLE li_{year} (l_orderkey int, l_qty int, "
            "l_commitdate date NOT NULL CHECK "
            f"(l_commitdate >= '{year}-1-1' AND "
            f"l_commitdate < '{year + 1}-1-1'))"
        )
        table = server.catalog.database().table(f"li_{year}")
        for i in range(rows_per_year):
            table.insert(
                (i, i % 7, dt.date(year, (i % 12) + 1, (i % 27) + 1))
            )
        channel = NetworkChannel(f"ch{year}", latency_ms=1)
        local.add_linked_server(f"srv{year}", server, channel)
        channels[year] = channel
    branches = " UNION ALL ".join(
        f"SELECT * FROM srv{year}.master.dbo.li_{year}" for year in years
    )
    local.execute(f"CREATE VIEW lineitem AS {branches}")
    return local, channels


#: a one-member date-range read the static pruner collapses
PRUNING_SQL = (
    "SELECT COUNT(*) FROM lineitem "
    "WHERE l_commitdate >= '1993-1-1' AND l_commitdate < '1994-1-1'"
)


def build_spool_world() -> tuple[Engine, NetworkChannel]:
    """Two remote servers whose non-equi join forces a remote-inner
    nested-loops rescan (Section 4.1.4's spool scenario)."""
    local = Engine("local")
    remote = ServerInstance("r1")
    remote.execute("CREATE TABLE readings (id int, v int)")
    table = remote.catalog.database().table("readings")
    for i in range(400):
        table.insert((i, i % 100))
    channel = NetworkChannel("wan", latency_ms=1.0, mb_per_second=20)
    local.add_linked_server("r1", remote, channel)
    remote2 = ServerInstance("r2")
    remote2.execute("CREATE TABLE probes (lo int, hi int)")
    probe_table = remote2.catalog.database().table("probes")
    for i in range(30):
        probe_table.insert((i * 3, i * 3 + 3))
    channel2 = NetworkChannel("wan2", latency_ms=1.0, mb_per_second=20)
    local.add_linked_server("r2", remote2, channel2)
    return local, channel


#: non-equi join between two remote servers (remote spool candidate)
SPOOL_SQL = (
    "SELECT COUNT(*) FROM r2.master.dbo.probes p, r1.master.dbo.readings r "
    "WHERE p.lo <= r.v AND r.v < p.hi"
)


def build_param_join_world() -> tuple[Engine, ServerInstance, NetworkChannel]:
    """Small local outer feeding a large remote inner: the Section
    4.1.2 parameterized-join setup (remote-query rule disabled so the
    probe strategy carries the plan)."""
    from repro.core.optimizer import OptimizerOptions

    local = Engine("local")
    remote = ServerInstance("r1")
    remote.execute("CREATE TABLE d (k int PRIMARY KEY, v varchar(10))")
    table = remote.catalog.database().table("d")
    for i in range(2000):
        table.insert((i, f"v{i}"))
    channel = NetworkChannel("c", latency_ms=1, mb_per_second=5)
    local.add_linked_server("r1", remote, channel)
    local.execute("CREATE TABLE f (k int)")
    ftable = local.catalog.database().table("f")
    for i in range(40):
        ftable.insert((i % 5,))
    local.optimizer.options = OptimizerOptions(enable_remote_query=False)
    return local, remote, channel


#: 40 outer rows, 5 distinct keys against the remote inner
PARAM_JOIN_SQL = "SELECT d.v FROM f, r1.master.dbo.d d WHERE f.k = d.k"
