"""Table constraints.

CHECK constraints are load-bearing in this paper: partitioned views
(Section 4.1.5) rely on a CHECK constraint over the partitioning column
of each member table, and the optimizer turns those constraints into
domain (constraint) properties for static and runtime pruning.  A
:class:`CheckConstraint` therefore carries *both* an executable
predicate and, when the predicate is a simple range over one column, an
:class:`~repro.types.intervals.IntervalSet` the optimizer can reason
about symbolically.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.errors import ConstraintError
from repro.types.intervals import IntervalSet
from repro.types.schema import Schema


class Constraint:
    """Base class: validates candidate rows on insert/update."""

    name: str

    def validate(self, row: Sequence[Any], schema: Schema) -> None:
        raise NotImplementedError


class NotNullConstraint(Constraint):
    """Rejects NULL in a column (also encoded on Column.nullable)."""

    def __init__(self, column_name: str, name: Optional[str] = None):
        self.column_name = column_name
        self.name = name or f"nn_{column_name}"

    def validate(self, row: Sequence[Any], schema: Schema) -> None:
        ordinal = schema.ordinal_of(self.column_name)
        if row[ordinal] is None:
            raise ConstraintError(
                f"{self.name}: column {self.column_name!r} must not be NULL"
            )


class CheckConstraint(Constraint):
    """A CHECK constraint with an optional symbolic domain.

    ``domain`` maps the constrained column to the interval set of values
    the constraint admits, e.g. ``L_COMMITDATE >= '1992-01-01' AND
    L_COMMITDATE < '1993-01-01'`` yields the domain
    ``['1992-01-01', '1993-01-01')`` on ``L_COMMITDATE``.  Partition
    routing and pruning read this domain; row validation uses the
    executable predicate.
    """

    def __init__(
        self,
        name: str,
        predicate: Callable[[Sequence[Any], Schema], Optional[bool]],
        column_name: Optional[str] = None,
        domain: Optional[IntervalSet] = None,
        sql_text: str = "",
    ):
        self.name = name
        self.predicate = predicate
        self.column_name = column_name
        self.domain = domain
        self.sql_text = sql_text

    @staticmethod
    def from_domain(
        name: str, column_name: str, domain: IntervalSet, sql_text: str = ""
    ) -> "CheckConstraint":
        """A CHECK constraint defined entirely by a column domain."""

        def predicate(row: Sequence[Any], schema: Schema) -> Optional[bool]:
            value = row[schema.ordinal_of(column_name)]
            if value is None:
                return None  # CHECK passes on UNKNOWN, per SQL
            return domain.contains(value)

        return CheckConstraint(name, predicate, column_name, domain, sql_text)

    def validate(self, row: Sequence[Any], schema: Schema) -> None:
        verdict = self.predicate(row, schema)
        if verdict is False:  # UNKNOWN (None) passes, per SQL semantics
            raise ConstraintError(f"CHECK constraint {self.name} violated")

    def __repr__(self) -> str:
        if self.domain is not None and self.column_name:
            return f"CHECK {self.name}({self.column_name} IN {self.domain!r})"
        return f"CHECK {self.name}"


class UniqueConstraint(Constraint):
    """Declarative uniqueness; enforcement lives in the backing index.

    Tables create a unique B-tree index for each UniqueConstraint, so
    ``validate`` here only re-checks arity — the index raises on
    duplicates during insert.
    """

    def __init__(
        self,
        column_names: Sequence[str],
        name: Optional[str] = None,
        primary_key: bool = False,
    ):
        self.column_names = tuple(column_names)
        self.primary_key = primary_key
        default = "pk" if primary_key else "uq"
        self.name = name or f"{default}_{'_'.join(column_names)}"

    def validate(self, row: Sequence[Any], schema: Schema) -> None:
        for column_name in self.column_names:
            schema.ordinal_of(column_name)  # raises if the column vanished

    def __repr__(self) -> str:
        kind = "PRIMARY KEY" if self.primary_key else "UNIQUE"
        return f"{kind} {self.name}({', '.join(self.column_names)})"
