"""Catalogs: databases, schemas, tables, views.

Names follow SQL Server's convention: ``catalog.schema.object`` within
a server, and ``server.catalog.schema.object`` (four-part names,
Section 2.1) across linked servers.  Lookup is case-insensitive per the
default collation.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import CatalogError
from repro.storage.table import Table
from repro.types.schema import Schema

DEFAULT_SCHEMA = "dbo"


class ViewDefinition:
    """A named view: stored SQL text, expanded at bind time.

    Partitioned views (Section 4.1.5) are ordinary views whose body is
    a UNION ALL of member tables; the federation package recognizes the
    shape and attaches partition metadata.
    """

    __slots__ = ("name", "sql_text", "is_partitioned")

    def __init__(self, name: str, sql_text: str, is_partitioned: bool = False):
        self.name = name
        self.sql_text = sql_text
        self.is_partitioned = is_partitioned

    def __repr__(self) -> str:
        kind = "PARTITIONED VIEW" if self.is_partitioned else "VIEW"
        return f"{kind} {self.name}"


class Database:
    """One catalog: named schemas each holding tables and views."""

    def __init__(self, name: str):
        self.name = name
        self._schemas: dict[str, dict[str, Table]] = {DEFAULT_SCHEMA: {}}
        self._views: dict[str, dict[str, ViewDefinition]] = {DEFAULT_SCHEMA: {}}
        #: bumped by every DDL so compiled plans can detect staleness
        self.schema_version = 0

    def bump_schema_version(self) -> None:
        """Note a schema change not routed through this object (e.g.
        CREATE INDEX mutates the Table directly)."""
        self.schema_version += 1

    @staticmethod
    def _key(name: str) -> str:
        return name.lower()

    def create_schema(self, schema_name: str) -> None:
        key = self._key(schema_name)
        if key in self._schemas:
            raise CatalogError(f"schema {schema_name!r} already exists")
        self._schemas[key] = {}
        self._views[key] = {}
        self.schema_version += 1

    def create_table(
        self, name: str, schema: Schema, schema_name: str = DEFAULT_SCHEMA
    ) -> Table:
        tables = self._tables_in(schema_name)
        key = self._key(name)
        if key in tables:
            raise CatalogError(f"table {name!r} already exists")
        views = self._views[self._key(schema_name)]
        if key in views:
            raise CatalogError(f"{name!r} already exists as a view")
        table = Table(name, schema)
        tables[key] = table
        self.schema_version += 1
        return table

    def create_view(
        self,
        name: str,
        sql_text: str,
        schema_name: str = DEFAULT_SCHEMA,
        is_partitioned: bool = False,
    ) -> ViewDefinition:
        views = self._views_in(schema_name)
        key = self._key(name)
        if key in views or key in self._tables_in(schema_name):
            raise CatalogError(f"object {name!r} already exists")
        view = ViewDefinition(name, sql_text, is_partitioned)
        views[key] = view
        self.schema_version += 1
        return view

    def drop_table(self, name: str, schema_name: str = DEFAULT_SCHEMA) -> None:
        tables = self._tables_in(schema_name)
        key = self._key(name)
        if key not in tables:
            raise CatalogError(f"table {name!r} does not exist")
        del tables[key]
        self.schema_version += 1

    def _tables_in(self, schema_name: str) -> dict[str, Table]:
        key = self._key(schema_name)
        if key not in self._schemas:
            raise CatalogError(f"schema {schema_name!r} does not exist")
        return self._schemas[key]

    def _views_in(self, schema_name: str) -> dict[str, ViewDefinition]:
        key = self._key(schema_name)
        if key not in self._views:
            raise CatalogError(f"schema {schema_name!r} does not exist")
        return self._views[key]

    def table(self, name: str, schema_name: str = DEFAULT_SCHEMA) -> Table:
        tables = self._tables_in(schema_name)
        key = self._key(name)
        if key not in tables:
            raise CatalogError(
                f"table {schema_name}.{name} not found in database {self.name}"
            )
        return tables[key]

    def maybe_table(
        self, name: str, schema_name: str = DEFAULT_SCHEMA
    ) -> Optional[Table]:
        try:
            return self.table(name, schema_name)
        except CatalogError:
            return None

    def view(self, name: str, schema_name: str = DEFAULT_SCHEMA) -> ViewDefinition:
        views = self._views_in(schema_name)
        key = self._key(name)
        if key not in views:
            raise CatalogError(f"view {schema_name}.{name} not found")
        return views[key]

    def maybe_view(
        self, name: str, schema_name: str = DEFAULT_SCHEMA
    ) -> Optional[ViewDefinition]:
        try:
            return self.view(name, schema_name)
        except CatalogError:
            return None

    def tables(self) -> Iterator[tuple[str, Table]]:
        """Yield (schema_name, table) for every table."""
        for schema_name, tables in self._schemas.items():
            for table in tables.values():
                yield schema_name, table

    def views(self) -> Iterator[tuple[str, ViewDefinition]]:
        for schema_name, views in self._views.items():
            for view in views.values():
                yield schema_name, view

    def __repr__(self) -> str:
        n = sum(len(t) for t in self._schemas.values())
        return f"Database({self.name}, {n} tables)"


class Catalog:
    """All databases of one server instance."""

    def __init__(self, default_database: str = "master"):
        self._databases: dict[str, Database] = {}
        self.default_database = default_database
        self._version = 0
        self.create_database(default_database)

    @property
    def schema_version(self) -> int:
        """Monotonic counter over every DDL on this server: database
        creations plus each database's own schema version."""
        return self._version + sum(
            db.schema_version for db in self._databases.values()
        )

    @staticmethod
    def _key(name: str) -> str:
        return name.lower()

    def create_database(self, name: str) -> Database:
        key = self._key(name)
        if key in self._databases:
            raise CatalogError(f"database {name!r} already exists")
        database = Database(name)
        self._databases[key] = database
        self._version += 1
        return database

    def database(self, name: Optional[str] = None) -> Database:
        key = self._key(name or self.default_database)
        if key not in self._databases:
            raise CatalogError(f"database {name!r} does not exist")
        return self._databases[key]

    def databases(self) -> Iterator[Database]:
        return iter(self._databases.values())

    def resolve_table(
        self,
        table_name: str,
        schema_name: Optional[str] = None,
        database_name: Optional[str] = None,
    ) -> Table:
        """Resolve a (possibly partially qualified) table name."""
        database = self.database(database_name)
        return database.table(table_name, schema_name or DEFAULT_SCHEMA)

    def __repr__(self) -> str:
        return f"Catalog({sorted(self._databases)})"
