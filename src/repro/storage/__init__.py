"""Local storage engine.

Every server instance in the reproduction (the local engine of Figure 1
and each simulated remote server) stores its data here: heap files
addressed by row ids (which double as OLE DB *bookmarks*), B-tree
indexes supporting seek/range (the ISAM navigation extension of
Section 3.2.2), CHECK constraints (the basis of partitioned views,
Section 4.1.5), and a catalog of databases/schemas/tables.
"""

from repro.storage.heap import Heap, RowId
from repro.storage.btree import BTreeIndex, IndexMetadata
from repro.storage.constraints import (
    CheckConstraint,
    NotNullConstraint,
    UniqueConstraint,
)
from repro.storage.table import Table
from repro.storage.catalog import Catalog, Database, ViewDefinition
from repro.storage.transactions import LocalTransaction, ResourceManager

__all__ = [
    "Heap",
    "RowId",
    "BTreeIndex",
    "IndexMetadata",
    "CheckConstraint",
    "NotNullConstraint",
    "UniqueConstraint",
    "Table",
    "Catalog",
    "Database",
    "ViewDefinition",
    "LocalTransaction",
    "ResourceManager",
]
