"""Local transactions and the resource-manager surface for MS DTC.

The paper delegates cross-source atomicity to the Microsoft Distributed
Transaction Coordinator (Section 2).  Our simulation gives each server
instance undo-log-based local transactions that also implement the
two-phase-commit :class:`ResourceManager` protocol consumed by
:mod:`repro.dtc`.
"""

from __future__ import annotations

from typing import Any, Protocol

from repro.errors import TransactionError


class ResourceManager(Protocol):
    """What the DTC requires of every transaction branch."""

    def prepare(self) -> bool:
        """Phase 1: vote. True = ready to commit durably."""
        ...

    def commit(self) -> None:
        """Phase 2: make the branch's effects permanent."""
        ...

    def abort(self) -> None:
        """Undo the branch's effects."""
        ...


class LocalTransaction:
    """Undo-log transaction over one server's tables.

    Records logical undo actions for every DML statement executed with
    this transaction attached.  ``prepare`` validates the transaction
    is still open (our in-memory storage cannot fail to persist, so a
    live transaction always votes yes — but injectable failure hooks
    let tests exercise abort paths).
    """

    ACTIVE = "active"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"

    def __init__(self, name: str = "txn"):
        self.name = name
        self.state = self.ACTIVE
        self._undo: list[tuple[str, Any, Any, Any, Any]] = []
        #: test hook: when True, prepare() votes no
        self.fail_on_prepare = False

    # -- undo recording (called by Table DML) ------------------------------
    def record_insert(self, table: Any, rid: int, row: tuple[Any, ...]) -> None:
        self._require_active()
        self._undo.append(("insert", table, rid, row, None))

    def record_delete(self, table: Any, rid: int, old: tuple[Any, ...]) -> None:
        self._require_active()
        self._undo.append(("delete", table, rid, old, None))

    def record_update(
        self, table: Any, rid: int, old: tuple[Any, ...], new: tuple[Any, ...]
    ) -> None:
        self._require_active()
        self._undo.append(("update", table, rid, old, new))

    def _require_active(self) -> None:
        if self.state != self.ACTIVE:
            raise TransactionError(
                f"transaction {self.name} is {self.state}, not active"
            )

    # -- ResourceManager protocol -------------------------------------------
    def prepare(self) -> bool:
        # idempotent re-delivery: a duplicate PREPARE (retried after a
        # lost ack) re-affirms the existing yes vote
        if self.state == self.PREPARED:
            return True
        self._require_active()
        if self.fail_on_prepare:
            self.abort()
            return False
        self.state = self.PREPARED
        return True

    def commit(self) -> None:
        # idempotent re-delivery: recovery may re-drive COMMIT to a
        # branch whose ack was lost after it already committed
        if self.state == self.COMMITTED:
            return
        if self.state not in (self.ACTIVE, self.PREPARED):
            raise TransactionError(
                f"cannot commit transaction in state {self.state}"
            )
        self._undo.clear()
        self.state = self.COMMITTED

    def abort(self) -> None:
        if self.state == self.ABORTED:
            return
        if self.state in (self.COMMITTED,):
            raise TransactionError("cannot abort a committed transaction")
        # undo in reverse order; bypass table DML hooks to avoid re-logging
        for action, table, rid, old, new in reversed(self._undo):
            if action == "insert":
                current = table.heap.fetch(rid)
                for index in table.indexes.values():
                    index.delete(current, rid)
                table.heap.remove_last(rid)
            elif action == "delete":
                table.heap.undelete(rid, old)
                for index in table.indexes.values():
                    index.insert(old, rid)
            elif action == "update":
                current = table.heap.fetch(rid)
                for index in table.indexes.values():
                    index.delete(current, rid)
                table.heap.update(rid, old)
                for index in table.indexes.values():
                    index.insert(old, rid)
            table.invalidate_statistics()
        self._undo.clear()
        self.state = self.ABORTED

    @property
    def pending_actions(self) -> int:
        return len(self._undo)

    def touched_tables(self) -> frozenset:
        """Names of tables with pending (uncommitted) changes — what the
        in-doubt resolver must fence off while this branch's fate is
        undecided."""
        return frozenset(
            table.name for __, table, *_ in self._undo
            if getattr(table, "name", None)
        )

    def __repr__(self) -> str:
        return f"LocalTransaction({self.name}, {self.state})"
