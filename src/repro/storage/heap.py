"""Heap storage: unordered rows addressed by stable row ids.

Row ids serve as OLE DB *bookmarks* (Section 3.3, index providers use
``IRowsetLocate`` to fetch base rows by bookmark).  Deleted slots are
tombstoned so bookmarks never dangle silently — fetching a deleted
bookmark raises.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.errors import ExecutionError

#: A bookmark: stable identifier of a row within one heap.
RowId = int


class Heap:
    """An append-friendly slotted row store."""

    __slots__ = ("_rows", "_live_count")

    def __init__(self) -> None:
        self._rows: list[Optional[tuple[Any, ...]]] = []
        self._live_count = 0

    def __len__(self) -> int:
        return self._live_count

    def insert(self, row: tuple[Any, ...]) -> RowId:
        """Append a row; returns its bookmark."""
        self._rows.append(row)
        self._live_count += 1
        return len(self._rows) - 1

    def fetch(self, rid: RowId) -> tuple[Any, ...]:
        """Fetch a row by bookmark; raises on deleted/invalid bookmarks."""
        if not 0 <= rid < len(self._rows):
            raise ExecutionError(f"invalid bookmark {rid}")
        row = self._rows[rid]
        if row is None:
            raise ExecutionError(f"bookmark {rid} refers to a deleted row")
        return row

    def delete(self, rid: RowId) -> tuple[Any, ...]:
        """Tombstone a row; returns the old image (for undo)."""
        old = self.fetch(rid)
        self._rows[rid] = None
        self._live_count -= 1
        return old

    def update(self, rid: RowId, row: tuple[Any, ...]) -> tuple[Any, ...]:
        """Replace a row in place; returns the old image (for undo)."""
        old = self.fetch(rid)
        self._rows[rid] = row
        return old

    def undelete(self, rid: RowId, row: tuple[Any, ...]) -> None:
        """Restore a tombstoned slot (transaction rollback)."""
        if not 0 <= rid < len(self._rows) or self._rows[rid] is not None:
            raise ExecutionError(f"cannot undelete bookmark {rid}")
        self._rows[rid] = row
        self._live_count += 1

    def remove_last(self, rid: RowId) -> None:
        """Undo an insert (the row must be the one at ``rid``)."""
        if not 0 <= rid < len(self._rows) or self._rows[rid] is None:
            raise ExecutionError(f"cannot undo insert of bookmark {rid}")
        self._rows[rid] = None
        self._live_count -= 1

    def scan(self) -> Iterator[tuple[RowId, tuple[Any, ...]]]:
        """Yield (bookmark, row) for every live row in heap order."""
        for rid, row in enumerate(self._rows):
            if row is not None:
                yield rid, row

    def rows(self) -> Iterator[tuple[Any, ...]]:
        """Yield every live row (no bookmarks)."""
        for row in self._rows:
            if row is not None:
                yield row
