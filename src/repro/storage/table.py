"""Tables: schema + heap + indexes + constraints + statistics.

A table is the unit the OLE DB layer opens rowsets on.  Insert, update,
and delete maintain every index transactionally (via the undo log of
the enclosing :class:`~repro.storage.transactions.LocalTransaction`
when one is active) and enforce constraints.  Statistics are built
lazily and invalidated by writes.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence

from repro.errors import CatalogError, ConstraintError
from repro.stats.table_stats import TableStatistics
from repro.storage.btree import BTreeIndex, IndexMetadata
from repro.storage.constraints import CheckConstraint, Constraint, UniqueConstraint
from repro.storage.heap import Heap, RowId
from repro.types.schema import Schema


class Table:
    """A base table."""

    def __init__(self, name: str, schema: Schema):
        self.name = name
        self.schema = schema
        self.heap = Heap()
        self.indexes: dict[str, BTreeIndex] = {}
        self.constraints: list[Constraint] = []
        self._stats: Optional[TableStatistics] = None
        #: monotonically increasing schema version (delayed schema
        #: validation, Section 4.1.5, compares these across servers)
        self.schema_version = 1

    # -- DDL ----------------------------------------------------------------
    def create_index(
        self, name: str, column_names: Sequence[str], unique: bool = False
    ) -> BTreeIndex:
        """Create and backfill a B-tree index."""
        if name in self.indexes:
            raise CatalogError(f"index {name!r} already exists on {self.name}")
        ordinals = [self.schema.ordinal_of(c) for c in column_names]
        metadata = IndexMetadata(name, self.name, column_names, unique)
        index = BTreeIndex(metadata, ordinals)
        for rid, row in self.heap.scan():
            index.insert(row, rid)
        self.indexes[name] = index
        return index

    def add_constraint(self, constraint: Constraint) -> None:
        """Attach a constraint, validating existing rows.

        Unique constraints are backed by a unique index created here.
        """
        for __, row in self.heap.scan():
            constraint.validate(row, self.schema)
        if isinstance(constraint, UniqueConstraint):
            index_name = f"ix_{constraint.name}"
            if index_name not in self.indexes:
                self.create_index(index_name, constraint.column_names, unique=True)
        self.constraints.append(constraint)

    def check_constraints(self) -> list[CheckConstraint]:
        """All CHECK constraints (partition pruning reads these)."""
        return [c for c in self.constraints if isinstance(c, CheckConstraint)]

    # -- DML ----------------------------------------------------------------
    def insert(self, row: Sequence[Any], txn: Optional[Any] = None) -> RowId:
        """Validate, store, and index one row."""
        coerced = self.schema.validate_row(row)
        for constraint in self.constraints:
            constraint.validate(coerced, self.schema)
        rid = self.heap.insert(coerced)
        inserted_into: list[BTreeIndex] = []
        try:
            for index in self.indexes.values():
                index.insert(coerced, rid)
                inserted_into.append(index)
        except ConstraintError:
            for index in inserted_into:
                index.delete(coerced, rid)
            self.heap.remove_last(rid)
            raise
        self._stats = None
        if txn is not None:
            txn.record_insert(self, rid, coerced)
        return rid

    def delete(self, rid: RowId, txn: Optional[Any] = None) -> tuple[Any, ...]:
        """Delete the row at ``rid``; returns the old image."""
        old = self.heap.delete(rid)
        for index in self.indexes.values():
            index.delete(old, rid)
        self._stats = None
        if txn is not None:
            txn.record_delete(self, rid, old)
        return old

    def update(
        self, rid: RowId, row: Sequence[Any], txn: Optional[Any] = None
    ) -> tuple[Any, ...]:
        """Replace the row at ``rid``; returns the old image."""
        coerced = self.schema.validate_row(row)
        for constraint in self.constraints:
            constraint.validate(coerced, self.schema)
        old = self.heap.fetch(rid)
        for index in self.indexes.values():
            index.delete(old, rid)
        self.heap.update(rid, coerced)
        inserted_into: list[BTreeIndex] = []
        try:
            for index in self.indexes.values():
                index.insert(coerced, rid)
                inserted_into.append(index)
        except ConstraintError:
            # restore the old row image and every index entry
            for index in inserted_into:
                index.delete(coerced, rid)
            self.heap.update(rid, old)
            for index in self.indexes.values():
                index.insert(old, rid)
            raise
        self._stats = None
        if txn is not None:
            txn.record_update(self, rid, old, coerced)
        return old

    # -- reads ----------------------------------------------------------------
    def scan(self) -> Iterator[tuple[RowId, tuple[Any, ...]]]:
        return self.heap.scan()

    def rows(self) -> Iterator[tuple[Any, ...]]:
        return self.heap.rows()

    def fetch(self, rid: RowId) -> tuple[Any, ...]:
        return self.heap.fetch(rid)

    @property
    def row_count(self) -> int:
        return len(self.heap)

    # -- statistics --------------------------------------------------------
    @property
    def statistics(self) -> TableStatistics:
        """Statistics, rebuilt lazily after writes."""
        if self._stats is None:
            self._stats = TableStatistics.build(self.schema, self.heap.rows())
        return self._stats

    def invalidate_statistics(self) -> None:
        self._stats = None

    def __repr__(self) -> str:
        return f"Table({self.name}, {len(self.heap)} rows)"
