"""B-tree-style ordered indexes.

Implements the ISAM navigation surface of Section 3.2.2: "services such
as query processors [can] efficiently access contiguous rows of data
within a range of keys".  The index maps composite keys to bookmarks;
lookups support exact seek, range scans with open/closed bounds, and
full in-order scans.  The in-memory structure is a sorted entry list
with binary search — the asymptotics (O(log n) seek, O(log n + k)
range) match a disk B-tree, which is what the optimizer's cost model
assumes.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Sequence

from repro.errors import ConstraintError
from repro.storage.heap import RowId
from repro.types.intervals import Interval, SortKey


class IndexMetadata:
    """Descriptor exposed through the INDEXES schema rowset."""

    __slots__ = ("name", "table_name", "key_columns", "unique")

    def __init__(
        self,
        name: str,
        table_name: str,
        key_columns: Sequence[str],
        unique: bool = False,
    ):
        self.name = name
        self.table_name = table_name
        self.key_columns = tuple(key_columns)
        self.unique = unique

    def __repr__(self) -> str:
        u = "UNIQUE " if self.unique else ""
        return (
            f"{u}INDEX {self.name} ON {self.table_name}"
            f"({', '.join(self.key_columns)})"
        )


class BTreeIndex:
    """An ordered index over one or more columns of a table."""

    def __init__(self, metadata: IndexMetadata, key_ordinals: Sequence[int]):
        self.metadata = metadata
        self.key_ordinals = tuple(key_ordinals)
        # parallel arrays: sort keys and their (raw key, bookmark) payloads
        self._keys: list[tuple[SortKey, ...]] = []
        self._entries: list[tuple[tuple[Any, ...], RowId]] = []

    def __len__(self) -> int:
        return len(self._entries)

    # -- key extraction ---------------------------------------------------
    def key_of(self, row: Sequence[Any]) -> tuple[Any, ...]:
        """Extract this index's key from a full table row."""
        return tuple(row[i] for i in self.key_ordinals)

    @staticmethod
    def _sortable(key: tuple[Any, ...]) -> tuple[SortKey, ...]:
        return tuple(SortKey(v) for v in key)

    # -- maintenance -------------------------------------------------------
    def insert(self, row: Sequence[Any], rid: RowId) -> None:
        key = self.key_of(row)
        skey = self._sortable(key)
        pos = bisect.bisect_left(self._keys, skey)
        if self.metadata.unique:
            if (
                pos < len(self._keys)
                and self._keys[pos] == skey
                and None not in key  # SQL: NULLs do not collide in unique idx
            ):
                raise ConstraintError(
                    f"duplicate key {key!r} in unique index "
                    f"{self.metadata.name}"
                )
        self._keys.insert(pos, skey)
        self._entries.insert(pos, (key, rid))

    def delete(self, row: Sequence[Any], rid: RowId) -> None:
        key = self.key_of(row)
        skey = self._sortable(key)
        pos = bisect.bisect_left(self._keys, skey)
        while pos < len(self._keys) and self._keys[pos] == skey:
            if self._entries[pos][1] == rid:
                del self._keys[pos]
                del self._entries[pos]
                return
            pos += 1
        raise ConstraintError(
            f"index {self.metadata.name}: entry {key!r}->{rid} not found"
        )

    # -- navigation (IRowsetIndex surface) ---------------------------------
    def seek(self, key: Sequence[Any]) -> Iterator[tuple[tuple[Any, ...], RowId]]:
        """All entries exactly matching ``key`` (full or prefix)."""
        prefix = tuple(key)
        sprefix = self._sortable(prefix)
        pos = bisect.bisect_left(self._keys, sprefix)
        while pos < len(self._keys):
            entry_key, rid = self._entries[pos]
            if self._sortable(entry_key[: len(prefix)]) != sprefix:
                break
            yield entry_key, rid
            pos += 1

    def set_range(
        self, interval: Interval, prefix: Sequence[Any] = ()
    ) -> Iterator[tuple[tuple[Any, ...], RowId]]:
        """Entries whose key component after ``prefix`` lies in ``interval``.

        This is the ``SetRange`` operation of IRowsetIndex: position on
        the lower bound and walk forward until the upper bound.
        """
        prefix = tuple(prefix)
        depth = len(prefix)
        lower = prefix + ((interval.low,) if not _is_inf(interval.low) else ())
        pos = bisect.bisect_left(self._keys, self._sortable(lower))
        while pos < len(self._keys):
            entry_key, rid = self._entries[pos]
            pos += 1
            if self._sortable(entry_key[:depth]) != self._sortable(prefix):
                break
            component = entry_key[depth] if depth < len(entry_key) else None
            if component is None:
                continue  # NULLs never satisfy range predicates
            if not interval.contains(component):
                if SortKey(component) > SortKey(_upper_probe(interval)):
                    break
                continue
            yield entry_key, rid

    def scan(self) -> Iterator[tuple[tuple[Any, ...], RowId]]:
        """Full scan in key order."""
        yield from self._entries

    def __repr__(self) -> str:
        return f"BTreeIndex({self.metadata!r}, {len(self)} entries)"


def _is_inf(value: Any) -> bool:
    return value.__class__.__name__ == "_Infinity"


def _upper_probe(interval: Interval) -> Any:
    """A value at/above the interval's upper bound for early termination."""
    return interval.high
