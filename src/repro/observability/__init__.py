"""Engine-wide observability: metrics, query traces, operator profiles,
and DMV-style system views.

Production SQL Server is operable because of its instrumentation —
``SET STATISTICS PROFILE`` actual plans, optimizer trace flags, and the
``sys.dm_*`` dynamic management views.  This package is the
reproduction's equivalent surface:

* :class:`~repro.observability.metrics.MetricsRegistry` — per-instance
  counters / gauges / histograms, dumped by
  ``sys.dm_os_performance_counters``.
* :class:`~repro.observability.trace.QueryTrace` — structured span
  events for parse/bind/optimize/execute, optimizer rule firings, and
  per-linked-server network attribution.  Off by default; a disabled
  engine records no events.
* :class:`~repro.observability.profile.PlanProfiler` — per-operator
  actual rows, open/next/close time, and rescans, rendered as an
  annotated actual-vs-estimated plan by ``EXPLAIN ANALYZE``.
* :class:`~repro.observability.querystore.QueryStore` — plan-level
  runtime history keyed by (normalized query text, plan fingerprint)
  with regression detection and plan forcing, dumped by the
  ``sys.query_store_*`` views.
* :mod:`~repro.observability.views` — the virtual tables
  ``sys.dm_exec_query_stats``, ``sys.dm_exec_connections``,
  ``sys.dm_os_performance_counters``, ``sys.dm_server_health``, and
  the four ``sys.query_store_*`` views, resolvable by the binder and
  queryable with ordinary SELECTs.
"""

from repro.observability.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.observability.profile import OperatorProfile, PlanProfiler, render_analyze
from repro.observability.querystore import (
    QueryStore,
    Regression,
    normalize_query_text,
    query_hash,
)
from repro.observability.trace import QueryTrace, SpanEvent, TraceEvent
from repro.observability.views import system_view, system_view_names

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OperatorProfile",
    "PlanProfiler",
    "render_analyze",
    "QueryStore",
    "Regression",
    "normalize_query_text",
    "query_hash",
    "QueryTrace",
    "SpanEvent",
    "TraceEvent",
    "system_view",
    "system_view_names",
]
