"""Structured query traces with hierarchical distributed spans.

A :class:`QueryTrace` collects ordered events for one statement:

* **spans** — timed scopes with identities (``span_id``) and parentage
  (``parent_id``): the engine phases (parse / bind / optimize /
  execute), one span per executed plan operator, and one child span per
  remote command dispatched to a linked server, so retries, backoff
  waits, breaker fast-fails and per-member execution nest under the
  operator that dispatched them;
* **rule firings** — one event per optimizer rule application (rule
  name, phase, memo group, expressions added), the Cascades analogue of
  SQL Server's optimizer trace output;
* **point events** — startup-filter skips, remote query dispatches,
  spool rescans, retries, breaker transitions, and per-linked-server
  network attribution.  Point events carry the ``span_id`` of the span
  that was current when they fired.

Every span carries two durations: ``duration_ms`` is wall-clock time
spent inside the span, and ``net_ms`` is *simulated* network time the
channels charged while the span was current (a channel charge
propagates to every span on the current stack, so parent spans
accumulate their children's network time inclusively).

The current-span context is an explicit *per-thread* stack.  Pipelined
operators interleave their pulls, so the operator instrumentation
re-enters its span around every ``next()`` — whatever runs inside a
pull (a remote command, a retry backoff, a fault) is attributed to the
operator that triggered it, not to whichever operator happened to open
last.  Parallel exchange workers run on their own (initially empty)
stacks: each opens a ``parallel_branch`` span explicitly parented to
the consumer-side exchange span (carrying ``parallelism`` / ``worker``
/ ``branch`` attributes), so remote commands keep nesting correctly
while concurrent branches never contaminate each other's attribution.

Tracing is off by default.  The engine only allocates a QueryTrace when
``tracing_enabled`` is set, and every producer site is guarded by an
``is not None`` check, so a disabled engine records no events and pays
one attribute test per hook.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

#: sentinel: "no parent override given" (None is a meaningful parent)
_UNSET = object()


class TraceEvent:
    """One point event: a name plus free-form attributes.

    ``span_id`` identifies the span that was current when the event
    fired (None for events outside any span).
    """

    __slots__ = ("name", "at_ms", "attrs", "span_id")

    def __init__(
        self,
        name: str,
        at_ms: float,
        attrs: Dict[str, Any],
        span_id: Optional[int] = None,
    ):
        self.name = name
        self.at_ms = at_ms
        self.attrs = attrs
        self.span_id = span_id

    def as_dict(self) -> Dict[str, Any]:
        out = {"event": self.name, "at_ms": round(self.at_ms, 3), **self.attrs}
        if self.span_id is not None:
            out["span_id"] = self.span_id
        return out

    def __repr__(self) -> str:
        return f"TraceEvent({self.name}, {self.attrs})"


class SpanEvent(TraceEvent):
    """A timed scope in the span hierarchy.

    For a span, ``span_id`` is its *own* identity and ``parent_id``
    points at the enclosing span (None for root spans).  ``duration_ms``
    accumulates wall-clock time spent inside the span; ``net_ms``
    accumulates simulated network milliseconds charged while the span
    was on the current stack.
    """

    __slots__ = ("duration_ms", "net_ms", "parent_id")

    def __init__(
        self,
        name: str,
        at_ms: float,
        attrs: Dict[str, Any],
        span_id: Optional[int] = None,
        parent_id: Optional[int] = None,
    ):
        super().__init__(name, at_ms, attrs, span_id)
        self.duration_ms: float = 0.0
        self.net_ms: float = 0.0
        self.parent_id = parent_id

    def as_dict(self) -> Dict[str, Any]:
        out = super().as_dict()
        out["duration_ms"] = round(self.duration_ms, 3)
        out["net_ms"] = round(self.net_ms, 3)
        out["parent_id"] = self.parent_id
        return out

    def __repr__(self) -> str:
        return (
            f"SpanEvent({self.name}, id={self.span_id}, "
            f"parent={self.parent_id}, {self.duration_ms:.3f}ms)"
        )


class QueryTrace:
    """The ordered event log (and span tree) for one statement."""

    def __init__(self, statement: str = ""):
        self.statement = statement
        #: id of the session the statement ran under (set by the
        #: engine; None for traces built outside a session)
        self.session_id: "int | None" = None
        self.events: list[TraceEvent] = []
        self._started = time.perf_counter()
        self._next_span_id = 1
        #: span-id minting is the one cross-thread mutation that can
        #: corrupt state; the event list itself relies on list.append
        #: being atomic
        self._id_lock = threading.Lock()
        #: the current-span context is *per thread* (innermost span
        #: last): parallel exchange workers each run their own span
        #: stack, rooted at their ``parallel_branch`` span, so channel
        #: charges on a worker attribute to that worker's branch only
        self._tls = threading.local()

    @property
    def _stack(self) -> list[SpanEvent]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _now_ms(self) -> float:
        return (time.perf_counter() - self._started) * 1000.0

    @staticmethod
    def clock() -> float:
        """Monotonic wall-clock milliseconds, for manual span timing at
        call sites that cannot use the :meth:`span` context manager."""
        return time.perf_counter() * 1000.0

    # -- span context ----------------------------------------------------------
    @property
    def current_span(self) -> Optional[SpanEvent]:
        return self._stack[-1] if self._stack else None

    @property
    def current_span_id(self) -> Optional[int]:
        return self._stack[-1].span_id if self._stack else None

    def begin_span(
        self, name: str, *, parent_span_id: Any = _UNSET, **attrs: Any
    ) -> SpanEvent:
        """Open a span under the current one and make it current.

        Prefer the :meth:`span` context manager; ``begin_span`` exists
        for scopes that cannot be expressed as a ``with`` block (the
        per-pull operator instrumentation re-enters its span manually).

        ``parent_span_id`` overrides the default parentage (the calling
        thread's current span): exchange workers start on an empty
        stack and pass the consumer-side exchange span's id so branch
        spans keep the plan tree's shape across threads.
        """
        if parent_span_id is _UNSET:
            parent_span_id = self.current_span_id
        with self._id_lock:
            span_id = self._next_span_id
            self._next_span_id += 1
        span = SpanEvent(
            name,
            self._now_ms(),
            attrs,
            span_id=span_id,
            parent_id=parent_span_id,
        )
        self.events.append(span)
        self._stack.append(span)
        return span

    def enter_span(self, span: SpanEvent) -> None:
        """Re-enter an already-created span (operator pulls)."""
        self._stack.append(span)

    def exit_span(self, span: SpanEvent) -> None:
        """Leave a span; tolerant of non-LIFO teardown on error paths."""
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
            return
        try:
            self._stack.remove(span)
        except ValueError:
            pass

    def add_network_ms(self, ms: float) -> None:
        """Attribute simulated network time to every span on the
        *calling thread's* stack (called by the channel's charging
        hook).  Worker-thread charges reach only worker-side spans; the
        exchange consumer mirrors each finished branch's total onto its
        own stack, which keeps the execute-span invariant (net_ms ==
        statement simulated_ms) without double counting."""
        for span in self._stack:
            span.net_ms += ms

    # -- producers ------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[SpanEvent]:
        span = self.begin_span(name, **attrs)
        started = time.perf_counter()
        try:
            yield span
        finally:
            span.duration_ms += (time.perf_counter() - started) * 1000.0
            self.exit_span(span)

    def instrument_operator(
        self, label: str, rows: Iterator[tuple], **attrs: Any
    ) -> Iterator[tuple]:
        """Wrap an operator's row stream so every pull runs under a
        per-operator span.

        The span is created on the *first* pull — which happens while
        the consuming operator's span is current, so the span tree
        mirrors the executed plan tree even though pipelined operators
        interleave.  ``duration_ms`` accumulates only this operator's
        pull time (inclusive of its children); remote commands
        dispatched during a pull become child spans of this one.
        """
        span: Optional[SpanEvent] = None
        while True:
            started = time.perf_counter()
            if span is None:
                span = self.begin_span("operator", operator=label, **attrs)
            else:
                self.enter_span(span)
            try:
                row = next(rows)
            except StopIteration:
                span.duration_ms += (time.perf_counter() - started) * 1000.0
                self.exit_span(span)
                return
            except BaseException:
                span.duration_ms += (time.perf_counter() - started) * 1000.0
                self.exit_span(span)
                raise
            span.duration_ms += (time.perf_counter() - started) * 1000.0
            self.exit_span(span)
            yield row

    def event(self, name: str, **attrs: Any) -> TraceEvent:
        event = TraceEvent(
            name, self._now_ms(), attrs, span_id=self.current_span_id
        )
        self.events.append(event)
        return event

    def rule_fired(
        self, rule_name: str, phase: int, group_id: int, added: int
    ) -> None:
        self.event(
            "rule_fired",
            rule=rule_name,
            phase=phase,
            group=group_id,
            expressions_added=added,
        )

    def network(self, server: str, delta: Dict[str, float]) -> None:
        """Per-linked-server attribution for this statement."""
        self.event("network", server=server, **delta)

    # -- consumers ------------------------------------------------------------
    def spans(self, name: Optional[str] = None) -> list[SpanEvent]:
        return [
            e
            for e in self.events
            if isinstance(e, SpanEvent) and (name is None or e.name == name)
        ]

    def span_children(self, span: SpanEvent) -> list[SpanEvent]:
        return [s for s in self.spans() if s.parent_id == span.span_id]

    def root_spans(self) -> list[SpanEvent]:
        return [s for s in self.spans() if s.parent_id is None]

    def remote_command_spans(self) -> list[SpanEvent]:
        """Spans that cover one remote command / remote rowset each."""
        return self.spans("remote_command")

    def rule_firings(self) -> list[TraceEvent]:
        return [e for e in self.events if e.name == "rule_fired"]

    def network_events(self) -> list[TraceEvent]:
        return [e for e in self.events if e.name == "network"]

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "statement": self.statement,
            "events": [e.as_dict() for e in self.events],
        }
        if self.session_id is not None:
            payload["session_id"] = self.session_id
        return payload

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, default=str)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"QueryTrace({self.statement!r}, {len(self.events)} events)"
