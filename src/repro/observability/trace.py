"""Structured query traces.

A :class:`QueryTrace` collects ordered events for one statement:

* **spans** — parse / bind / optimize / execute with wall-clock start
  and duration;
* **rule firings** — one event per optimizer rule application (rule
  name, phase, memo group, expressions added), the Cascades analogue of
  SQL Server's optimizer trace output;
* **point events** — startup-filter skips, remote query dispatches,
  spool rescans, and per-linked-server network attribution.

Tracing is off by default.  The engine only allocates a QueryTrace when
``tracing_enabled`` is set, and every producer site is guarded by an
``is not None`` check, so a disabled engine records no events and pays
one attribute test per hook.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional


class TraceEvent:
    """One point event: a name plus free-form attributes."""

    __slots__ = ("name", "at_ms", "attrs")

    def __init__(self, name: str, at_ms: float, attrs: Dict[str, Any]):
        self.name = name
        self.at_ms = at_ms
        self.attrs = attrs

    def as_dict(self) -> Dict[str, Any]:
        return {"event": self.name, "at_ms": round(self.at_ms, 3), **self.attrs}

    def __repr__(self) -> str:
        return f"TraceEvent({self.name}, {self.attrs})"


class SpanEvent(TraceEvent):
    """A timed phase; ``duration_ms`` is filled when the span closes."""

    __slots__ = ("duration_ms",)

    def __init__(self, name: str, at_ms: float, attrs: Dict[str, Any]):
        super().__init__(name, at_ms, attrs)
        self.duration_ms: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        out = super().as_dict()
        out["duration_ms"] = round(self.duration_ms, 3)
        return out

    def __repr__(self) -> str:
        return f"SpanEvent({self.name}, {self.duration_ms:.3f}ms)"


class QueryTrace:
    """The ordered event log for one statement."""

    def __init__(self, statement: str = ""):
        self.statement = statement
        self.events: list[TraceEvent] = []
        self._started = time.perf_counter()

    def _now_ms(self) -> float:
        return (time.perf_counter() - self._started) * 1000.0

    # -- producers ------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[SpanEvent]:
        event = SpanEvent(name, self._now_ms(), attrs)
        self.events.append(event)
        started = time.perf_counter()
        try:
            yield event
        finally:
            event.duration_ms = (time.perf_counter() - started) * 1000.0

    def event(self, name: str, **attrs: Any) -> TraceEvent:
        event = TraceEvent(name, self._now_ms(), attrs)
        self.events.append(event)
        return event

    def rule_fired(
        self, rule_name: str, phase: int, group_id: int, added: int
    ) -> None:
        self.event(
            "rule_fired",
            rule=rule_name,
            phase=phase,
            group=group_id,
            expressions_added=added,
        )

    def network(self, server: str, delta: Dict[str, float]) -> None:
        """Per-linked-server attribution for this statement."""
        self.event("network", server=server, **delta)

    # -- consumers ------------------------------------------------------------
    def spans(self, name: Optional[str] = None) -> list[SpanEvent]:
        return [
            e
            for e in self.events
            if isinstance(e, SpanEvent) and (name is None or e.name == name)
        ]

    def rule_firings(self) -> list[TraceEvent]:
        return [e for e in self.events if e.name == "rule_fired"]

    def network_events(self) -> list[TraceEvent]:
        return [e for e in self.events if e.name == "network"]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "statement": self.statement,
            "events": [e.as_dict() for e in self.events],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, default=str)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"QueryTrace({self.statement!r}, {len(self.events)} events)"
