"""DMV-style system views (``sys.dm_*``).

The binder resolves two-part names in the ``sys`` schema through
:func:`system_view`, which returns a (columns, rows) pair the binder
turns into a constant table — so the observability layer is itself
queryable with ordinary SELECTs, filters, joins and aggregates:

* ``sys.dm_exec_connections`` — one row per linked server/channel with
  live cumulative totals;
* ``sys.dm_exec_query_stats`` — per-statement aggregates the engine
  maintains on every execute;
* ``sys.dm_os_performance_counters`` — a dump of the instance's
  :class:`~repro.observability.metrics.MetricsRegistry`.

Rows are materialized at bind time: a DMV query sees the state of the
instance at the moment the statement is compiled, exactly like a DMV
snapshot in the real server.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.types.datatypes import BIGINT, FLOAT, INT, SqlType, varchar


class QueryStatsEntry:
    """Aggregate execution statistics for one statement text."""

    __slots__ = (
        "query_text",
        "execution_count",
        "total_rows",
        "last_rows",
        "total_elapsed_ms",
        "last_elapsed_ms",
        "min_elapsed_ms",
        "max_elapsed_ms",
        "total_bytes",
        "total_round_trips",
    )

    def __init__(self, query_text: str):
        self.query_text = query_text
        self.execution_count = 0
        self.total_rows = 0
        self.last_rows = 0
        self.total_elapsed_ms = 0.0
        self.last_elapsed_ms = 0.0
        self.min_elapsed_ms = 0.0
        self.max_elapsed_ms = 0.0
        self.total_bytes = 0
        self.total_round_trips = 0

    def record(
        self, rows: int, elapsed_ms: float, nbytes: int, round_trips: int
    ) -> None:
        self.execution_count += 1
        self.total_rows += rows
        self.last_rows = rows
        self.total_elapsed_ms += elapsed_ms
        self.last_elapsed_ms = elapsed_ms
        if self.execution_count == 1 or elapsed_ms < self.min_elapsed_ms:
            self.min_elapsed_ms = elapsed_ms
        if elapsed_ms > self.max_elapsed_ms:
            self.max_elapsed_ms = elapsed_ms
        self.total_bytes += nbytes
        self.total_round_trips += round_trips

    def __repr__(self) -> str:
        return (
            f"QueryStatsEntry({self.query_text!r}, "
            f"n={self.execution_count})"
        )


Columns = list[tuple[str, SqlType]]


def _dm_exec_connections(engine: Any) -> tuple[Columns, list[tuple]]:
    columns: Columns = [
        ("server_name", varchar(128)),
        ("provider", varchar(128)),
        ("latency_ms", FLOAT),
        ("mb_per_second", FLOAT),
        ("bytes_sent", BIGINT),
        ("bytes_received", BIGINT),
        ("round_trips", BIGINT),
        ("simulated_ms", FLOAT),
    ]
    # type-consistent zeros for channel-less providers, derived from the
    # declared column types so the row can never drift out of sync with
    # the column list
    zeros = tuple(
        0.0 if sql_type is FLOAT else 0 for __, sql_type in columns[2:]
    )
    rows = []
    for server in engine.linked_servers.values():
        channel = server.channel
        if channel is None:
            rows.append(
                (server.name, type(server.datasource).__name__) + zeros
            )
            continue
        stats = channel.stats
        rows.append(
            (
                server.name,
                type(server.datasource).__name__,
                channel.latency_ms,
                channel.mb_per_second,
                stats.bytes_sent,
                stats.bytes_received,
                stats.round_trips,
                stats.simulated_ms,
            )
        )
    return columns, rows


def _dm_exec_query_stats(engine: Any) -> tuple[Columns, list[tuple]]:
    columns: Columns = [
        ("query_text", varchar()),
        ("execution_count", INT),
        ("total_rows", BIGINT),
        ("last_rows", BIGINT),
        ("total_elapsed_ms", FLOAT),
        ("last_elapsed_ms", FLOAT),
        ("min_elapsed_ms", FLOAT),
        ("max_elapsed_ms", FLOAT),
        ("total_bytes", BIGINT),
        ("total_round_trips", BIGINT),
    ]
    rows = [
        (
            entry.query_text,
            entry.execution_count,
            entry.total_rows,
            entry.last_rows,
            entry.total_elapsed_ms,
            entry.last_elapsed_ms,
            entry.min_elapsed_ms,
            entry.max_elapsed_ms,
            entry.total_bytes,
            entry.total_round_trips,
        )
        for entry in engine.query_stats.values()
    ]
    return columns, rows


def _dm_os_performance_counters(engine: Any) -> tuple[Columns, list[tuple]]:
    columns: Columns = [
        ("object_name", varchar(128)),
        ("counter_name", varchar(128)),
        ("counter_type", varchar(32)),
        ("cntr_value", FLOAT),
    ]
    return columns, engine.metrics.rows()


def _dm_server_health(engine: Any) -> tuple[Columns, list[tuple]]:
    """One row per linked server with its circuit-breaker state."""
    columns: Columns = [
        ("server_name", varchar(128)),
        ("state", varchar(16)),
        ("consecutive_failures", INT),
        ("trips", INT),
        ("fast_fails", BIGINT),
        ("probes", BIGINT),
        ("opened_at_ms", FLOAT),
        ("next_probe_at_ms", FLOAT),
        ("last_failure", varchar()),
    ]
    rows: list[tuple] = []
    health = getattr(engine, "health", None)
    for server in engine.linked_servers.values():
        breaker = health.get(server.name) if health is not None else None
        if breaker is None:
            rows.append(
                (server.name, "closed", 0, 0, 0, 0, None, None, None)
            )
            continue
        rows.append(
            (
                server.name,
                breaker.state,
                breaker.consecutive_failures,
                breaker.trip_count,
                breaker.fast_fails,
                breaker.probe_count,
                breaker.opened_at_ms,
                breaker.next_probe_at_ms,
                breaker.last_failure,
            )
        )
    return columns, rows


def _dm_tran_active_transactions(engine: Any) -> tuple[Columns, list[tuple]]:
    """One row per active or in-doubt distributed transaction.

    ``in_doubt_age_ms`` is how long an in-doubt transaction has awaited
    recovery (NULL for active ones); ``logged_decision`` is what the
    durable coordinator log will resolve it to (``commit`` when the
    decision record survived, ``abort`` by presumption otherwise).
    """
    columns: Columns = [
        ("transaction_id", INT),
        ("state", varchar(16)),
        ("branch_count", INT),
        ("branches", varchar()),
        ("in_doubt_age_ms", FLOAT),
        ("logged_decision", varchar(16)),
        ("crash_point", varchar(64)),
    ]
    dtc = getattr(engine, "dtc", None)
    rows = dtc.transaction_rows() if dtc is not None else []
    return columns, rows


def _query_store_query(engine: Any) -> tuple[Columns, list[tuple]]:
    """One row per distinct (normalized) query the store has seen."""
    columns: Columns = [
        ("query_id", INT),
        ("query_hash", varchar(16)),
        ("query_text", varchar()),
        ("execution_count", BIGINT),
        ("plan_count", INT),
        ("active_plan_fingerprint", varchar(16)),
        ("forced_plan_fingerprint", varchar(16)),
    ]
    rows = [
        (
            entry.query_id,
            entry.query_hash,
            entry.query_text,
            entry.execution_count,
            len(entry.plans),
            entry.active_fingerprint,
            entry.forced_fingerprint,
        )
        for entry in engine.query_store.queries()
    ]
    return columns, rows


def _query_store_plan(engine: Any) -> tuple[Columns, list[tuple]]:
    """One row per captured (query, plan fingerprint) pair."""
    columns: Columns = [
        ("query_id", INT),
        ("plan_id", INT),
        ("plan_fingerprint", varchar(16)),
        ("is_active", INT),
        ("is_forced", INT),
        ("first_execution", BIGINT),
        ("last_execution", BIGINT),
        ("plan_shape", varchar()),
    ]
    rows = []
    for entry in engine.query_store.queries():
        for fingerprint, plan_entry in entry.plans.items():
            rows.append(
                (
                    entry.query_id,
                    plan_entry.plan_id,
                    fingerprint,
                    1 if fingerprint == entry.active_fingerprint else 0,
                    1 if fingerprint == entry.forced_fingerprint else 0,
                    plan_entry.first_execution,
                    plan_entry.last_execution,
                    plan_entry.shape,
                )
            )
    return columns, rows


def _query_store_runtime_stats(engine: Any) -> tuple[Columns, list[tuple]]:
    """Aggregated execution intervals per (query, plan).  Latency is
    wall-clock elapsed + simulated network ms (the modeled end-to-end
    time of a statement over the simulated fabric)."""
    columns: Columns = [
        ("query_id", INT),
        ("plan_id", INT),
        ("plan_fingerprint", varchar(16)),
        ("execution_count", BIGINT),
        ("mean_latency_ms", FLOAT),
        ("recent_mean_latency_ms", FLOAT),
        ("last_latency_ms", FLOAT),
        ("min_latency_ms", FLOAT),
        ("max_latency_ms", FLOAT),
        ("total_elapsed_ms", FLOAT),
        ("total_simulated_ms", FLOAT),
        ("total_rows", BIGINT),
        ("total_bytes", BIGINT),
        ("total_round_trips", BIGINT),
        ("total_retries", BIGINT),
        ("total_replans", BIGINT),
        ("partial_count", BIGINT),
    ]
    rows = []
    for entry in engine.query_store.queries():
        for fingerprint, stats in entry.stats.items():
            plan_entry = entry.plans[fingerprint]
            rows.append(
                (
                    entry.query_id,
                    plan_entry.plan_id,
                    fingerprint,
                    stats.execution_count,
                    stats.mean_latency_ms,
                    stats.recent_mean_latency_ms,
                    stats.last_latency_ms,
                    stats.min_latency_ms if stats.execution_count else 0.0,
                    stats.max_latency_ms,
                    stats.total_elapsed_ms,
                    stats.total_simulated_ms,
                    stats.total_rows,
                    stats.total_bytes,
                    stats.total_round_trips,
                    stats.total_retries,
                    stats.total_replans,
                    stats.partial_count,
                )
            )
    return columns, rows


def _query_store_regressions(engine: Any) -> tuple[Columns, list[tuple]]:
    """Queries whose active plan changed and got slower (worst first)."""
    columns: Columns = [
        ("query_id", INT),
        ("query_hash", varchar(16)),
        ("query_text", varchar()),
        ("prior_plan_fingerprint", varchar(16)),
        ("active_plan_fingerprint", varchar(16)),
        ("prior_mean_latency_ms", FLOAT),
        ("active_mean_latency_ms", FLOAT),
        ("regression_ratio", FLOAT),
    ]
    rows = [
        (
            regression.query_id,
            regression.query_hash,
            regression.query_text,
            regression.prior_fingerprint,
            regression.active_fingerprint,
            regression.prior_mean_latency_ms,
            regression.active_mean_latency_ms,
            regression.ratio,
        )
        for regression in engine.query_store.regressed_queries()
    ]
    return columns, rows


def _dm_exec_cached_plans(engine: Any) -> tuple[Columns, list[tuple]]:
    """One row per compiled plan in the shared plan cache."""
    columns: Columns = [
        ("query_hash", varchar(16)),
        ("query_text", varchar()),
        ("plan_fingerprint", varchar(64)),
        ("hit_count", BIGINT),
        ("schema_version", INT),
        ("stats_generation", INT),
        ("servers", varchar()),
        ("tables", varchar()),
        ("unhealthy_at_compile", varchar()),
    ]
    rows = [
        (
            entry.query_hash,
            entry.sql_text,
            entry.fingerprint,
            entry.hits,
            entry.schema_version,
            entry.stats_generation,
            ",".join(sorted(entry.servers)),
            ",".join(sorted(entry.tables)),
            ",".join(sorted(entry.unhealthy_servers)),
        )
        for entry in engine.plan_cache.entries()
    ]
    return columns, rows


def _dm_exec_sessions(engine: Any) -> tuple[Columns, list[tuple]]:
    """One row per session minted by ``engine.create_session`` (plus
    the default session)."""
    columns: Columns = [
        ("session_id", INT),
        ("name", varchar(128)),
        ("parallel_dop", INT),
        ("partial_results", INT),
        ("collation", varchar(128)),
        ("statement_count", BIGINT),
        ("open_txn", INT),
    ]
    rows = [
        (
            session.session_id,
            session.name,
            session.parallel_dop,
            1 if session.partial_results else 0,
            session.collation.name,
            session.statement_count,
            1 if session.txn is not None else 0,
        )
        for session in engine.sessions()
    ]
    return columns, rows


def _dm_resource_governor_resource_pools(
    engine: Any,
) -> tuple[Columns, list[tuple]]:
    """One row per resource pool with capacity, live usage and
    lifetime admission/grant accounting."""
    columns: Columns = [
        ("pool_name", varchar(128)),
        ("max_memory_kb", FLOAT),
        ("used_memory_kb", FLOAT),
        ("peak_memory_kb", FLOAT),
        ("max_concurrency", INT),
        ("active_requests", INT),
        ("peak_concurrency", INT),
        ("queued_requests", INT),
        ("total_admissions", BIGINT),
        ("total_admission_wait_ms", FLOAT),
        ("admission_timeouts", BIGINT),
        ("total_grants", BIGINT),
        ("total_grant_wait_ms", FLOAT),
        ("grant_timeouts", BIGINT),
    ]
    rows = [
        (
            pool.name,
            pool.max_memory_kb,
            pool.used_memory_kb,
            pool.peak_memory_kb,
            pool.max_concurrency,
            pool.active_requests,
            pool.peak_concurrency,
            pool.queued_requests(),
            pool.total_admissions,
            pool.total_admission_wait_ms,
            pool.admission_timeouts,
            pool.total_grants,
            pool.total_grant_wait_ms,
            pool.grant_timeouts,
        )
        for pool in engine.governor.pools.values()
    ]
    return columns, rows


def _dm_resource_governor_workload_groups(
    engine: Any,
) -> tuple[Columns, list[tuple]]:
    """One row per workload group with its policy and request totals."""
    columns: Columns = [
        ("group_name", varchar(128)),
        ("pool_name", varchar(128)),
        ("max_dop", INT),
        ("max_memory_grant_pct", FLOAT),
        ("request_timeout_ms", FLOAT),
        ("total_requests", BIGINT),
        ("active_requests", INT),
        ("total_timeouts", BIGINT),
        ("total_grant_kb", FLOAT),
    ]
    rows = [
        (
            group.name,
            group.pool,
            group.max_dop,
            group.max_memory_grant_pct,
            group.request_timeout_ms,
            group.total_requests,
            group.active_requests,
            group.total_timeouts,
            group.total_grant_kb,
        )
        for group in engine.governor.groups.values()
    ]
    return columns, rows


def _dm_exec_query_memory_grants(engine: Any) -> tuple[Columns, list[tuple]]:
    """One row per *outstanding* memory grant — a statement currently
    holding leased workspace memory.  Empty at quiesce; anything left
    here after all statements finished is a leak."""
    columns: Columns = [
        ("grant_id", INT),
        ("session_id", INT),
        ("group_name", varchar(128)),
        ("pool_name", varchar(128)),
        ("requested_memory_kb", FLOAT),
        ("granted_memory_kb", FLOAT),
        ("grant_wait_ms", FLOAT),
        ("acquired_at_ms", FLOAT),
        ("query_text", varchar()),
    ]
    rows = [
        (
            grant.grant_id,
            grant.session_id,
            grant.group_name,
            grant.pool.name,
            grant.requested_kb,
            grant.granted_kb,
            grant.wait_ms,
            grant.acquired_at_ms,
            grant.sql_text,
        )
        for grant in engine.governor.active_grants()
    ]
    return columns, rows


_VIEWS = {
    "dm_exec_cached_plans": _dm_exec_cached_plans,
    "dm_exec_query_memory_grants": _dm_exec_query_memory_grants,
    "dm_resource_governor_resource_pools": _dm_resource_governor_resource_pools,
    "dm_resource_governor_workload_groups": _dm_resource_governor_workload_groups,
    "dm_exec_connections": _dm_exec_connections,
    "dm_exec_sessions": _dm_exec_sessions,
    "dm_exec_query_stats": _dm_exec_query_stats,
    "dm_os_performance_counters": _dm_os_performance_counters,
    "dm_server_health": _dm_server_health,
    "dm_tran_active_transactions": _dm_tran_active_transactions,
    "query_store_query": _query_store_query,
    "query_store_plan": _query_store_plan,
    "query_store_runtime_stats": _query_store_runtime_stats,
    "query_store_regressions": _query_store_regressions,
}


def system_view_names() -> tuple[str, ...]:
    return tuple(sorted(_VIEWS))


def system_view(
    engine: Any, view_name: str
) -> Optional[tuple[Columns, list[tuple]]]:
    """Resolve ``sys.<view_name>`` to (columns, rows), or None when no
    such view exists (the binder then falls back to normal lookup)."""
    builder = _VIEWS.get(view_name.lower())
    if builder is None:
        return None
    return builder(engine)
