"""The per-instance metrics registry.

One :class:`MetricsRegistry` per :class:`~repro.engine.ServerInstance`
holds named counters, gauges and simple histograms.  Instruments are
created on first use, so call sites never have to pre-register, and an
increment is one dict lookup plus an add — cheap enough to stay on in
every execution path.

``sys.dm_os_performance_counters`` is a dump of this registry (see
:mod:`repro.observability.views`).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Iterator, Union


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def increment(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value:g})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value:g})"


class Histogram:
    """A summary histogram: count / sum / min / max plus percentiles.

    Keeps a bounded window of the most recent observations so p50/p95/
    p99 reflect recent behavior without unbounded memory; count/sum/
    min/max remain exact over the instrument's lifetime.
    """

    __slots__ = ("name", "count", "sum", "minimum", "maximum", "samples")

    kind = "histogram"

    #: observations retained for percentile estimates
    SAMPLE_WINDOW = 512

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.samples: deque[float] = deque(maxlen=self.SAMPLE_WINDOW)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def value(self) -> float:
        """The headline value a registry dump reports (the mean)."""
        return self.mean

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100) of the retained window,
        with linear interpolation between adjacent samples."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] + (ordered[hi] - ordered[lo]) * frac

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}: n={self.count}, mean={self.mean:.3f})"
        )


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named instruments for one server instance."""

    def __init__(self, namespace: str = "engine"):
        self.namespace = namespace
        self._instruments: Dict[str, Instrument] = {}
        #: guards instrument creation — parallel exchange workers may
        #: first-touch the same counter concurrently; the increments
        #: themselves stay unlocked (losing a racy add is tolerable,
        #: losing an instrument to a double-create is not)
        self._lock = threading.Lock()

    # -- instrument access (create on first use) ------------------------------
    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def _get(self, name: str, cls) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = cls(name)
                    self._instruments[name] = instrument
        if not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {cls.__name__}"
            )
        return instrument

    # -- shortcuts ------------------------------------------------------------
    def increment(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).increment(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- introspection --------------------------------------------------------
    def __iter__(self) -> Iterator[Instrument]:
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def get(self, name: str) -> Instrument | None:
        return self._instruments.get(name)

    def value_of(self, name: str, default: float = 0.0) -> float:
        instrument = self._instruments.get(name)
        return instrument.value if instrument is not None else default

    def snapshot(self) -> Dict[str, float]:
        """Flat name → headline-value mapping (stable iteration order)."""
        return {
            name: instrument.value
            for name, instrument in sorted(self._instruments.items())
        }

    def rows(self) -> list[tuple]:
        """(object_name, counter_name, counter_type, value) rows for the
        ``sys.dm_os_performance_counters`` view."""
        out = []
        for name, instrument in sorted(self._instruments.items()):
            out.append((self.namespace, name, instrument.kind, instrument.value))
            if isinstance(instrument, Histogram):
                # distinct counter rows per percentile, so a plain
                # SELECT can filter on e.g. counter_name LIKE '%.p95'
                for p in (50, 95, 99):
                    out.append(
                        (
                            self.namespace,
                            f"{name}.p{p}",
                            "histogram_percentile",
                            instrument.percentile(p),
                        )
                    )
        return out

    def reset(self) -> None:
        self._instruments.clear()

    def __repr__(self) -> str:
        return f"MetricsRegistry({self.namespace}, {len(self._instruments)} metrics)"
