"""The Query Store: per-plan runtime history and plan forcing.

SQL Server's Query Store answers the question our flat
``sys.dm_exec_query_stats`` cannot: *which plan* ran, and how each plan
of the same query performed over time.  This module reproduces the
shape of that feature for the federated engine:

* queries are keyed by the hash of their **normalized text**
  (whitespace collapsed, case folded outside string literals — literal
  values are preserved, exactly because a forced plan embeds them);
* each execution is attributed to a **plan fingerprint** — a stable
  hash of the normalized physical plan shape
  (:func:`repro.core.physical.plan_fingerprint`) that ignores costs,
  row estimates and column ids, so pushdown vs fetch-and-filter, hash
  vs merge, or a different member all count as *different plans* while
  recompiling the same strategy counts as the same one;
* per (query, plan) the store aggregates execution intervals — elapsed
  wall ms, simulated network ms, rows, bytes, round trips, retries,
  replans and the partial-results flag — plus a bounded window of
  recent latencies for regression detection.

**Latency** here is ``elapsed_ms + simulated_ms``: the engine's network
is simulated (charged, never slept), so the modeled end-to-end time of
a statement is its wall-clock CPU time plus the simulated network time
it was charged.  That makes plan regressions deterministic: a plan flip
that moves megabytes instead of a filtered rowset regresses the
simulated component even when the wall-clock noise floor hides it.

:meth:`QueryStore.regressed_queries` flags queries whose *active* plan
fingerprint differs from the previously active one and whose recent
mean latency worsened beyond a threshold — the signal behind
``sys.query_store_regressions``.  :meth:`QueryStore.force_plan` pins a
previously captured plan; the optimizer consults the pin before
exploration and returns the pinned plan without searching (SQL Server's
``sp_query_store_force_plan``).
"""

from __future__ import annotations

import threading
import zlib
from collections import deque
from typing import Any, Dict, Optional

from repro.core.physical import PhysicalOp, plan_fingerprint, plan_shape

__all__ = [
    "QueryStore",
    "PlanEntry",
    "QueryEntry",
    "RuntimeStats",
    "Regression",
    "normalize_query_text",
    "query_hash",
]


def normalize_query_text(sql: str) -> str:
    """Whitespace-collapsed, case-folded query text.

    String literals are preserved verbatim (case and all): two queries
    that differ only inside a literal are *different* queries — forcing
    one's plan for the other would change results.
    """
    out: list[str] = []
    i, n = 0, len(sql)
    pending_space = False
    while i < n:
        ch = sql[i]
        if ch == "'":
            # copy the literal verbatim, honoring '' escapes
            j = i + 1
            while j < n:
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        j += 2
                        continue
                    break
                j += 1
            if pending_space and out:
                out.append(" ")
            pending_space = False
            out.append(sql[i:j + 1])
            i = j + 1
            continue
        if ch.isspace():
            pending_space = True
            i += 1
            continue
        if pending_space and out:
            out.append(" ")
        pending_space = False
        out.append(ch.lower())
        i += 1
    return "".join(out)


def query_hash(sql: str) -> str:
    """8-hex-digit hash of the normalized query text (the Query Store
    query identity)."""
    normalized = normalize_query_text(sql)
    return format(zlib.crc32(normalized.encode("utf-8")) & 0xFFFFFFFF, "08x")


class RuntimeStats:
    """Aggregated execution intervals for one (query, plan) pair."""

    __slots__ = (
        "execution_count",
        "total_latency_ms",
        "last_latency_ms",
        "min_latency_ms",
        "max_latency_ms",
        "total_elapsed_ms",
        "total_simulated_ms",
        "total_rows",
        "total_bytes",
        "total_round_trips",
        "total_retries",
        "total_replans",
        "partial_count",
        "recent_latencies",
    )

    #: executions kept for the "recent mean" regression signal
    RECENT_WINDOW = 16

    def __init__(self) -> None:
        self.execution_count = 0
        self.total_latency_ms = 0.0
        self.last_latency_ms = 0.0
        self.min_latency_ms = float("inf")
        self.max_latency_ms = 0.0
        self.total_elapsed_ms = 0.0
        self.total_simulated_ms = 0.0
        self.total_rows = 0
        self.total_bytes = 0
        self.total_round_trips = 0
        self.total_retries = 0
        self.total_replans = 0
        self.partial_count = 0
        self.recent_latencies: deque[float] = deque(maxlen=self.RECENT_WINDOW)

    def record(
        self,
        elapsed_ms: float,
        simulated_ms: float,
        rows: int,
        nbytes: int,
        round_trips: int,
        retries: int,
        replans: int,
        partial: bool,
    ) -> None:
        latency = elapsed_ms + simulated_ms
        self.execution_count += 1
        self.total_latency_ms += latency
        self.last_latency_ms = latency
        if latency < self.min_latency_ms:
            self.min_latency_ms = latency
        if latency > self.max_latency_ms:
            self.max_latency_ms = latency
        self.total_elapsed_ms += elapsed_ms
        self.total_simulated_ms += simulated_ms
        self.total_rows += rows
        self.total_bytes += nbytes
        self.total_round_trips += round_trips
        self.total_retries += retries
        self.total_replans += replans
        if partial:
            self.partial_count += 1
        self.recent_latencies.append(latency)

    @property
    def mean_latency_ms(self) -> float:
        if not self.execution_count:
            return 0.0
        return self.total_latency_ms / self.execution_count

    @property
    def recent_mean_latency_ms(self) -> float:
        if not self.recent_latencies:
            return 0.0
        return sum(self.recent_latencies) / len(self.recent_latencies)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "execution_count": self.execution_count,
            "mean_latency_ms": round(self.mean_latency_ms, 3),
            "recent_mean_latency_ms": round(self.recent_mean_latency_ms, 3),
            "last_latency_ms": round(self.last_latency_ms, 3),
            "min_latency_ms": round(self.min_latency_ms, 3),
            "max_latency_ms": round(self.max_latency_ms, 3),
            "total_elapsed_ms": round(self.total_elapsed_ms, 3),
            "total_simulated_ms": round(self.total_simulated_ms, 3),
            "total_rows": self.total_rows,
            "total_bytes": self.total_bytes,
            "total_round_trips": self.total_round_trips,
            "total_retries": self.total_retries,
            "total_replans": self.total_replans,
            "partial_count": self.partial_count,
        }

    def __repr__(self) -> str:
        return (
            f"RuntimeStats(n={self.execution_count}, "
            f"mean={self.mean_latency_ms:.3f}ms)"
        )


class PlanEntry:
    """One captured plan of one query."""

    __slots__ = (
        "plan_id",
        "fingerprint",
        "shape",
        "plan",
        "first_execution",
        "last_execution",
    )

    def __init__(self, plan_id: int, fingerprint: str, plan: PhysicalOp):
        self.plan_id = plan_id
        self.fingerprint = fingerprint
        self.shape = plan_shape(plan)
        #: the most recent physical plan instance with this fingerprint;
        #: kept so force_plan can replay it without re-exploration
        self.plan = plan
        self.first_execution = 0
        self.last_execution = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "plan_id": self.plan_id,
            "fingerprint": self.fingerprint,
            "shape": self.shape,
            "first_execution": self.first_execution,
            "last_execution": self.last_execution,
        }

    def __repr__(self) -> str:
        return f"PlanEntry({self.fingerprint}, id={self.plan_id})"


class QueryEntry:
    """One query's history: its plans and per-plan runtime stats."""

    __slots__ = (
        "query_id",
        "query_hash",
        "query_text",
        "normalized_text",
        "execution_count",
        "plans",
        "stats",
        "active_fingerprint",
        "previous_fingerprint",
        "forced_fingerprint",
    )

    def __init__(self, query_id: int, qhash: str, query_text: str):
        self.query_id = query_id
        self.query_hash = qhash
        self.query_text = query_text
        self.normalized_text = normalize_query_text(query_text)
        self.execution_count = 0
        self.plans: Dict[str, PlanEntry] = {}
        self.stats: Dict[str, RuntimeStats] = {}
        #: fingerprint of the most recently executed plan
        self.active_fingerprint: Optional[str] = None
        #: fingerprint that was active before the last plan change
        self.previous_fingerprint: Optional[str] = None
        #: pinned fingerprint (None = not forced)
        self.forced_fingerprint: Optional[str] = None

    def __repr__(self) -> str:
        return (
            f"QueryEntry({self.query_hash}, n={self.execution_count}, "
            f"plans={len(self.plans)})"
        )


class Regression:
    """One detected plan regression (a ``sys.query_store_regressions``
    row)."""

    __slots__ = (
        "query_id",
        "query_hash",
        "query_text",
        "prior_fingerprint",
        "active_fingerprint",
        "prior_mean_latency_ms",
        "active_mean_latency_ms",
    )

    def __init__(
        self,
        entry: QueryEntry,
        prior_fingerprint: str,
        active_fingerprint: str,
        prior_mean: float,
        active_mean: float,
    ):
        self.query_id = entry.query_id
        self.query_hash = entry.query_hash
        self.query_text = entry.query_text
        self.prior_fingerprint = prior_fingerprint
        self.active_fingerprint = active_fingerprint
        self.prior_mean_latency_ms = prior_mean
        self.active_mean_latency_ms = active_mean

    @property
    def ratio(self) -> float:
        if self.prior_mean_latency_ms <= 0:
            return float("inf")
        return self.active_mean_latency_ms / self.prior_mean_latency_ms

    def as_dict(self) -> Dict[str, Any]:
        return {
            "query_hash": self.query_hash,
            "query_text": self.query_text,
            "prior_fingerprint": self.prior_fingerprint,
            "active_fingerprint": self.active_fingerprint,
            "prior_mean_latency_ms": round(self.prior_mean_latency_ms, 3),
            "active_mean_latency_ms": round(self.active_mean_latency_ms, 3),
            "ratio": round(self.ratio, 3),
        }

    def __repr__(self) -> str:
        return (
            f"Regression({self.query_hash}: {self.prior_fingerprint} -> "
            f"{self.active_fingerprint}, x{self.ratio:.2f})"
        )


class QueryStore:
    """Per-engine plan-level runtime history with plan pinning."""

    #: bound on distinct queries kept (oldest evicted first)
    MAX_QUERIES = 256
    #: a plan change only counts as a regression when the recent mean
    #: latency worsened by at least this factor
    REGRESSION_THRESHOLD = 1.5

    def __init__(self) -> None:
        self._queries: Dict[str, QueryEntry] = {}
        self._next_query_id = 1
        self._next_plan_id = 1
        #: concurrent sessions record and consult pins through one
        #: shared store; entry/plan minting must be atomic
        self._lock = threading.RLock()

    # -- recording -------------------------------------------------------------
    def record(
        self,
        sql_text: str,
        plan: PhysicalOp,
        rows: int,
        elapsed_ms: float,
        network: Dict[str, Dict[str, float]],
        replans: int = 0,
        partial: bool = False,
    ) -> QueryEntry:
        """Attribute one execution to (query hash, plan fingerprint)."""
        with self._lock:
            return self._record_locked(
                sql_text, plan, rows, elapsed_ms, network, replans, partial
            )

    def _record_locked(
        self,
        sql_text: str,
        plan: PhysicalOp,
        rows: int,
        elapsed_ms: float,
        network: Dict[str, Dict[str, float]],
        replans: int,
        partial: bool,
    ) -> QueryEntry:
        entry = self._entry_for(sql_text)
        fingerprint = plan_fingerprint(plan)
        plan_entry = entry.plans.get(fingerprint)
        if plan_entry is None:
            plan_entry = PlanEntry(self._next_plan_id, fingerprint, plan)
            self._next_plan_id += 1
            entry.plans[fingerprint] = plan_entry
            entry.stats[fingerprint] = RuntimeStats()
            plan_entry.first_execution = entry.execution_count + 1
        else:
            # keep the freshest instance around for plan forcing
            plan_entry.plan = plan
        entry.execution_count += 1
        plan_entry.last_execution = entry.execution_count
        if entry.active_fingerprint != fingerprint:
            if entry.active_fingerprint is not None:
                entry.previous_fingerprint = entry.active_fingerprint
            entry.active_fingerprint = fingerprint
        nbytes = sum(
            int(d.get("bytes_sent", 0) + d.get("bytes_received", 0))
            for d in network.values()
        )
        trips = sum(int(d.get("round_trips", 0)) for d in network.values())
        retries = sum(int(d.get("retries", 0)) for d in network.values())
        simulated = sum(
            float(d.get("simulated_ms", 0.0)) for d in network.values()
        )
        entry.stats[fingerprint].record(
            elapsed_ms, simulated, rows, nbytes, trips, retries,
            replans, partial,
        )
        return entry

    def _entry_for(self, sql_text: str) -> QueryEntry:
        qhash = query_hash(sql_text)
        entry = self._queries.get(qhash)
        if entry is None:
            if len(self._queries) >= self.MAX_QUERIES:
                self._queries.pop(next(iter(self._queries)))
            entry = QueryEntry(self._next_query_id, qhash, sql_text)
            self._next_query_id += 1
            self._queries[qhash] = entry
        return entry

    # -- lookup ----------------------------------------------------------------
    def queries(self) -> list[QueryEntry]:
        return list(self._queries.values())

    def get(self, qhash: str) -> Optional[QueryEntry]:
        return self._queries.get(qhash)

    def lookup(self, sql_text: str) -> Optional[QueryEntry]:
        return self._queries.get(query_hash(sql_text))

    def __len__(self) -> int:
        return len(self._queries)

    # -- regression detection --------------------------------------------------
    def regressed_queries(
        self,
        threshold: Optional[float] = None,
        min_executions: int = 2,
    ) -> list[Regression]:
        """Queries whose active plan changed *and* got slower.

        A query regresses when its active plan fingerprint differs from
        the previously active one, both plans have at least
        ``min_executions`` recorded executions, and the active plan's
        recent mean latency exceeds the prior plan's recent mean by the
        threshold factor.  Sorted worst-first.
        """
        factor = self.REGRESSION_THRESHOLD if threshold is None else threshold
        out: list[Regression] = []
        for entry in self._queries.values():
            active = entry.active_fingerprint
            prior = entry.previous_fingerprint
            if active is None or prior is None or active == prior:
                continue
            active_stats = entry.stats.get(active)
            prior_stats = entry.stats.get(prior)
            if active_stats is None or prior_stats is None:
                continue
            if (
                active_stats.execution_count < min_executions
                or prior_stats.execution_count < min_executions
            ):
                continue
            prior_mean = prior_stats.recent_mean_latency_ms
            active_mean = active_stats.recent_mean_latency_ms
            if active_mean > prior_mean * factor:
                out.append(
                    Regression(entry, prior, active, prior_mean, active_mean)
                )
        out.sort(key=lambda r: r.ratio, reverse=True)
        return out

    # -- plan forcing ----------------------------------------------------------
    def force_plan(self, qhash: str, fingerprint: str) -> PlanEntry:
        """Pin ``fingerprint`` as the plan for query ``qhash``.

        The fingerprint must identify a plan this store has captured
        for that query — there is nothing to replay otherwise.
        """
        with self._lock:
            entry = self._queries.get(qhash)
            if entry is None:
                raise KeyError(
                    f"query store has no query with hash {qhash!r}"
                )
            plan_entry = entry.plans.get(fingerprint)
            if plan_entry is None:
                raise KeyError(
                    f"query {qhash!r} has no captured plan with fingerprint "
                    f"{fingerprint!r} (known: {sorted(entry.plans)})"
                )
            entry.forced_fingerprint = fingerprint
            return plan_entry

    def unforce_plan(self, qhash: str) -> None:
        with self._lock:
            entry = self._queries.get(qhash)
            if entry is not None:
                entry.forced_fingerprint = None

    def forced_plan_for(self, sql_text: str) -> Optional[PhysicalOp]:
        """The pinned physical plan for a statement, or None.

        Keyed by the normalized-text hash; the stored normalized text
        must also match exactly, so a hash collision can never replay
        the wrong query's plan.
        """
        with self._lock:
            entry = self._queries.get(query_hash(sql_text))
            if entry is None or entry.forced_fingerprint is None:
                return None
            if entry.normalized_text != normalize_query_text(sql_text):
                return None
            plan_entry = entry.plans.get(entry.forced_fingerprint)
            return plan_entry.plan if plan_entry is not None else None

    # -- export ----------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly dump (``tools/tracereport.py`` input)."""
        queries = []
        for entry in self._queries.values():
            queries.append(
                {
                    "query_id": entry.query_id,
                    "query_hash": entry.query_hash,
                    "query_text": entry.query_text,
                    "execution_count": entry.execution_count,
                    "active_fingerprint": entry.active_fingerprint,
                    "previous_fingerprint": entry.previous_fingerprint,
                    "forced_fingerprint": entry.forced_fingerprint,
                    "plans": [p.as_dict() for p in entry.plans.values()],
                    "stats": {
                        fp: stats.as_dict()
                        for fp, stats in entry.stats.items()
                    },
                }
            )
        return {
            "query_store": {
                "queries": queries,
                "regressions": [
                    r.as_dict() for r in self.regressed_queries()
                ],
            }
        }

    def reset(self) -> None:
        self._queries.clear()

    def __repr__(self) -> str:
        return f"QueryStore({len(self._queries)} queries)"
