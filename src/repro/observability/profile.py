"""Per-operator runtime profiles (``SET STATISTICS PROFILE`` analogue).

When profiling is enabled on an :class:`~repro.execution.context.ExecutionContext`,
the plan interpreter routes every operator's row stream through
:meth:`PlanProfiler.instrument`, which records per plan node:

* ``actual_rows`` — rows the operator produced (summed over re-opens);
* ``opens`` — how many times the operator was opened (``opens - 1``
  rescans, the interesting number over remote sources);
* ``open_ms`` — time spent producing the *first* row (where pipeline
  breakers like hash-join build or sort actually do their work);
* ``next_ms`` — time spent producing the remaining rows;
* ``close_ms`` — time spent in the exhausting call (StopIteration);
* ``startup_skips`` — times a startup filter pruned the subtree without
  opening it (Section 4.1.5 runtime pruning, visible per node).

``render_analyze`` prints the plan tree annotated with estimated vs.
actual rows so cardinality misestimates are visible at a glance.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, Optional


class OperatorProfile:
    """Runtime counters for one physical plan node."""

    __slots__ = (
        "label",
        "est_rows",
        "actual_rows",
        "opens",
        "open_ms",
        "next_ms",
        "close_ms",
        "startup_skips",
    )

    def __init__(self, label: str, est_rows: float):
        self.label = label
        self.est_rows = est_rows
        self.actual_rows = 0
        self.opens = 0
        self.open_ms = 0.0
        self.next_ms = 0.0
        self.close_ms = 0.0
        self.startup_skips = 0

    @property
    def rescans(self) -> int:
        return max(0, self.opens - 1)

    @property
    def total_ms(self) -> float:
        return self.open_ms + self.next_ms + self.close_ms

    def as_dict(self) -> Dict[str, Any]:
        return {
            "operator": self.label,
            "est_rows": round(self.est_rows, 1),
            "actual_rows": self.actual_rows,
            "opens": self.opens,
            "rescans": self.rescans,
            "open_ms": round(self.open_ms, 3),
            "next_ms": round(self.next_ms, 3),
            "close_ms": round(self.close_ms, 3),
            "startup_skips": self.startup_skips,
        }

    def __repr__(self) -> str:
        return (
            f"OperatorProfile({self.label}: actual={self.actual_rows}, "
            f"est={self.est_rows:.1f}, {self.total_ms:.3f}ms)"
        )


class PlanProfiler:
    """Collects :class:`OperatorProfile` objects for one plan execution.

    Profiles are keyed by plan-node identity; a subtree the optimizer
    shares between two plan positions (or a re-opened inner) accumulates
    into one profile, mirroring how the spool cache is keyed.
    """

    def __init__(self) -> None:
        self.profiles: Dict[int, OperatorProfile] = {}

    def profile_for(self, plan: Any) -> OperatorProfile:
        key = id(plan)
        profile = self.profiles.get(key)
        if profile is None:
            profile = OperatorProfile(type(plan).__name__, plan.est_rows)
            self.profiles[key] = profile
        return profile

    def lookup(self, plan: Any) -> Optional[OperatorProfile]:
        return self.profiles.get(id(plan))

    def record_startup_skip(self, plan: Any) -> None:
        self.profile_for(plan).startup_skips += 1

    def instrument(self, plan: Any, rows: Iterator[tuple]) -> Iterator[tuple]:
        """Wrap an operator's row stream with timing/row accounting."""
        profile = self.profile_for(plan)
        profile.opens += 1
        first = True
        while True:
            started = time.perf_counter()
            try:
                row = next(rows)
            except StopIteration:
                profile.close_ms += (time.perf_counter() - started) * 1000.0
                return
            elapsed = (time.perf_counter() - started) * 1000.0
            if first:
                profile.open_ms += elapsed
                first = False
            else:
                profile.next_ms += elapsed
            profile.actual_rows += 1
            yield row

    def as_rows(self, plan: Any) -> list[Dict[str, Any]]:
        """Pre-order operator dicts for structured consumption."""
        out = []
        for depth, node in _walk_depth(plan, 0):
            profile = self.lookup(node)
            entry = (
                profile.as_dict()
                if profile is not None
                else OperatorProfile(type(node).__name__, node.est_rows).as_dict()
            )
            entry["depth"] = depth
            out.append(entry)
        return out

    def __len__(self) -> int:
        return len(self.profiles)

    def __repr__(self) -> str:
        return f"PlanProfiler({len(self.profiles)} operators)"


def _walk_depth(plan: Any, depth: int):
    yield depth, plan
    for child in plan.children:
        yield from _walk_depth(child, depth + 1)


def remote_stats_by_node(trace: Any) -> Dict[int, Dict[str, Dict[str, float]]]:
    """Aggregate ``remote_command`` spans per dispatching plan node.

    Operator spans carry the plan node's identity (``node_id``); each
    remote command is a child span of the operator that dispatched it,
    so walking parentage attributes retries, backoff waits, breaker
    fast-fails and network time to specific plan nodes, per server.
    """
    spans_by_id = {s.span_id: s for s in trace.spans()}
    out: Dict[int, Dict[str, Dict[str, float]]] = {}
    for span in trace.remote_command_spans():
        parent = spans_by_id.get(span.parent_id)
        node_id = parent.attrs.get("node_id") if parent is not None else None
        if node_id is None:
            continue
        server = span.attrs.get("server", "?")
        entry = out.setdefault(node_id, {}).setdefault(
            server,
            {
                "commands": 0,
                "retries": 0,
                "backoff_ms": 0.0,
                "breaker_fast_fails": 0,
                "net_ms": 0.0,
            },
        )
        entry["commands"] += 1
        entry["retries"] += int(span.attrs.get("retries", 0))
        entry["backoff_ms"] += float(span.attrs.get("backoff_ms", 0.0))
        entry["breaker_fast_fails"] += int(
            span.attrs.get("breaker_fast_fails", 0)
        )
        entry["net_ms"] += span.net_ms
    return out


def render_analyze(
    plan: Any,
    profiler: PlanProfiler,
    network: Optional[Dict[str, Dict[str, float]]] = None,
    trace: Any = None,
) -> list[str]:
    """The EXPLAIN ANALYZE text: plan tree + actual-vs-estimated
    annotations, followed by per-linked-server network attribution.

    When a trace with spans is supplied, remote operators additionally
    carry per-server resilience annotations (retries, backoff ms,
    breaker fast-fails, simulated network ms) derived from their
    ``remote_command`` child spans.
    """
    remote_by_node = remote_stats_by_node(trace) if trace is not None else {}
    lines: list[str] = []
    for depth, node in _walk_depth(plan, 0):
        profile = profiler.lookup(node)
        if profile is None:
            annotation = "[never executed]"
        elif profile.opens == 0 and profile.startup_skips > 0:
            annotation = f"[skipped by startup filter x{profile.startup_skips}]"
        else:
            annotation = (
                f"[actual={profile.actual_rows} est={profile.est_rows:.1f} "
                f"opens={profile.opens} open={profile.open_ms:.3f}ms "
                f"next={profile.next_ms:.3f}ms close={profile.close_ms:.3f}ms]"
            )
            if profile.startup_skips:
                annotation = annotation[:-1] + (
                    f" startup_skips={profile.startup_skips}]"
                )
        line = "  " * depth + repr(node) + " " + annotation
        for server, stats in sorted(remote_by_node.get(id(node), {}).items()):
            line += (
                f" [remote {server}: commands={int(stats['commands'])} "
                f"retries={int(stats['retries'])} "
                f"backoff={stats['backoff_ms']:.1f}ms "
                f"fast_fails={int(stats['breaker_fast_fails'])} "
                f"net={stats['net_ms']:.2f}ms]"
            )
        lines.append(line)
    if network:
        lines.append("-- network --")
        for server, delta in sorted(network.items()):
            lines.append(
                f"{server}: sent={int(delta['bytes_sent'])}B "
                f"recv={int(delta['bytes_received'])}B "
                f"round_trips={int(delta['round_trips'])} "
                f"simulated={delta['simulated_ms']:.2f}ms"
            )
    return lines
