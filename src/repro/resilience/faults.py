"""Deterministic fault injection for simulated network channels.

A :class:`FaultInjector` attaches to a
:class:`~repro.network.channel.NetworkChannel` and decides, message by
message, whether the channel behaves normally or fails.  All decisions
come from a private seeded :class:`random.Random`, so a given
``(seed, rates, message sequence)`` always produces the same fault
sequence — tests and benchmarks can script failures and replay them
exactly.

Four failure modes (the taxonomy of docs/FAULT_MODEL.md):

* **transient** — the message is lost; the operation raises
  :class:`~repro.errors.TransientNetworkError` and may be retried;
* **timeout** — the remote side hangs for the channel's full
  ``timeout_ms`` before the consumer gives up
  (:class:`~repro.errors.RemoteTimeoutError`);
* **server-down** — the channel's peer is unreachable until
  :meth:`mark_up` (:class:`~repro.errors.ServerUnavailableError`);
* **slow-link** — no error, but every transfer is stretched by
  ``slow_factor`` (which can then trip per-message timeouts).

The injector only *decides*; the channel does the charging, raising,
metric increments and trace events, so accounting stays in one place.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Optional

#: decision labels returned by :meth:`FaultInjector.decide`
OK = "ok"
TRANSIENT = "transient"
TIMEOUT = "timeout"
DOWN = "down"

_SCRIPTABLE = (TRANSIENT, TIMEOUT, DOWN)


class FaultInjector:
    """Seedable per-channel fault source.

    ``transient_rate`` and ``timeout_rate`` are independent per-message
    probabilities in [0, 1].  ``slow_factor`` >= 1 multiplies transfer
    time on every message that goes through.  ``down`` starts the
    channel in the unreachable state.
    """

    def __init__(
        self,
        seed: int = 0,
        transient_rate: float = 0.0,
        timeout_rate: float = 0.0,
        slow_factor: float = 1.0,
        down: bool = False,
    ):
        if not 0.0 <= transient_rate <= 1.0:
            raise ValueError("transient_rate must be in [0, 1]")
        if not 0.0 <= timeout_rate <= 1.0:
            raise ValueError("timeout_rate must be in [0, 1]")
        if slow_factor < 1.0:
            raise ValueError("slow_factor must be >= 1")
        self.seed = seed
        self.transient_rate = transient_rate
        self.timeout_rate = timeout_rate
        self.slow_factor = slow_factor
        self._down = down
        self._rng = random.Random(seed)
        #: explicit one-shot faults consumed before any random draw
        self._script: Deque[str] = deque()
        #: decisions made (all messages, including OK ones)
        self.messages_seen = 0
        #: faults produced, by kind
        self.injected = {TRANSIENT: 0, TIMEOUT: 0, DOWN: 0}

    # -- server up/down -----------------------------------------------------
    @property
    def is_down(self) -> bool:
        return self._down

    def mark_down(self) -> None:
        """Take the channel's peer offline (server-down mode)."""
        self._down = True

    def mark_up(self) -> None:
        self._down = False

    # -- scripting ----------------------------------------------------------
    def fail_next(self, kind: str = TRANSIENT, count: int = 1) -> None:
        """Queue ``count`` deterministic faults ahead of the random
        stream — the scripting hook tests use for exact fault placement."""
        if kind not in _SCRIPTABLE:
            raise ValueError(f"unknown fault kind {kind!r}")
        self._script.extend([kind] * count)

    # -- the decision point ---------------------------------------------------
    def decide(self) -> str:
        """Fault decision for the next message: one of ``OK``,
        ``TRANSIENT``, ``TIMEOUT``, ``DOWN``."""
        self.messages_seen += 1
        if self._down:
            self.injected[DOWN] += 1
            return DOWN
        if self._script:
            kind = self._script.popleft()
            self.injected[kind] += 1
            return kind
        # one draw per rate keeps the stream deterministic even when a
        # rate is zero (no draw is consumed for a disabled mode)
        if self.transient_rate > 0.0 and self._rng.random() < self.transient_rate:
            self.injected[TRANSIENT] += 1
            return TRANSIENT
        if self.timeout_rate > 0.0 and self._rng.random() < self.timeout_rate:
            self.injected[TIMEOUT] += 1
            return TIMEOUT
        return OK

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def reset(self, seed: Optional[int] = None) -> None:
        """Restart the random stream (same seed unless given a new one)
        and clear counters/script; up/down state is preserved."""
        if seed is not None:
            self.seed = seed
        self._rng = random.Random(self.seed)
        self._script.clear()
        self.messages_seen = 0
        self.injected = {TRANSIENT: 0, TIMEOUT: 0, DOWN: 0}

    def __repr__(self) -> str:
        state = "down" if self._down else "up"
        return (
            f"FaultInjector(seed={self.seed}, transient={self.transient_rate}, "
            f"timeout={self.timeout_rate}, slow={self.slow_factor}x, {state})"
        )


# ======================================================================
# two-phase-commit protocol-step crash points
# ======================================================================

#: coordinator-side crash points, in protocol order.  Each one models
#: the coordinator process dying at that exact step: the volatile log
#: tail is lost, prepared participants are left in doubt, and only
#: ``Coordinator.recover()`` (replaying the durable log) resolves them.
TWO_PC_CRASH_POINTS = (
    # before any PREPARE is sent: no branch holds locks, presumed abort
    "coordinator_before_prepare",
    # all votes collected, decision not yet logged: presumed abort
    "coordinator_after_prepare",
    # commit decision appended but NOT flushed: the record is lost with
    # the volatile tail, so recovery must still presume abort
    "coordinator_after_decision_append",
    # commit decision durable, no participant told yet: recovery must
    # re-drive COMMIT to every prepared branch
    "coordinator_after_decision_flush",
    # died between branch commits: some members committed, the rest are
    # in doubt — the canonical "torn partitioned view" hazard
    "coordinator_mid_commit",
    # every branch acked but the forget record was never written:
    # recovery re-delivers COMMIT, which must be idempotent
    "coordinator_before_forget",
)

#: participant/message fault kinds; armed as ``"<kind>:<branch>"``.
TWO_PC_DELIVERY_FAULTS = (
    # the branch applied COMMIT but the ack was lost: the coordinator
    # retries and the branch must treat the duplicate as a no-op
    "commit_ack_lost",
    # the branch is unreachable between its prepare-ack and the commit
    # delivery: the txn stays in doubt until recovery re-drives it
    "participant_down_on_commit",
)


class TwoPCFaultPlan:
    """Seedable crash/fault script for the 2PC coordinator.

    The FaultInjector above decides per *message*; this plan decides
    per *protocol step*.  Steps are armed explicitly (``arm``) or drawn
    from the seeded rng (``arm_random``), and each armed step fires
    exactly once — ``should_fire`` consumes it — so a recovery pass
    re-driving the same step does not crash again unless re-armed.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)
        self._armed: set[str] = set()
        #: steps that actually fired, in order (test/bench evidence)
        self.fired: list[str] = []

    def arm(self, step: str) -> None:
        """Arm one crash/fault step (delivery faults as ``kind:branch``)."""
        self._armed.add(step)

    def arm_random(self, branch_names: "tuple[str, ...]" = ()) -> str:
        """Arm one step drawn uniformly from the full crash-point
        matrix: every coordinator crash point plus every delivery fault
        against every named branch."""
        pool = list(TWO_PC_CRASH_POINTS)
        for kind in TWO_PC_DELIVERY_FAULTS:
            pool.extend(f"{kind}:{name}" for name in branch_names)
        step = self._rng.choice(pool)
        self.arm(step)
        return step

    def should_fire(self, step: str) -> bool:
        """Consume and fire ``step`` if armed (one-shot)."""
        if step in self._armed:
            self._armed.discard(step)
            self.fired.append(step)
            return True
        return False

    @property
    def armed(self) -> frozenset:
        return frozenset(self._armed)

    def reset(self, seed: Optional[int] = None) -> None:
        if seed is not None:
            self.seed = seed
        self._rng = random.Random(self.seed)
        self._armed.clear()
        self.fired = []

    def __repr__(self) -> str:
        return (
            f"TwoPCFaultPlan(seed={self.seed}, armed={sorted(self._armed)}, "
            f"fired={self.fired})"
        )
