"""Retry policies and per-query timeout budgets.

:func:`call_with_retry` is the one retry loop in the system: linked
servers route every remote operation (command dispatch, rowset
streaming, metadata refresh) through it.  Only
:class:`~repro.errors.TransientNetworkError` — and, when the policy
says so, :class:`~repro.errors.RemoteTimeoutError` — is retried;
:class:`~repro.errors.ServerUnavailableError` always propagates, since
retrying an unreachable server inside one statement cannot help.

Backoff is *simulated*: each retry charges
``backoff_ms(attempt)`` to the channel's ``simulated_ms`` (and to the
statement's :class:`QueryBudget` when one is attached), so experiments
see retries as added latency, not wall-clock sleeps.  Jitter is
deterministic — a hash of (channel name, operation, attempt) — keeping
whole benchmark sweeps replayable while desynchronizing concurrent
retries against the same member.
"""

from __future__ import annotations

import threading
import zlib
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.errors import RemoteTimeoutError, TransientNetworkError

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.channel import NetworkChannel


class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``max_attempts`` counts the first try: the default of 4 means one
    initial attempt plus up to three retries.  Backoff for retry *n*
    (1-based) is ``base_backoff_ms * multiplier**(n-1)``, capped at
    ``max_backoff_ms``, plus/minus up to ``jitter`` (a fraction of the
    backoff) derived from a stable hash.
    """

    def __init__(
        self,
        max_attempts: int = 4,
        base_backoff_ms: float = 4.0,
        multiplier: float = 2.0,
        max_backoff_ms: float = 100.0,
        jitter: float = 0.25,
        retry_timeouts: bool = True,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.base_backoff_ms = base_backoff_ms
        self.multiplier = multiplier
        self.max_backoff_ms = max_backoff_ms
        self.jitter = jitter
        self.retry_timeouts = retry_timeouts

    def is_retryable(self, error: Exception) -> bool:
        if isinstance(error, TransientNetworkError):
            return True
        if isinstance(error, RemoteTimeoutError):
            return self.retry_timeouts and not getattr(
                error, "budget_exhausted", False
            )
        return False

    def backoff_ms(self, attempt: int, jitter_key: str = "") -> float:
        """Simulated backoff before retry ``attempt`` (1-based)."""
        base = min(
            self.base_backoff_ms * (self.multiplier ** (attempt - 1)),
            self.max_backoff_ms,
        )
        if self.jitter <= 0.0:
            return base
        # stable in [-jitter, +jitter): same key + attempt -> same wait
        digest = zlib.crc32(f"{jitter_key}#{attempt}".encode("utf-8"))
        unit = digest / 0xFFFFFFFF  # [0, 1]
        return base * (1.0 + self.jitter * (2.0 * unit - 1.0))

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(attempts={self.max_attempts}, "
            f"base={self.base_backoff_ms}ms x{self.multiplier}, "
            f"cap={self.max_backoff_ms}ms)"
        )


#: a policy that never retries (for ablations and strict tests)
NO_RETRY = RetryPolicy(max_attempts=1)


class QueryBudget:
    """Per-statement simulated-time budget (the query timeout).

    The engine attaches one budget to every linked-server channel for
    the duration of a statement; each channel charge (latency, transfer,
    retry backoff) draws it down.  Exhaustion raises
    :class:`~repro.errors.RemoteTimeoutError` with
    ``budget_exhausted=True``, which retry loops treat as final.

    Thread-safe: parallel exchange workers draw down one shared budget,
    so accumulation is locked (the raise happens outside the lock).
    """

    __slots__ = ("limit_ms", "spent_ms", "_lock")

    def __init__(self, limit_ms: float):
        self.limit_ms = float(limit_ms)
        self.spent_ms = 0.0
        self._lock = threading.Lock()

    @property
    def remaining_ms(self) -> float:
        return max(0.0, self.limit_ms - self.spent_ms)

    def charge(self, ms: float) -> None:
        with self._lock:
            self.spent_ms += ms
            exhausted = self.spent_ms > self.limit_ms
        if exhausted:
            error = RemoteTimeoutError(
                f"query timeout budget of {self.limit_ms:g}ms exhausted "
                f"({self.spent_ms:.2f}ms of simulated network time)"
            )
            error.budget_exhausted = True
            raise error

    def __repr__(self) -> str:
        return f"QueryBudget({self.spent_ms:.2f}/{self.limit_ms:g}ms)"


def call_with_retry(
    policy: RetryPolicy,
    channel: Optional["NetworkChannel"],
    fn: Callable[[], Any],
    description: str = "",
) -> Any:
    """Run ``fn`` under ``policy``, charging backoff to ``channel``.

    Retries only errors the policy declares retryable; the final
    failure (retries exhausted or non-retryable) propagates unchanged.
    Metrics and trace events route through the channel so they land in
    the owning engine's registry and the current statement's trace.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except Exception as error:  # noqa: BLE001 - filtered below
            attempt += 1
            if not policy.is_retryable(error) or attempt >= policy.max_attempts:
                if channel is not None and policy.is_retryable(error):
                    channel.note_retries_exhausted(description, attempt)
                raise
            # distinct jitter key per (server, operation): keying on the
            # channel name alone made every concurrent retry against one
            # member back off in lockstep, re-colliding on each attempt
            key = (
                f"{channel.name}/{description}"
                if channel is not None
                else description
            )
            backoff = policy.backoff_ms(attempt, jitter_key=key)
            if channel is not None:
                channel.charge_backoff(backoff, attempt, description, error)
