"""Connection resiliency: fault injection, retry/backoff, timeouts.

The paper's federation story (Section 4.1.5) assumes partial failure is
survivable: delayed schema validation exists so a query over a
distributed partitioned view still compiles and runs when servers
hosting *untouched* partitions are down.  This package supplies the
machinery that makes such failures expressible and survivable in the
simulation:

* :class:`FaultInjector` — deterministic, seedable faults on any
  :class:`~repro.network.channel.NetworkChannel` (transient errors,
  per-message timeouts, server-down, slow-link degradation);
* :class:`RetryPolicy` / :func:`call_with_retry` — exponential backoff
  with deterministic jitter, charged as simulated milliseconds;
* :class:`QueryBudget` — per-statement timeout budgets.

The failure taxonomy and its exact semantics live in
``docs/FAULT_MODEL.md``.
"""

from repro.resilience.degrade import (
    PartialResultsInfo,
    SkippedPartition,
    prune_unavailable_branches,
    pv_member_tables,
)
from repro.resilience.faults import (
    DOWN,
    FaultInjector,
    OK,
    TIMEOUT,
    TRANSIENT,
    TWO_PC_CRASH_POINTS,
    TWO_PC_DELIVERY_FAULTS,
    TwoPCFaultPlan,
)
from repro.resilience.health import (
    CLOSED,
    CircuitBreaker,
    HALF_OPEN,
    HealthRegistry,
    OPEN,
    SimulatedClock,
)
from repro.resilience.retry import (
    NO_RETRY,
    QueryBudget,
    RetryPolicy,
    call_with_retry,
)

__all__ = [
    "FaultInjector",
    "RetryPolicy",
    "QueryBudget",
    "call_with_retry",
    "NO_RETRY",
    "OK",
    "TRANSIENT",
    "TIMEOUT",
    "DOWN",
    "TwoPCFaultPlan",
    "TWO_PC_CRASH_POINTS",
    "TWO_PC_DELIVERY_FAULTS",
    "CircuitBreaker",
    "HealthRegistry",
    "SimulatedClock",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "PartialResultsInfo",
    "SkippedPartition",
    "prune_unavailable_branches",
    "pv_member_tables",
]
