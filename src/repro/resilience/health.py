"""Per-linked-server circuit breakers and the engine health registry.

PR 2's retry machinery masks *transient* faults, but a member that is
down (or flapping hard enough to exhaust every retry budget) makes the
engine pay the full attempt + backoff cost on every statement that
touches it.  The circuit breaker turns that repeated discovery into a
remembered state: after ``failure_threshold`` consecutive final
failures (or a single definitive :class:`ServerUnavailableError`) the
breaker *opens* and further operations against the member fail fast
with :class:`~repro.errors.CircuitOpenError` — no connection attempt,
no retries, no backoff.  After ``open_interval_ms`` of simulated time
the next operation is admitted as a *half-open probe*; a successful
probe closes the breaker, a failed one re-opens it for another
interval.

Time is the :class:`SimulatedClock` — a plain counter of simulated
milliseconds the engine advances once per statement (and tests advance
directly) — so open intervals and probe admission are exactly
reproducible: no wall clock is ever consulted.

The :class:`HealthRegistry` owns one breaker per linked server and is
the single surface the rest of the engine consults: the optimizer asks
``state_of(server)`` to penalize or disqualify plans against degraded
members, the executor's replan path asks it which members to exclude,
and ``sys.dm_server_health`` renders its rows.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Optional

from repro.errors import CircuitOpenError

#: breaker states
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class SimulatedClock:
    """Deterministic time source for breaker intervals (simulated ms).

    Thread-safe: parallel exchange workers share the engine's clock
    through their breakers, so advances are locked (reads of ``now_ms``
    are single attribute loads and need no lock)."""

    __slots__ = ("now_ms", "_lock")

    def __init__(self, now_ms: float = 0.0):
        self.now_ms = float(now_ms)
        self._lock = threading.Lock()

    def advance(self, ms: float) -> float:
        with self._lock:
            self.now_ms += ms
            return self.now_ms

    def __repr__(self) -> str:
        return f"SimulatedClock({self.now_ms:.1f}ms)"


class CircuitBreaker:
    """Closed/open/half-open state machine for one linked server.

    Driven entirely by :meth:`before_attempt` / :meth:`record_success`
    / :meth:`record_failure`, which ``LinkedServer.run_with_retry``
    calls around every remote operation.  Only *final* outcomes count:
    a transient fault that a retry masked is a success; retries
    exhausted or a down server is a failure.

    Thread-safe: concurrent exchange workers hitting the same member
    drive one shared breaker, so every transition runs under a
    reentrant lock — N workers discovering a down member concurrently
    produce exactly one trip.
    """

    def __init__(
        self,
        name: str,
        clock: SimulatedClock,
        failure_threshold: int = 3,
        open_interval_ms: float = 200.0,
        half_open_successes: int = 1,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.name = name
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.open_interval_ms = float(open_interval_ms)
        self.half_open_successes = half_open_successes
        self.state = CLOSED
        self.consecutive_failures = 0
        #: times the breaker transitioned closed/half-open -> open
        self.trip_count = 0
        #: operations rejected without touching the network
        self.fast_fails = 0
        #: half-open probe attempts admitted
        self.probe_count = 0
        self._probe_successes = 0
        self.opened_at_ms: Optional[float] = None
        self.last_failure: Optional[str] = None
        self.last_failure_at_ms: Optional[float] = None
        self._lock = threading.RLock()

    # -- state machine ------------------------------------------------------
    @property
    def next_probe_at_ms(self) -> Optional[float]:
        """When an open breaker will admit its next probe (None unless
        open)."""
        if self.state != OPEN or self.opened_at_ms is None:
            return None
        return self.opened_at_ms + self.open_interval_ms

    def before_attempt(self, channel: Any = None, description: str = "") -> None:
        """Gate one remote operation.

        Open + interval not elapsed: raise :class:`CircuitOpenError`
        without any network charge (the whole point).  Open + interval
        elapsed: transition to half-open and admit the operation as a
        probe.  Closed/half-open: admit.
        """
        with self._lock:
            if self.state != OPEN:
                return
            if self.clock.now_ms >= (self.next_probe_at_ms or 0.0):
                self.state = HALF_OPEN
                self._probe_successes = 0
                self.probe_count += 1
                self._emit(channel, "breaker_half_open", "health.probes",
                           operation=description)
                return
            self.fast_fails += 1
            if channel is not None:
                channel.stats.breaker_fast_fails += 1
            self._emit(channel, "breaker_fast_fail", "health.fast_fails",
                       operation=description)
        error = CircuitOpenError(
            f"circuit for linked server {self.name!r} is open "
            f"(last failure: {self.last_failure}); next probe at "
            f"{self.next_probe_at_ms:.1f}ms simulated"
        )
        error.server_name = self.name
        raise error

    def record_success(self, channel: Any = None) -> None:
        """One remote operation completed (possibly after retries)."""
        with self._lock:
            self.consecutive_failures = 0
            if self.state == HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_successes:
                    self.state = CLOSED
                    self.opened_at_ms = None
                    self._emit(
                        channel, "breaker_close", "health.breaker_closes"
                    )
            elif self.state == OPEN:
                # a success while nominally open (e.g. another path
                # raced the probe) is evidence enough to close
                self.state = CLOSED
                self.opened_at_ms = None
                self._emit(channel, "breaker_close", "health.breaker_closes")

    def record_failure(
        self, error: Exception, channel: Any = None, definitive: bool = False
    ) -> None:
        """One remote operation failed for good (retries exhausted or a
        non-retryable error).  ``definitive`` (server-down) trips the
        breaker immediately; other failures count toward the threshold.
        """
        with self._lock:
            self.consecutive_failures += 1
            self.last_failure = f"{type(error).__name__}: {error}"
            self.last_failure_at_ms = self.clock.now_ms
            if self.state == HALF_OPEN:
                self._trip(channel, reason="probe_failed")
                return
            if self.state == CLOSED and (
                definitive
                or self.consecutive_failures >= self.failure_threshold
            ):
                self._trip(
                    channel, reason="down" if definitive else "threshold"
                )

    def force_open(self, reason: str = "forced", channel: Any = None) -> None:
        """Trip the breaker directly (tests, golden plans, operators)."""
        with self._lock:
            self.last_failure = reason
            self.last_failure_at_ms = self.clock.now_ms
            self._trip(channel, reason=reason)

    def force_close(self) -> None:
        with self._lock:
            self.state = CLOSED
            self.consecutive_failures = 0
            self.opened_at_ms = None
            self._probe_successes = 0

    def _trip(self, channel: Any, reason: str) -> None:
        # always called with _lock held
        self.state = OPEN
        self.opened_at_ms = self.clock.now_ms
        self.trip_count += 1
        if channel is not None:
            channel.stats.breaker_trips += 1
        self._emit(
            channel, "breaker_open", "health.breaker_trips",
            reason=reason, failures=self.consecutive_failures,
        )

    # -- plumbing -------------------------------------------------------------
    def _emit(self, channel: Any, event: str, counter: str, **attrs: Any) -> None:
        """Route one breaker transition through the channel's metric and
        trace hooks (they land in the owning engine's registry and the
        current statement's trace)."""
        if channel is None:
            return
        channel._count(counter)
        channel._trace_event(event, server=self.name, state=self.state, **attrs)

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name}, {self.state}, "
            f"failures={self.consecutive_failures}, trips={self.trip_count})"
        )


class HealthRegistry:
    """All breakers of one engine, sharing one simulated clock.

    The engine advances the clock by :attr:`STATEMENT_TICK_MS` per
    statement, so an open breaker's probe interval elapses after a
    deterministic number of statements even when the fast-fail path
    never charges network time.
    """

    #: simulated ms added per executed statement
    STATEMENT_TICK_MS = 50.0

    def __init__(
        self,
        owner: str = "engine",
        clock: Optional[SimulatedClock] = None,
        failure_threshold: int = 3,
        open_interval_ms: float = 200.0,
        half_open_successes: int = 1,
    ):
        self.owner = owner
        self.clock = clock or SimulatedClock()
        self.failure_threshold = failure_threshold
        self.open_interval_ms = open_interval_ms
        self.half_open_successes = half_open_successes
        self._breakers: dict[str, CircuitBreaker] = {}
        #: guards breaker creation — workers may first-touch a member
        #: concurrently and must agree on one breaker instance
        self._lock = threading.Lock()

    def breaker(self, server_name: str) -> CircuitBreaker:
        """The breaker for one linked server (created on first use)."""
        key = server_name.lower()
        breaker = self._breakers.get(key)
        if breaker is None:
            with self._lock:
                breaker = self._breakers.get(key)
                if breaker is None:
                    breaker = CircuitBreaker(
                        server_name,
                        self.clock,
                        failure_threshold=self.failure_threshold,
                        open_interval_ms=self.open_interval_ms,
                        half_open_successes=self.half_open_successes,
                    )
                    self._breakers[key] = breaker
        return breaker

    def get(self, server_name: str) -> Optional[CircuitBreaker]:
        """The breaker if one exists; never creates (pure reads for the
        optimizer and DMVs)."""
        return self._breakers.get(server_name.lower())

    def state_of(self, server_name: str) -> str:
        breaker = self.get(server_name)
        return breaker.state if breaker is not None else CLOSED

    def is_open(self, server_name: str) -> bool:
        return self.state_of(server_name) == OPEN

    def should_route_around(self, server_name: str) -> bool:
        """True when a plan should avoid this server entirely.

        Open *and* the probe window has not arrived.  Once the open
        interval elapses, the server must be planned *into* the query
        so the half-open probe actually runs — partial-results pruning
        that kept routing around an open breaker would otherwise never
        touch the member again and a recovered server could never be
        folded back in.  If the admitted probe fails, the statement's
        bounded replan degrades it exactly like any other mid-query
        death.
        """
        breaker = self.get(server_name)
        if breaker is None or breaker.state != OPEN:
            return False
        return self.clock.now_ms < (breaker.next_probe_at_ms or 0.0)

    def open_servers(self) -> list[str]:
        return [b.name for b in self._breakers.values() if b.state == OPEN]

    def tick(self, ms: Optional[float] = None) -> None:
        """Advance simulated time (once per statement by the engine)."""
        self.clock.advance(self.STATEMENT_TICK_MS if ms is None else ms)

    def breakers(self) -> Iterable[CircuitBreaker]:
        return self._breakers.values()

    def reset(self) -> None:
        self._breakers.clear()

    def __repr__(self) -> str:
        return (
            f"HealthRegistry({self.owner}, {len(self._breakers)} breakers, "
            f"open={self.open_servers()})"
        )
