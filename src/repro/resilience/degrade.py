"""Partial-results degradation for partitioned views.

Under ``SET PARTIAL_RESULTS ON`` the engine answers a federated query
from the partitions it can still reach: before optimization (and again
after a mid-query failure) it prunes every ``UnionAll`` branch whose
subtree lives on an unavailable member — exactly the branch-dropping
the static pruner performs for contradicted CHECK domains, but driven
by breaker state instead of predicates.  Each dropped branch is
recorded as a :class:`SkippedPartition`, and the resulting
:class:`PartialResultsInfo` is stamped onto the ``QueryResult`` so the
caller always knows the answer is incomplete, which members were
skipped, and why.

Default mode never calls into this module: fail-stop semantics are
untouched, and PV DML stays fail-stop/atomic via the DTC in either
mode.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.algebra.expressions import ColumnRef
from repro.algebra.logical import EmptyTable, Get, LogicalOp, Project, UnionAll


class SkippedPartition:
    """One partitioned-view member excluded from a degraded answer."""

    __slots__ = ("server", "table", "reason")

    def __init__(self, server: str, table: str, reason: str):
        self.server = server
        self.table = table
        self.reason = reason

    def as_dict(self) -> Dict[str, str]:
        return {
            "server": self.server,
            "table": self.table,
            "reason": self.reason,
        }

    def __repr__(self) -> str:
        return f"SkippedPartition({self.server}.{self.table}: {self.reason})"


class PartialResultsInfo:
    """Incomplete-result metadata attached to a degraded QueryResult."""

    def __init__(self, skipped: Optional[List[SkippedPartition]] = None):
        self.skipped: List[SkippedPartition] = list(skipped or [])

    @property
    def is_partial(self) -> bool:
        return bool(self.skipped)

    @property
    def skipped_servers(self) -> List[str]:
        seen: List[str] = []
        for entry in self.skipped:
            if entry.server not in seen:
                seen.append(entry.server)
        return seen

    def as_dict(self) -> Dict[str, Any]:
        return {
            "is_partial": self.is_partial,
            "skipped_partitions": [s.as_dict() for s in self.skipped],
        }

    def __repr__(self) -> str:
        return f"PartialResultsInfo(skipped={self.skipped})"


def subtree_servers(op: LogicalOp) -> frozenset:
    """Linked-server names a logical subtree reads from."""
    found = set()
    stack = [op]
    while stack:
        node = stack.pop()
        if isinstance(node, Get) and node.table.server is not None:
            found.add(node.table.server)
        stack.extend(node.inputs)
    return frozenset(found)


def pv_member_tables(root: LogicalOp) -> frozenset:
    """``(server, qualified_name)`` pairs of remote partitioned-view
    members: every remote Get underneath a UnionAll in the *bound*
    tree.  Collected before normalization, because static pruning can
    collapse a one-survivor union into a bare remote read — this set
    is how the partial-results pruner still recognizes that read as a
    PV member (degradable) rather than a plain remote table
    (fail-stop)."""
    members = set()
    stack: List[Tuple[LogicalOp, bool]] = [(root, False)]
    while stack:
        node, under_union = stack.pop()
        if under_union and isinstance(node, Get) and node.table.server:
            members.add((node.table.server, node.table.qualified_name))
        inside = under_union or isinstance(node, UnionAll)
        stack.extend((child, inside) for child in node.inputs)
    return frozenset(members)


def _branch_skips(
    branch: LogicalOp,
    down: frozenset,
    reason_for: Callable[[str], str],
) -> List[SkippedPartition]:
    entries: List[SkippedPartition] = []
    stack = [branch]
    while stack:
        node = stack.pop()
        if isinstance(node, Get) and node.table.server in down:
            entries.append(
                SkippedPartition(
                    node.table.server,
                    node.table.qualified_name,
                    reason_for(node.table.server),
                )
            )
        stack.extend(node.inputs)
    return entries


def prune_unavailable_branches(
    root: LogicalOp,
    is_down: Callable[[str], bool],
    pv_members: frozenset = frozenset(),
    reason_for: Optional[Callable[[str], str]] = None,
) -> Tuple[LogicalOp, List[SkippedPartition]]:
    """Drop UnionAll branches that read from unavailable servers.

    Returns the (possibly rebuilt) tree plus one entry per skipped
    member table.  Mirrors the static pruner's branch-drop mechanics:
    a single surviving branch is projected onto the union's output ids,
    zero survivors become an EmptyTable with the union's definitions.

    ``pv_members`` carries the ``(server, qualified_name)`` set from
    :func:`pv_member_tables`: when static pruning already collapsed a
    union to exactly the unavailable member, the surviving bare Get is
    still recognized as a partition and degrades to an EmptyTable —
    the predicate routed the query to a dead partition, so the partial
    answer is empty, not an error.  Non-union reads of an unavailable
    server that are *not* known PV members are left in place — they
    have no healthy sibling to degrade to, so they keep fail-stop
    semantics even in partial mode.

    ``reason_for`` maps a server name to the skip reason recorded on
    its :class:`SkippedPartition` (default ``"circuit_open"``); the
    engine uses it to stamp ``"in_doubt"`` on members fenced off by an
    unresolved distributed transaction rather than a tripped breaker.
    """
    skipped: List[SkippedPartition] = []
    if reason_for is None:
        reason_for = lambda server: "circuit_open"  # noqa: E731

    def visit(op: LogicalOp) -> LogicalOp:
        new_inputs = tuple(visit(child) for child in op.inputs)
        if new_inputs != tuple(op.inputs):
            op = op.with_inputs(new_inputs)
        if not isinstance(op, UnionAll):
            return op
        live: List[Tuple[LogicalOp, dict]] = []
        for branch, branch_map in zip(op.inputs, op.branch_maps):
            down = frozenset(
                s for s in subtree_servers(branch) if is_down(s)
            )
            if down:
                skipped.extend(_branch_skips(branch, down, reason_for))
            else:
                live.append((branch, branch_map))
        if len(live) == len(op.inputs):
            return op
        if not live:
            return EmptyTable(op.output_defs)
        if len(live) == 1:
            branch, branch_map = live[0]
            outputs = []
            for definition in op.output_defs:
                branch_cid = branch_map[definition.cid]
                outputs.append(
                    (
                        definition.cid,
                        ColumnRef(
                            branch_cid, definition.name, definition.type
                        ),
                    )
                )
            return Project(branch, outputs, op.output_defs)
        return UnionAll(
            [b for b, __ in live],
            op.output_defs,
            [m for __, m in live],
        )

    def degrade_collapsed(op: LogicalOp) -> LogicalOp:
        if (
            isinstance(op, Get)
            and op.table.server is not None
            and is_down(op.table.server)
            and (op.table.server, op.table.qualified_name) in pv_members
        ):
            skipped.append(
                SkippedPartition(
                    op.table.server,
                    op.table.qualified_name,
                    reason_for(op.table.server),
                )
            )
            return EmptyTable(op.table.columns)
        new_inputs = tuple(degrade_collapsed(child) for child in op.inputs)
        if new_inputs != tuple(op.inputs):
            op = op.with_inputs(new_inputs)
        return op

    pruned = visit(root)
    if pv_members:
        pruned = degrade_collapsed(pruned)
    return pruned, skipped
