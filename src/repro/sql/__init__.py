"""SQL front end: lexer, AST, parser, and binder (algebrizer).

The dialect is the T-SQL subset the paper exercises: SELECT with
joins/grouping/ordering, four-part names over linked servers
(Section 2.1), OPENROWSET/OPENQUERY/MakeTable table sources
(Sections 2.2/2.4), CONTAINS full-text predicates (Section 2.3),
INSERT/UPDATE/DELETE, and the DDL needed to build schemas, indexes,
views (including partitioned views) and full-text catalogs.
"""

from repro.sql.lexer import Token, tokenize_sql
from repro.sql.parser import parse_sql, parse_expression
from repro.sql import ast

__all__ = ["Token", "tokenize_sql", "parse_sql", "parse_expression", "ast"]
