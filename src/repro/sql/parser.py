"""Recursive-descent SQL parser producing :mod:`repro.sql.ast` nodes."""

from __future__ import annotations

from typing import Optional

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import Token, tokenize_sql


def parse_sql(text: str) -> ast.Statement:
    """Parse one SQL statement."""
    parser = _Parser(text)
    statement = parser.statement()
    parser.expect_eof()
    return statement


def parse_expression(text: str) -> ast.Expr:
    """Parse a standalone scalar expression (CHECK constraint bodies)."""
    parser = _Parser(text)
    expr = parser.expression()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize_sql(text)
        self.pos = 0

    # -- token plumbing ------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.pos += 1
        return token

    def at_keyword(self, *words: str) -> bool:
        return self.peek().is_keyword(*words)

    def accept_keyword(self, *words: str) -> bool:
        if self.at_keyword(*words):
            self.next()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        token = self.next()
        if not token.is_keyword(word):
            raise ParseError(
                f"expected {word.upper()}, got {token.value!r}", token.position
            )

    def accept_punct(self, value: str) -> bool:
        token = self.peek()
        if token.kind in ("punct", "operator") and token.value == value:
            self.next()
            return True
        return False

    def expect_punct(self, value: str) -> None:
        token = self.next()
        if token.kind not in ("punct", "operator") or token.value != value:
            raise ParseError(
                f"expected {value!r}, got {token.value!r}", token.position
            )

    def expect_identifier(self) -> str:
        token = self.next()
        if token.kind not in ("identifier", "keyword"):
            raise ParseError(
                f"expected identifier, got {token.value!r}", token.position
            )
        return token.value

    def expect_string(self) -> str:
        token = self.next()
        if token.kind != "string":
            raise ParseError(
                f"expected string literal, got {token.value!r}", token.position
            )
        return token.value

    def expect_number(self) -> float:
        token = self.next()
        if token.kind != "number":
            raise ParseError(
                f"expected number, got {token.value!r}", token.position
            )
        return _numeric(token.value)

    def expect_eof(self) -> None:
        self.accept_punct(";")
        token = self.peek()
        if token.kind != "eof":
            raise ParseError(
                f"unexpected trailing input at {token.value!r}", token.position
            )

    # -- statements -----------------------------------------------------------
    def statement(self) -> ast.Statement:
        if self.at_keyword("explain"):
            self.next()
            analyze, verbose = self._explain_options()
            return ast.ExplainStmt(
                self.select_statement(), analyze=analyze, verbose=verbose
            )
        if self.at_keyword("select"):
            return self.select_statement()
        if self.at_keyword("insert"):
            return self.insert_statement()
        if self.at_keyword("update"):
            return self.update_statement()
        if self.at_keyword("delete"):
            return self.delete_statement()
        if self.at_keyword("create"):
            return self.create_statement()
        if self.at_keyword("drop"):
            return self.drop_statement()
        if self.at_keyword("set"):
            return self.set_statement()
        token = self.peek()
        raise ParseError(
            f"expected a statement, got {token.value!r}", token.position
        )

    def set_statement(self) -> ast.SetStmt:
        """``SET <option> ON|OFF``, ``SET <option> <integer>`` or
        ``SET <option> '<string>'`` — ``on`` is a reserved word (join
        syntax), ``off`` lexes as a plain identifier.  Integer-valued
        options (``PARALLEL_DOP n``) take a bare numeric literal;
        string-valued options (``WORKLOAD GROUP 'name'``) take a
        quoted literal.  The two-word ``WORKLOAD GROUP`` option folds
        to the single name ``workload_group``."""
        self.expect_keyword("set")
        option = self.expect_identifier()
        if option.lower() == "workload" and (
            self._accept_name("group") or self.accept_keyword("group")
        ):
            option = "workload_group"
        value: bool | int | str
        if self.accept_keyword("on"):
            value = True
        elif self._accept_name("off"):
            value = False
        elif self.peek().kind == "number":
            token = self.next()
            try:
                value = int(token.value)
            except ValueError:
                raise ParseError(
                    f"SET {option} expects an integer, got {token.value!r}",
                    token.position,
                )
        elif self.peek().kind == "string":
            value = self.next().value
        else:
            token = self.peek()
            raise ParseError(
                f"expected ON, OFF, an integer or a string literal, "
                f"got {token.value!r}",
                token.position,
            )
        return ast.SetStmt(option, value)

    def _explain_options(self) -> tuple[bool, bool]:
        """ANALYZE / VERBOSE after EXPLAIN: bare words or a parenthesized
        option list.  The option names are ordinary identifiers, not
        reserved words, so columns named ``analyze`` stay legal."""
        analyze = verbose = False
        if (
            self.peek().kind in ("punct", "operator")
            and self.peek().value == "("
            and self.peek(1).kind == "identifier"
        ):
            self.next()  # consume "("
            while True:
                if self._accept_name("analyze"):
                    analyze = True
                elif self._accept_name("verbose"):
                    verbose = True
                else:
                    token = self.peek()
                    raise ParseError(
                        f"unknown EXPLAIN option {token.value!r}",
                        token.position,
                    )
                if not self.accept_punct(","):
                    break
            self.expect_punct(")")
            return analyze, verbose
        if self._accept_name("analyze"):
            analyze = True
        if self._accept_name("verbose"):
            verbose = True
        return analyze, verbose

    def _at_name(self, *names: str, offset: int = 0) -> bool:
        token = self.peek(offset)
        return token.kind == "identifier" and token.value.lower() in names

    def _accept_name(self, *names: str) -> bool:
        if self._at_name(*names):
            self.next()
            return True
        return False

    def select_statement(self) -> ast.SelectStmt:
        first = self.core_select()
        branches: list[ast.SelectStmt] = []
        while self.at_keyword("union"):
            self.next()
            self.expect_keyword("all")
            branches.append(self.core_select())
        order_by: list[ast.OrderItem] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by = self.order_items()
        first.union_all = branches
        first.order_by = order_by
        return first

    def core_select(self) -> ast.SelectStmt:
        self.expect_keyword("select")
        distinct = False
        top: Optional[int] = None
        if self.accept_keyword("distinct"):
            distinct = True
        if self.accept_keyword("top"):
            top = int(self.expect_number())
        items = self.select_items()
        sources: list[ast.TableSource] = []
        if self.accept_keyword("from"):
            sources = self.table_sources()
        where = self.expression() if self.accept_keyword("where") else None
        group_by: list[ast.Expr] = []
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by = [self.expression()]
            while self.accept_punct(","):
                group_by.append(self.expression())
        having = self.expression() if self.accept_keyword("having") else None
        return ast.SelectStmt(
            items,
            sources,
            where=where,
            group_by=group_by,
            having=having,
            distinct=distinct,
            top=top,
        )

    def select_items(self) -> list[ast.SelectItem]:
        items = [self.select_item()]
        while self.accept_punct(","):
            items.append(self.select_item())
        return items

    def select_item(self) -> ast.SelectItem:
        # '*' or 'alias.*'
        token = self.peek()
        if token.kind == "operator" and token.value == "*":
            self.next()
            return ast.SelectItem(ast.StarExpr())
        if (
            token.kind in ("identifier",)
            and self.peek(1).kind == "punct"
            and self.peek(1).value == "."
            and self.peek(2).kind == "operator"
            and self.peek(2).value == "*"
        ):
            qualifier = self.next().value
            self.next()  # '.'
            self.next()  # '*'
            return ast.SelectItem(ast.StarExpr(qualifier))
        expr = self.expression()
        alias: Optional[str] = None
        if self.accept_keyword("as"):
            alias = self.expect_identifier()
        elif self.peek().kind == "identifier":
            alias = self.next().value
        return ast.SelectItem(expr, alias)

    def order_items(self) -> list[ast.OrderItem]:
        items = [self.order_item()]
        while self.accept_punct(","):
            items.append(self.order_item())
        return items

    def order_item(self) -> ast.OrderItem:
        expr = self.expression()
        ascending = True
        if self.accept_keyword("desc"):
            ascending = False
        else:
            self.accept_keyword("asc")
        return ast.OrderItem(expr, ascending)

    # -- table sources -----------------------------------------------------------
    def table_sources(self) -> list[ast.TableSource]:
        sources = [self.table_source()]
        while self.accept_punct(","):
            sources.append(self.table_source())
        return sources

    def table_source(self) -> ast.TableSource:
        source = self.primary_source()
        while True:
            if self.at_keyword("inner") or self.at_keyword("join"):
                self.accept_keyword("inner")
                self.expect_keyword("join")
                right = self.primary_source()
                self.expect_keyword("on")
                condition = self.expression()
                source = ast.JoinSource(source, right, "inner", condition)
            elif self.at_keyword("left"):
                self.next()
                self.accept_keyword("outer")
                self.expect_keyword("join")
                right = self.primary_source()
                self.expect_keyword("on")
                condition = self.expression()
                source = ast.JoinSource(source, right, "left_outer", condition)
            elif self.at_keyword("cross"):
                self.next()
                self.expect_keyword("join")
                right = self.primary_source()
                source = ast.JoinSource(source, right, "cross", None)
            else:
                return source

    def primary_source(self) -> ast.TableSource:
        if self.accept_punct("("):
            subquery = self.select_statement()
            self.expect_punct(")")
            alias = self._source_alias(required=True)
            assert alias is not None
            return ast.DerivedTable(subquery, alias)
        if self.at_keyword("openrowset"):
            return self.openrowset_source()
        if self.at_keyword("openquery"):
            return self.openquery_source()
        if self.at_keyword("maketable"):
            return self.maketable_source()
        parts = [self.expect_identifier()]
        while self.accept_punct("."):
            # empty part in 'server..table' means default schema
            if self.peek().kind == "punct" and self.peek().value == ".":
                parts.append("")
                continue
            parts.append(self.expect_identifier())
        if len(parts) > 4:
            raise ParseError(
                f"too many name parts in {'.'.join(parts)!r}",
                self.peek().position,
            )
        alias = self._source_alias()
        return ast.NamedTable(parts, alias)

    def _source_alias(self, required: bool = False) -> Optional[str]:
        if self.accept_keyword("as"):
            return self.expect_identifier()
        if self.peek().kind == "identifier":
            return self.next().value
        if required:
            raise ParseError(
                "derived table requires an alias", self.peek().position
            )
        return None

    def openrowset_source(self) -> ast.OpenRowsetSource:
        self.expect_keyword("openrowset")
        self.expect_punct("(")
        provider = self.expect_string()
        self.expect_punct(",")
        datasource = self.expect_string()
        user = ""
        password = ""
        if self.accept_punct(";"):
            user = self.expect_string()
            if self.accept_punct(";"):
                password = self.expect_string()
        self.expect_punct(",")
        token = self.next()
        if token.kind == "string":
            query_or_table = token.value
        elif token.kind in ("identifier", "keyword"):
            query_or_table = token.value
        else:
            raise ParseError(
                f"expected query text or table name, got {token.value!r}",
                token.position,
            )
        self.expect_punct(")")
        alias = self._source_alias() or "openrowset"
        return ast.OpenRowsetSource(
            provider, datasource, query_or_table, alias, user, password
        )

    def openquery_source(self) -> ast.OpenQuerySource:
        self.expect_keyword("openquery")
        self.expect_punct("(")
        server = self.expect_identifier()
        self.expect_punct(",")
        query_text = self.expect_string()
        self.expect_punct(")")
        alias = self._source_alias() or "openquery"
        return ast.OpenQuerySource(server, query_text, alias)

    def maketable_source(self) -> ast.MakeTableSource:
        self.expect_keyword("maketable")
        self.expect_punct("(")
        provider = self.expect_identifier()
        self.expect_punct(",")
        token = self.next()
        if token.kind not in ("string", "identifier"):
            raise ParseError(
                f"expected path, got {token.value!r}", token.position
            )
        path = token.value
        table: Optional[str] = None
        if self.accept_punct(","):
            token = self.next()
            if token.kind not in ("string", "identifier"):
                raise ParseError(
                    f"expected table name, got {token.value!r}", token.position
                )
            table = token.value
        self.expect_punct(")")
        alias = self._source_alias() or "maketable"
        return ast.MakeTableSource(provider, path, table, alias)

    # -- DML -----------------------------------------------------------------
    def insert_statement(self) -> ast.InsertStmt:
        self.expect_keyword("insert")
        self.accept_keyword("into")
        table = self._named_table()
        columns: Optional[list[str]] = None
        if self.accept_punct("("):
            columns = [self.expect_identifier()]
            while self.accept_punct(","):
                columns.append(self.expect_identifier())
            self.expect_punct(")")
        if self.accept_keyword("values"):
            rows = [self._value_row()]
            while self.accept_punct(","):
                rows.append(self._value_row())
            return ast.InsertStmt(table, columns, rows=rows)
        if self.at_keyword("select"):
            select = self.select_statement()
            return ast.InsertStmt(table, columns, select=select)
        raise ParseError(
            "INSERT requires VALUES or SELECT", self.peek().position
        )

    def _value_row(self) -> list[ast.Expr]:
        self.expect_punct("(")
        row = [self.expression()]
        while self.accept_punct(","):
            row.append(self.expression())
        self.expect_punct(")")
        return row

    def _named_table(self) -> ast.NamedTable:
        parts = [self.expect_identifier()]
        while self.accept_punct("."):
            parts.append(self.expect_identifier())
        return ast.NamedTable(parts, parts[-1])

    def update_statement(self) -> ast.UpdateStmt:
        self.expect_keyword("update")
        table = self._named_table()
        self.expect_keyword("set")
        assignments = [self._assignment()]
        while self.accept_punct(","):
            assignments.append(self._assignment())
        where = self.expression() if self.accept_keyword("where") else None
        return ast.UpdateStmt(table, assignments, where)

    def _assignment(self) -> tuple[str, ast.Expr]:
        column = self.expect_identifier()
        self.expect_punct("=")
        return column, self.expression()

    def delete_statement(self) -> ast.DeleteStmt:
        self.expect_keyword("delete")
        self.accept_keyword("from")
        table = self._named_table()
        where = self.expression() if self.accept_keyword("where") else None
        return ast.DeleteStmt(table, where)

    # -- DDL -----------------------------------------------------------------
    def create_statement(self) -> ast.Statement:
        self.expect_keyword("create")
        if self.accept_keyword("database"):
            return ast.CreateDatabaseStmt(self.expect_identifier())
        if self.accept_keyword("table"):
            return self.create_table_body()
        unique = self.accept_keyword("unique")
        if self.accept_keyword("index"):
            return self.create_index_body(unique)
        if unique:
            raise ParseError("expected INDEX after UNIQUE", self.peek().position)
        if self.accept_keyword("view"):
            return self.create_view_body()
        token = self.peek()
        raise ParseError(
            f"unsupported CREATE {token.value!r}", token.position
        )

    def create_table_body(self) -> ast.CreateTableStmt:
        table = self._named_table()
        self.expect_punct("(")
        columns: list[ast.ColumnDefSyntax] = []
        table_checks: list[tuple[Optional[str], ast.Expr]] = []
        while True:
            if self.at_keyword("check"):
                self.next()
                self.expect_punct("(")
                table_checks.append((None, self.expression()))
                self.expect_punct(")")
            elif self.at_keyword("constraint"):
                self.next()
                constraint_name = self.expect_identifier()
                self.expect_keyword("check")
                self.expect_punct("(")
                table_checks.append((constraint_name, self.expression()))
                self.expect_punct(")")
            else:
                columns.append(self.column_definition())
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        return ast.CreateTableStmt(table, columns, table_checks)

    def column_definition(self) -> ast.ColumnDefSyntax:
        name = self.expect_identifier()
        type_name = self.expect_identifier()
        type_arg: Optional[int] = None
        if self.accept_punct("("):
            type_arg = int(self.expect_number())
            self.expect_punct(")")
        not_null = False
        primary_key = False
        check: Optional[ast.Expr] = None
        while True:
            if self.accept_keyword("not"):
                self.expect_keyword("null")
                not_null = True
            elif self.accept_keyword("null"):
                pass
            elif self.accept_keyword("primary"):
                self.expect_keyword("key")
                primary_key = True
            elif self.accept_keyword("check"):
                self.expect_punct("(")
                check = self.expression()
                self.expect_punct(")")
            else:
                break
        return ast.ColumnDefSyntax(
            name, type_name, type_arg, not_null, primary_key, check
        )

    def create_index_body(self, unique: bool) -> ast.CreateIndexStmt:
        index_name = self.expect_identifier()
        self.expect_keyword("on")
        table = self._named_table()
        self.expect_punct("(")
        columns = [self.expect_identifier()]
        while self.accept_punct(","):
            columns.append(self.expect_identifier())
        self.expect_punct(")")
        return ast.CreateIndexStmt(index_name, table, columns, unique)

    def create_view_body(self) -> ast.CreateViewStmt:
        view = self._named_table()
        self.expect_keyword("as")
        # capture the raw SELECT text from here to end of statement
        start_token = self.peek()
        if not start_token.is_keyword("select"):
            raise ParseError(
                "CREATE VIEW body must be a SELECT", start_token.position
            )
        select_sql = self.text[start_token.position:].rstrip().rstrip(";")
        # validate it parses, then consume all remaining tokens
        _Parser(select_sql).select_statement()
        while self.peek().kind != "eof":
            self.next()
        return ast.CreateViewStmt(view, select_sql)

    def drop_statement(self) -> ast.DropTableStmt:
        self.expect_keyword("drop")
        self.expect_keyword("table")
        return ast.DropTableStmt(self._named_table())

    # -- expressions (precedence climbing) ----------------------------------------
    def expression(self) -> ast.Expr:
        return self.or_expr()

    def or_expr(self) -> ast.Expr:
        expr = self.and_expr()
        while self.accept_keyword("or"):
            expr = ast.BinaryExpr("OR", expr, self.and_expr())
        return expr

    def and_expr(self) -> ast.Expr:
        expr = self.not_expr()
        while self.accept_keyword("and"):
            expr = ast.BinaryExpr("AND", expr, self.not_expr())
        return expr

    def not_expr(self) -> ast.Expr:
        if self.accept_keyword("not"):
            return ast.NotExpr(self.not_expr())
        return self.predicate()

    def predicate(self) -> ast.Expr:
        if self.at_keyword("exists"):
            self.next()
            self.expect_punct("(")
            subquery = self.select_statement()
            self.expect_punct(")")
            return ast.ExistsExpr(subquery)
        if self.at_keyword("contains"):
            return self.contains_predicate("contains")
        if self.at_keyword("freetext"):
            return self.contains_predicate("freetext")
        expr = self.additive()
        token = self.peek()
        if token.kind == "operator" and token.value in (
            "=",
            "<>",
            "!=",
            "<",
            "<=",
            ">",
            ">=",
        ):
            op = self.next().value
            right = self.comparison_rhs()
            return ast.BinaryExpr(op, expr, right)
        negated = False
        if self.at_keyword("not"):
            # lookahead for NOT IN / NOT BETWEEN / NOT LIKE
            follower = self.peek(1)
            if follower.is_keyword("in", "between", "like"):
                self.next()
                negated = True
        if self.accept_keyword("is"):
            is_negated = self.accept_keyword("not")
            self.expect_keyword("null")
            return ast.IsNullExpr(expr, is_negated)
        if self.accept_keyword("in"):
            self.expect_punct("(")
            if self.at_keyword("select"):
                subquery = self.select_statement()
                self.expect_punct(")")
                return ast.InExpr(expr, subquery=subquery, negated=negated)
            items = [self.expression()]
            while self.accept_punct(","):
                items.append(self.expression())
            self.expect_punct(")")
            return ast.InExpr(expr, items=items, negated=negated)
        if self.accept_keyword("between"):
            low = self.additive()
            self.expect_keyword("and")
            high = self.additive()
            return ast.BetweenExpr(expr, low, high, negated)
        if self.accept_keyword("like"):
            pattern = self.additive()
            return ast.LikeExpr(expr, pattern, negated)
        return expr

    def comparison_rhs(self) -> ast.Expr:
        """Right side of a comparison: scalar subquery or additive expr."""
        if (
            self.peek().kind == "punct"
            and self.peek().value == "("
            and self.peek(1).is_keyword("select")
        ):
            self.next()
            subquery = self.select_statement()
            self.expect_punct(")")
            return ast.ScalarSubqueryExpr(subquery)
        return self.additive()

    def contains_predicate(self, keyword: str) -> ast.ContainsExpr:
        self.expect_keyword(keyword)
        self.expect_punct("(")
        parts = [self.expect_identifier()]
        while self.accept_punct("."):
            parts.append(self.expect_identifier())
        self.expect_punct(",")
        query_text = self.expect_string()
        self.expect_punct(")")
        return ast.ContainsExpr(
            ast.NameExpr(parts), query_text, freetext=(keyword == "freetext")
        )

    def additive(self) -> ast.Expr:
        expr = self.multiplicative()
        while True:
            token = self.peek()
            if token.kind == "operator" and token.value in ("+", "-"):
                op = self.next().value
                expr = ast.BinaryExpr(op, expr, self.multiplicative())
            else:
                return expr

    def multiplicative(self) -> ast.Expr:
        expr = self.unary()
        while True:
            token = self.peek()
            if token.kind == "operator" and token.value in ("*", "/", "%"):
                op = self.next().value
                expr = ast.BinaryExpr(op, expr, self.unary())
            else:
                return expr

    def unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "operator" and token.value == "-":
            self.next()
            return ast.UnaryExpr("-", self.unary())
        if token.kind == "operator" and token.value == "+":
            self.next()
            return self.unary()
        return self.primary()

    def primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "number":
            self.next()
            return ast.LiteralExpr(_numeric(token.value))
        if token.kind == "string":
            self.next()
            return ast.LiteralExpr(token.value)
        if token.kind == "parameter":
            self.next()
            return ast.ParamExpr(token.value)
        if token.is_keyword("null"):
            self.next()
            return ast.LiteralExpr(None)
        if token.is_keyword("case"):
            return self.case_expression()
        if token.kind == "punct" and token.value == "(":
            self.next()
            if self.at_keyword("select"):
                subquery = self.select_statement()
                self.expect_punct(")")
                return ast.ScalarSubqueryExpr(subquery)
            expr = self.expression()
            self.expect_punct(")")
            return expr
        if token.kind in ("identifier", "keyword"):
            # function call?
            if self.peek(1).kind == "punct" and self.peek(1).value == "(":
                return self.function_call()
            self.next()
            parts = [token.value]
            while self.accept_punct("."):
                parts.append(self.expect_identifier())
            return ast.NameExpr(parts)
        raise ParseError(
            f"unexpected token {token.value!r} in expression", token.position
        )

    def case_expression(self) -> ast.CaseExpr:
        self.expect_keyword("case")
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self.accept_keyword("when"):
            condition = self.expression()
            self.expect_keyword("then")
            whens.append((condition, self.expression()))
        else_value: Optional[ast.Expr] = None
        if self.accept_keyword("else"):
            else_value = self.expression()
        self.expect_keyword("end")
        if not whens:
            raise ParseError("CASE requires at least one WHEN", self.peek().position)
        return ast.CaseExpr(whens, else_value)

    def function_call(self) -> ast.Expr:
        name = self.expect_identifier()
        self.expect_punct("(")
        distinct = self.accept_keyword("distinct")
        star = False
        args: list[ast.Expr] = []
        token = self.peek()
        if token.kind == "operator" and token.value == "*":
            self.next()
            star = True
        elif not (token.kind == "punct" and token.value == ")"):
            args.append(self.expression())
            while self.accept_punct(","):
                args.append(self.expression())
        self.expect_punct(")")
        return ast.FuncExpr(name, args, distinct=distinct, star=star)


def _numeric(text: str) -> float:
    if "." in text or "e" in text.lower():
        return float(text)
    return int(text)
