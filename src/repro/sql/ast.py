"""SQL abstract syntax tree nodes (pure syntax; binding happens later)."""

from __future__ import annotations

from typing import Any, Optional, Sequence


class Node:
    """Base AST node."""

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{k}={v!r}" for k, v in vars(self).items() if v is not None
        )
        return f"{type(self).__name__}({fields})"


# -- expressions ---------------------------------------------------------------

class Expr(Node):
    pass


class LiteralExpr(Expr):
    def __init__(self, value: Any):
        self.value = value


class NameExpr(Expr):
    """A possibly-qualified column name: parts like ('c', 'c_name')."""

    def __init__(self, parts: Sequence[str]):
        self.parts = tuple(parts)


class StarExpr(Expr):
    """``*`` or ``alias.*`` in a select list."""

    def __init__(self, qualifier: Optional[str] = None):
        self.qualifier = qualifier


class ParamExpr(Expr):
    def __init__(self, name: str):
        self.name = name


class UnaryExpr(Expr):
    def __init__(self, op: str, operand: Expr):
        self.op = op
        self.operand = operand


class BinaryExpr(Expr):
    def __init__(self, op: str, left: Expr, right: Expr):
        self.op = op
        self.left = left
        self.right = right


class NotExpr(Expr):
    def __init__(self, operand: Expr):
        self.operand = operand


class IsNullExpr(Expr):
    def __init__(self, operand: Expr, negated: bool = False):
        self.operand = operand
        self.negated = negated


class InExpr(Expr):
    """IN over a value list or a subquery."""

    def __init__(
        self,
        operand: Expr,
        items: Optional[Sequence[Expr]] = None,
        subquery: Optional["SelectStmt"] = None,
        negated: bool = False,
    ):
        self.operand = operand
        self.items = list(items) if items is not None else None
        self.subquery = subquery
        self.negated = negated


class BetweenExpr(Expr):
    def __init__(self, operand: Expr, low: Expr, high: Expr, negated: bool = False):
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated


class LikeExpr(Expr):
    def __init__(self, operand: Expr, pattern: Expr, negated: bool = False):
        self.operand = operand
        self.pattern = pattern
        self.negated = negated


class ExistsExpr(Expr):
    def __init__(self, subquery: "SelectStmt", negated: bool = False):
        self.subquery = subquery
        self.negated = negated


class ScalarSubqueryExpr(Expr):
    def __init__(self, subquery: "SelectStmt"):
        self.subquery = subquery


class FuncExpr(Expr):
    """Scalar function or aggregate call; ``star`` marks COUNT(*)."""

    def __init__(
        self,
        name: str,
        args: Sequence[Expr],
        distinct: bool = False,
        star: bool = False,
    ):
        self.name = name
        self.args = list(args)
        self.distinct = distinct
        self.star = star


class CaseExpr(Expr):
    """Searched CASE: WHEN cond THEN value ... [ELSE value] END."""

    def __init__(
        self,
        whens: Sequence[tuple[Expr, Expr]],
        else_value: Optional[Expr] = None,
    ):
        self.whens = list(whens)
        self.else_value = else_value


class ContainsExpr(Expr):
    """CONTAINS(column, 'query') or FREETEXT(column, 'text')."""

    def __init__(self, column: NameExpr, query_text: str, freetext: bool = False):
        self.column = column
        self.query_text = query_text
        #: FREETEXT: match any word, inflectional forms implied
        self.freetext = freetext


# -- table sources -----------------------------------------------------------------

class TableSource(Node):
    pass


class NamedTable(TableSource):
    """One- to four-part name, optional alias."""

    def __init__(self, parts: Sequence[str], alias: Optional[str] = None):
        self.parts = tuple(parts)
        self.alias = alias or self.parts[-1]


class DerivedTable(TableSource):
    """(SELECT ...) AS alias."""

    def __init__(self, subquery: "SelectStmt", alias: str):
        self.subquery = subquery
        self.alias = alias


class OpenRowsetSource(TableSource):
    """OPENROWSET('provider', 'datasource';'user';'password', 'query'|table)."""

    def __init__(
        self,
        provider: str,
        datasource: str,
        query_or_table: str,
        alias: str,
        user: str = "",
        password: str = "",
    ):
        self.provider = provider
        self.datasource = datasource
        self.query_or_table = query_or_table
        self.alias = alias
        self.user = user
        self.password = password


class OpenQuerySource(TableSource):
    """OPENQUERY(linked_server, 'native query')."""

    def __init__(self, server: str, query_text: str, alias: str):
        self.server = server
        self.query_text = query_text
        self.alias = alias


class MakeTableSource(TableSource):
    """MakeTable(Provider, path[, table]) — the paper's TVF (Section 2.4)."""

    def __init__(
        self,
        provider: str,
        path: str,
        table: Optional[str],
        alias: str,
    ):
        self.provider = provider
        self.path = path
        self.table = table
        self.alias = alias


class JoinSource(TableSource):
    """Explicit JOIN syntax."""

    def __init__(
        self,
        left: TableSource,
        right: TableSource,
        kind: str,
        condition: Optional[Expr],
    ):
        self.left = left
        self.right = right
        self.kind = kind  # "inner" | "left_outer" | "cross"
        self.condition = condition


# -- statements -----------------------------------------------------------------

class Statement(Node):
    pass


class SelectItem(Node):
    def __init__(self, expr: Expr, alias: Optional[str] = None):
        self.expr = expr
        self.alias = alias


class OrderItem(Node):
    def __init__(self, expr: Expr, ascending: bool = True):
        self.expr = expr
        self.ascending = ascending


class SelectStmt(Statement):
    def __init__(
        self,
        items: Sequence[SelectItem],
        sources: Sequence[TableSource],
        where: Optional[Expr] = None,
        group_by: Optional[Sequence[Expr]] = None,
        having: Optional[Expr] = None,
        order_by: Optional[Sequence[OrderItem]] = None,
        distinct: bool = False,
        top: Optional[int] = None,
        union_all: Optional[Sequence["SelectStmt"]] = None,
    ):
        self.items = list(items)
        self.sources = list(sources)
        self.where = where
        self.group_by = list(group_by) if group_by else []
        self.having = having
        self.order_by = list(order_by) if order_by else []
        self.distinct = distinct
        self.top = top
        #: further SELECTs combined with UNION ALL (partitioned views)
        self.union_all = list(union_all) if union_all else []


class InsertStmt(Statement):
    def __init__(
        self,
        table: NamedTable,
        columns: Optional[Sequence[str]],
        rows: Optional[Sequence[Sequence[Expr]]] = None,
        select: Optional[SelectStmt] = None,
    ):
        self.table = table
        self.columns = list(columns) if columns else None
        self.rows = [list(r) for r in rows] if rows else None
        self.select = select


class UpdateStmt(Statement):
    def __init__(
        self,
        table: NamedTable,
        assignments: Sequence[tuple[str, Expr]],
        where: Optional[Expr] = None,
    ):
        self.table = table
        self.assignments = list(assignments)
        self.where = where


class DeleteStmt(Statement):
    def __init__(self, table: NamedTable, where: Optional[Expr] = None):
        self.table = table
        self.where = where


class ColumnDefSyntax(Node):
    def __init__(
        self,
        name: str,
        type_name: str,
        type_arg: Optional[int] = None,
        not_null: bool = False,
        primary_key: bool = False,
        check: Optional[Expr] = None,
    ):
        self.name = name
        self.type_name = type_name
        self.type_arg = type_arg
        self.not_null = not_null
        self.primary_key = primary_key
        self.check = check


class CreateTableStmt(Statement):
    def __init__(
        self,
        table: NamedTable,
        columns: Sequence[ColumnDefSyntax],
        table_checks: Sequence[tuple[Optional[str], Expr]] = (),
    ):
        self.table = table
        self.columns = list(columns)
        #: (constraint name, expr) pairs for table-level CHECKs
        self.table_checks = list(table_checks)


class CreateIndexStmt(Statement):
    def __init__(
        self,
        index_name: str,
        table: NamedTable,
        columns: Sequence[str],
        unique: bool = False,
    ):
        self.index_name = index_name
        self.table = table
        self.columns = list(columns)
        self.unique = unique


class CreateViewStmt(Statement):
    def __init__(self, view: NamedTable, select_sql: str):
        self.view = view
        #: the raw SELECT text, stored for re-binding at use time
        self.select_sql = select_sql


class CreateDatabaseStmt(Statement):
    def __init__(self, name: str):
        self.name = name


class DropTableStmt(Statement):
    def __init__(self, table: NamedTable):
        self.table = table


class SetStmt(Statement):
    """``SET <option> ON|OFF``, ``SET <option> <integer>`` or
    ``SET <option> '<string>'`` — a session setting.

    The engine interprets the option name; the parser only validates
    the shape.  Recognized options are ``PARTIAL_RESULTS`` (boolean),
    ``PARALLEL_DOP`` (integer degree of parallelism) and ``WORKLOAD
    GROUP`` (string workload-group name, stored as
    ``workload_group``).
    """

    def __init__(self, option: str, value: "bool | int | str"):
        self.option = option.lower()
        self.value = value


class ExplainStmt(Statement):
    """EXPLAIN [ANALYZE] [VERBOSE] <select>, or the parenthesized
    option-list form ``EXPLAIN (ANALYZE, VERBOSE) <select>``.

    Plain EXPLAIN returns the chosen plan instead of rows; ANALYZE also
    executes the plan and annotates it with actual row counts and
    per-operator timings; VERBOSE appends memo/search statistics.
    """

    def __init__(
        self,
        select: SelectStmt,
        analyze: bool = False,
        verbose: bool = False,
    ):
        self.select = select
        self.analyze = analyze
        self.verbose = verbose
