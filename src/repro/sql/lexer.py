"""SQL lexer."""

from __future__ import annotations

import re

from repro.errors import LexerError

KEYWORDS = frozenset(
    """select from where group by having order asc desc top distinct as
    inner left right outer cross join on and or not null is in exists
    between like union all insert into values update set delete create
    table view index unique primary key check constraint database drop
    if contains freetext openrowset openquery maketable case when then
    else end with schemabinding default references foreign explain""".split()
)


class Token:
    __slots__ = ("kind", "value", "position")

    KINDS = (
        "keyword",
        "identifier",
        "number",
        "string",
        "operator",
        "punct",
        "parameter",
        "eof",
    )

    def __init__(self, kind: str, value: str, position: int):
        self.kind = kind
        self.value = value
        self.position = position

    def is_keyword(self, *words: str) -> bool:
        return self.kind == "keyword" and self.value.lower() in {
            w.lower() for w in words
        }

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


_PATTERNS = [
    ("ws", re.compile(r"\s+")),
    ("comment", re.compile(r"--[^\n]*")),
    ("block_comment", re.compile(r"/\*.*?\*/", re.DOTALL)),
    # windows-style paths may appear unquoted in MakeTable() per the paper
    ("path", re.compile(r"[A-Za-z]:[\\/][^\s,()']*")),
    ("number", re.compile(r"\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+|\d+(?:[eE][+-]?\d+)?")),
    ("string", re.compile(r"'(?:[^']|'')*'")),
    ("bracket_ident", re.compile(r"\[[^\]]*\]")),
    ("quoted_ident", re.compile(r'"[^"]*"')),
    ("parameter", re.compile(r"@[A-Za-z_][A-Za-z0-9_]*")),
    ("identifier", re.compile(r"[A-Za-z_#][A-Za-z0-9_$#]*")),
    ("operator", re.compile(r"<>|!=|<=|>=|=|<|>|\+|-|\*|/|%")),
    ("punct", re.compile(r"[(),.;:]")),
]


def tokenize_sql(text: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`LexerError` on junk."""
    tokens: list[Token] = []
    position = 0
    length = len(text)
    while position < length:
        for kind, pattern in _PATTERNS:
            match = pattern.match(text, position)
            if match is None:
                continue
            lexeme = match.group()
            if kind in ("ws", "comment", "block_comment"):
                pass
            elif kind == "number":
                tokens.append(Token("number", lexeme, position))
            elif kind == "string":
                # undouble embedded quotes
                inner = lexeme[1:-1].replace("''", "'")
                tokens.append(Token("string", inner, position))
            elif kind == "path":
                tokens.append(Token("string", lexeme, position))
            elif kind == "bracket_ident":
                tokens.append(Token("identifier", lexeme[1:-1], position))
            elif kind == "quoted_ident":
                tokens.append(Token("identifier", lexeme[1:-1], position))
            elif kind == "parameter":
                tokens.append(Token("parameter", lexeme, position))
            elif kind == "identifier":
                token_kind = (
                    "keyword" if lexeme.lower() in KEYWORDS else "identifier"
                )
                tokens.append(Token(token_kind, lexeme, position))
            else:
                tokens.append(Token(kind, lexeme, position))
            position = match.end()
            break
        else:
            raise LexerError(
                f"unexpected character {text[position]!r}", position
            )
    tokens.append(Token("eof", "", length))
    return tokens
