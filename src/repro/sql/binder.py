"""The algebrizer: AST → logical operator trees.

"At the beginning of optimization, both local and distributed queries
are algebrized in the same way" (Section 4.1.3): the binder resolves
names against the local catalog and linked servers, mints column
identities, expands views (including partitioned views into UNION ALL),
and — per Section 4.1.4 — unrolls EXISTS/IN subqueries into semi-joins
and anti-semi-joins.

The binder talks to the engine through the :class:`BindContext`
protocol so the SQL front end stays independent of the engine module.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Protocol, Sequence

from repro.algebra.expressions import (
    AggregateCall,
    BinaryOp,
    ColumnDef,
    ColumnId,
    ColumnRef,
    ContainsPredicate,
    FuncCall,
    InListOp,
    IsNullOp,
    LikeOp,
    Literal,
    NotOp,
    Parameter,
    ScalarExpr,
    ScalarSubquery,
    conjoin,
    conjuncts,
    AGGREGATE_NAMES,
)
from repro.algebra.logical import (
    Aggregate,
    Get,
    Join,
    JoinKind,
    LogicalOp,
    Project,
    ProviderRowset,
    Select,
    Sort,
    SortKeySpec,
    TableRef,
    Top,
    UnionAll,
    Values,
)
from repro.errors import BindError
from repro.oledb.datasource import DataSource
from repro.sql import ast
from repro.sql.parser import parse_sql
from repro.storage.catalog import Database, ViewDefinition
from repro.storage.table import Table
from repro.types.datatypes import varchar


class FullTextBinding:
    """Links a table to its relational full-text catalog (Figure 2)."""

    __slots__ = ("service", "catalog_name", "key_column", "text_column")

    def __init__(self, service: Any, catalog_name: str, key_column: str, text_column: str):
        self.service = service
        self.catalog_name = catalog_name
        self.key_column = key_column
        self.text_column = text_column

    def __repr__(self) -> str:
        return f"FullTextBinding({self.catalog_name}: {self.text_column})"


class BindContext(Protocol):
    """What the binder needs from the engine."""

    def local_database(self, name: Optional[str]) -> Database:
        ...

    def linked_server(self, name: str) -> Optional[Any]:
        """LinkedServer by name, or None."""
        ...

    def openrowset_datasource(
        self, provider: str, datasource: str, user: str, password: str
    ) -> DataSource:
        ...

    def maketable_datasource(self, provider_key: str) -> DataSource:
        ...

    def fulltext_binding(
        self, database: str, schema_name: str, table_name: str
    ) -> Optional[FullTextBinding]:
        ...

    def system_view(self, view_name: str) -> Optional[tuple]:
        """``sys.<view_name>`` as (columns, rows), or None if unknown."""
        ...


class ColumnRegistry:
    """Mints column identities and records their metadata."""

    def __init__(self) -> None:
        self._next = 1
        self.defs: Dict[ColumnId, ColumnDef] = {}

    def mint(
        self,
        name: str,
        type: Any,
        nullable: bool = True,
        source_alias: Optional[str] = None,
    ) -> ColumnDef:
        definition = ColumnDef(self._next, name, type, nullable, source_alias)
        self.defs[self._next] = definition
        self._next += 1
        return definition

    def ref(self, definition: ColumnDef) -> ColumnRef:
        return ColumnRef(
            definition.cid,
            f"{definition.source_alias}.{definition.name}"
            if definition.source_alias
            else definition.name,
            definition.type,
            definition.nullable,
        )


class Scope:
    """Name resolution scope: (alias, columns) pairs + optional outer."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.entries: list[tuple[str, list[ColumnDef]]] = []
        self.parent = parent

    def add(self, alias: str, columns: Sequence[ColumnDef]) -> None:
        if any(a.lower() == alias.lower() for a, __ in self.entries):
            raise BindError(f"duplicate table alias {alias!r}")
        self.entries.append((alias, list(columns)))

    def all_ids(self) -> frozenset[ColumnId]:
        ids = set()
        for __, columns in self.entries:
            ids.update(c.cid for c in columns)
        return frozenset(ids)

    def resolve(
        self, name: str, qualifier: Optional[str] = None
    ) -> ColumnDef:
        matches = []
        for alias, columns in self.entries:
            if qualifier is not None and alias.lower() != qualifier.lower():
                continue
            for column in columns:
                if column.name.lower() == name.lower():
                    matches.append(column)
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            target = f"{qualifier}.{name}" if qualifier else name
            raise BindError(f"column {target!r} is ambiguous")
        if self.parent is not None:
            return self.parent.resolve(name, qualifier)
        target = f"{qualifier}.{name}" if qualifier else name
        raise BindError(f"column {target!r} not found")

    def columns_of(self, qualifier: Optional[str]) -> list[ColumnDef]:
        if qualifier is None:
            out = []
            for __, columns in self.entries:
                out.extend(columns)
            return out
        for alias, columns in self.entries:
            if alias.lower() == qualifier.lower():
                return list(columns)
        raise BindError(f"unknown table alias {qualifier!r}")


class BoundQuery:
    """A fully bound query: logical tree + output metadata."""

    def __init__(
        self,
        root: LogicalOp,
        registry: ColumnRegistry,
        output_defs: Sequence[ColumnDef],
        parameters: frozenset[str],
    ):
        self.root = root
        self.registry = registry
        self.output_defs = list(output_defs)
        self.parameters = parameters

    @property
    def output_names(self) -> list[str]:
        return [d.name for d in self.output_defs]

    def __repr__(self) -> str:
        return f"BoundQuery({self.root!r} -> {self.output_names})"


class Binder:
    """Binds one statement; one instance per compilation."""

    def __init__(self, context: BindContext, default_database: Optional[str] = None):
        self.context = context
        self.default_database = default_database
        self.registry = ColumnRegistry()
        self.parameters: set[str] = set()
        self._derived_counter = 0

    # ==================================================================
    # entry point
    # ==================================================================
    def bind_select(self, stmt: ast.SelectStmt) -> BoundQuery:
        root, output_defs = self._bind_select_full(stmt, outer=None)
        return BoundQuery(
            root, self.registry, output_defs, frozenset(self.parameters)
        )

    def _bind_select_full(
        self, stmt: ast.SelectStmt, outer: Optional[Scope]
    ) -> tuple[LogicalOp, list[ColumnDef]]:
        root, output_defs = self._bind_core(stmt, outer)
        core_scope = self._last_scope
        if stmt.union_all:
            branches = [(root, output_defs)]
            for branch_stmt in stmt.union_all:
                branches.append(self._bind_core(branch_stmt, outer))
            root, output_defs = self._bind_union(branches)
            core_scope = None  # union output is the only sort scope
        # ORDER BY applies to the combined result
        if stmt.order_by:
            keys = []
            hidden_keys = False
            for item in stmt.order_by:
                cid = self._resolve_order_target(
                    item.expr, output_defs, core_scope
                )
                if cid not in {d.cid for d in output_defs}:
                    hidden_keys = True
                keys.append(SortKeySpec(cid, item.ascending))
            if hidden_keys and isinstance(root, Project):
                # T-SQL allows ordering by non-projected source columns:
                # sort beneath the projection (projection preserves order)
                root = Project(
                    Sort(root.child, keys), root.outputs, root.column_defs
                )
            else:
                root = Sort(root, keys)
        # TOP applies after ORDER BY
        if stmt.top is not None and (stmt.union_all or stmt.order_by):
            root = Top(root, stmt.top)
        return root, output_defs

    _last_scope: Optional[Scope] = None

    def _bind_union(
        self, branches: list[tuple[LogicalOp, list[ColumnDef]]]
    ) -> tuple[LogicalOp, list[ColumnDef]]:
        """UNION ALL: positional column matching, fresh output ids."""
        first_defs = branches[0][1]
        arity = len(first_defs)
        for __, defs in branches[1:]:
            if len(defs) != arity:
                raise BindError(
                    "UNION ALL branches have different column counts"
                )
        output_defs = []
        for position, definition in enumerate(first_defs):
            branch_types = [defs[position].type for __, defs in branches]
            merged = branch_types[0]
            for t in branch_types[1:]:
                from repro.types.datatypes import common_super_type

                merged = common_super_type(merged, t)
            nullable = any(defs[position].nullable for __, defs in branches)
            output_defs.append(
                self.registry.mint(definition.name, merged, nullable)
            )
        branch_maps = []
        for __, defs in branches:
            branch_maps.append(
                {
                    output_defs[position].cid: defs[position].cid
                    for position in range(arity)
                }
            )
        root = UnionAll(
            [tree for tree, __ in branches], output_defs, branch_maps
        )
        return root, output_defs

    def _resolve_order_target(
        self,
        expr: ast.Expr,
        output_defs: list[ColumnDef],
        scope: Optional[Scope] = None,
    ) -> ColumnId:
        """ORDER BY targets: output column/alias, 1-based ordinal, or a
        source column not in the output (T-SQL extension)."""
        if isinstance(expr, ast.LiteralExpr) and isinstance(expr.value, int):
            index = expr.value - 1
            if not 0 <= index < len(output_defs):
                raise BindError(f"ORDER BY ordinal {expr.value} out of range")
            return output_defs[index].cid
        if isinstance(expr, ast.NameExpr):
            name = expr.parts[-1]
            qualifier = expr.parts[-2] if len(expr.parts) > 1 else None
            for definition in output_defs:
                if definition.name.lower() == name.lower() and (
                    qualifier is None
                    or (definition.source_alias or "").lower() == qualifier.lower()
                ):
                    return definition.cid
            if scope is not None:
                return scope.resolve(name, qualifier).cid
            raise BindError(f"ORDER BY column {name!r} is not in the output")
        raise BindError("ORDER BY supports output columns and ordinals")

    # ==================================================================
    # core SELECT (no union / order)
    # ==================================================================
    def _bind_core(
        self, stmt: ast.SelectStmt, outer: Optional[Scope]
    ) -> tuple[LogicalOp, list[ColumnDef]]:
        scope = Scope(outer)
        self._last_scope = scope
        if stmt.sources:
            tree = self._bind_source_list(stmt.sources, scope)
        else:
            tree = Values([()], [])  # single empty row: SELECT 1+1
        # WHERE (with subquery unrolling)
        if stmt.where is not None:
            tree = self._apply_where(tree, stmt.where, scope)
        # detect aggregation
        has_aggregates = any(
            self._contains_aggregate(item.expr) for item in stmt.items
        ) or (stmt.having is not None and self._contains_aggregate(stmt.having))
        if stmt.group_by or has_aggregates:
            tree, output_defs = self._bind_aggregation(stmt, tree, scope)
        else:
            tree, output_defs = self._bind_plain_projection(stmt, tree, scope)
        if stmt.distinct:
            tree = Aggregate(tree, tuple(d.cid for d in output_defs), ())
        if stmt.top is not None and not stmt.union_all and not stmt.order_by:
            tree = Top(tree, stmt.top)
        return tree, output_defs

    @staticmethod
    def _contains_aggregate(expr: ast.Expr) -> bool:
        """Does an AST expression contain an aggregate call?"""
        if isinstance(expr, ast.FuncExpr):
            if expr.name.lower() in AGGREGATE_NAMES:
                return True
            return any(Binder._contains_aggregate(a) for a in expr.args)
        if isinstance(expr, ast.BinaryExpr):
            return Binder._contains_aggregate(
                expr.left
            ) or Binder._contains_aggregate(expr.right)
        if isinstance(expr, (ast.NotExpr, ast.UnaryExpr)):
            return Binder._contains_aggregate(expr.operand)
        if isinstance(expr, ast.IsNullExpr):
            return Binder._contains_aggregate(expr.operand)
        if isinstance(expr, ast.LikeExpr):
            return Binder._contains_aggregate(
                expr.operand
            ) or Binder._contains_aggregate(expr.pattern)
        if isinstance(expr, ast.BetweenExpr):
            return (
                Binder._contains_aggregate(expr.operand)
                or Binder._contains_aggregate(expr.low)
                or Binder._contains_aggregate(expr.high)
            )
        if isinstance(expr, ast.InExpr) and expr.items is not None:
            return Binder._contains_aggregate(expr.operand) or any(
                Binder._contains_aggregate(i) for i in expr.items
            )
        if isinstance(expr, ast.CaseExpr):
            parts = [c for pair in expr.whens for c in pair]
            if expr.else_value is not None:
                parts.append(expr.else_value)
            return any(Binder._contains_aggregate(p) for p in parts)
        return False

    # ------------------------------------------------------------------
    # sources
    # ------------------------------------------------------------------
    def _bind_source_list(
        self, sources: Sequence[ast.TableSource], scope: Scope
    ) -> LogicalOp:
        tree: Optional[LogicalOp] = None
        for source in sources:
            node = self._bind_source(source, scope)
            tree = node if tree is None else Join(tree, node, JoinKind.CROSS)
        assert tree is not None
        return tree

    def _bind_source(self, source: ast.TableSource, scope: Scope) -> LogicalOp:
        if isinstance(source, ast.NamedTable):
            return self._bind_named_table(source, scope)
        if isinstance(source, ast.DerivedTable):
            return self._bind_derived(source, scope)
        if isinstance(source, ast.JoinSource):
            return self._bind_join(source, scope)
        if isinstance(source, ast.OpenRowsetSource):
            return self._bind_openrowset(source, scope)
        if isinstance(source, ast.OpenQuerySource):
            return self._bind_openquery(source, scope)
        if isinstance(source, ast.MakeTableSource):
            return self._bind_maketable(source, scope)
        raise BindError(f"unsupported table source {type(source).__name__}")

    def _bind_join(self, source: ast.JoinSource, scope: Scope) -> LogicalOp:
        left = self._bind_source(source.left, scope)
        right = self._bind_source(source.right, scope)
        kind = {
            "inner": JoinKind.INNER,
            "left_outer": JoinKind.LEFT_OUTER,
            "cross": JoinKind.CROSS,
        }[source.kind]
        condition = (
            self._bind_expr(source.condition, scope)
            if source.condition is not None
            else None
        )
        return Join(left, right, kind, condition)

    def _bind_named_table(
        self, source: ast.NamedTable, scope: Scope
    ) -> LogicalOp:
        parts = [p for p in source.parts]
        alias = source.alias
        # four-part: server.database.schema.table
        if len(parts) == 4:
            server_name, database, schema_name, table_name = parts
            server = self.context.linked_server(server_name)
            if server is None:
                raise BindError(f"unknown linked server {server_name!r}")
            return self._bind_remote_table(
                server, database or None, schema_name or "dbo", table_name, alias, scope
            )
        database: Optional[str] = None
        schema_name = "dbo"
        if len(parts) == 3:
            database, schema_name, table_name = parts
            schema_name = schema_name or "dbo"
        elif len(parts) == 2:
            schema_name, table_name = parts
        else:
            (table_name,) = parts
        if (
            database is None
            and schema_name.lower() == "sys"
            and hasattr(self.context, "system_view")
        ):
            bound = self._bind_system_view(table_name, alias, scope)
            if bound is not None:
                return bound
        db = self.context.local_database(database or self.default_database)
        table = db.maybe_table(table_name, schema_name)
        if table is not None:
            return self._bind_local_table(
                db, schema_name, table, alias, scope
            )
        view = db.maybe_view(table_name, schema_name)
        if view is not None:
            return self._bind_view(view, alias, scope)
        raise BindError(
            f"table or view {schema_name}.{table_name} not found"
        )

    def _bind_system_view(
        self, view_name: str, alias: str, scope: Scope
    ) -> Optional[LogicalOp]:
        """Bind ``sys.<view_name>`` as a constant table: rows are
        materialized at bind time, so the query sees a DMV-style
        snapshot of the instance's current state."""
        resolved = self.context.system_view(view_name)
        if resolved is None:
            return None
        columns, rows = resolved
        column_defs = [
            self.registry.mint(name, type_, True, alias)
            for name, type_ in columns
        ]
        literal_rows = [
            [Literal(value, d.type) for value, d in zip(row, column_defs)]
            for row in rows
        ]
        scope.add(alias, column_defs)
        return Values(literal_rows, column_defs)

    def _bind_local_table(
        self,
        database: Database,
        schema_name: str,
        table: Table,
        alias: str,
        scope: Scope,
    ) -> LogicalOp:
        column_defs = [
            self.registry.mint(c.name, c.type, c.nullable, alias)
            for c in table.schema
        ]
        check_domains = {
            constraint.column_name.lower(): constraint.domain
            for constraint in table.check_constraints()
            if constraint.column_name and constraint.domain is not None
        }
        fulltext = self.context.fulltext_binding(
            database.name, schema_name, table.name
        )
        ref = TableRef(
            table.name,
            alias,
            column_defs,
            database=database.name,
            schema_name=schema_name,
            local_table=table,
            check_domains=check_domains,
            fulltext=fulltext,
        )
        scope.add(alias, column_defs)
        return Get(ref)

    def _bind_remote_table(
        self,
        server: Any,
        database: Optional[str],
        schema_name: str,
        table_name: str,
        alias: str,
        scope: Scope,
    ) -> LogicalOp:
        info = server.table_info(table_name, database)
        column_defs = [
            self.registry.mint(c.name, c.type, c.nullable, alias)
            for c in info.schema
        ]
        ref = TableRef(
            info.table_name,
            alias,
            column_defs,
            server=server.name,
            database=database,
            schema_name=schema_name,
            provider=server,
            remote_info=info,
            check_domains=dict(info.check_domains),
        )
        scope.add(alias, column_defs)
        return Get(ref)

    def _bind_view(
        self, view: ViewDefinition, alias: str, scope: Scope
    ) -> LogicalOp:
        stmt = parse_sql(view.sql_text)
        if not isinstance(stmt, ast.SelectStmt):
            raise BindError(f"view {view.name} body is not a SELECT")
        root, output_defs = self._bind_select_full(stmt, outer=None)
        # re-alias the view's outputs under the use-site alias
        aliased = [
            ColumnDef(d.cid, d.name, d.type, d.nullable, alias)
            for d in output_defs
        ]
        for definition in aliased:
            self.registry.defs[definition.cid] = definition
        scope.add(alias, aliased)
        return root

    def _bind_derived(
        self, source: ast.DerivedTable, scope: Scope
    ) -> LogicalOp:
        root, output_defs = self._bind_select_full(source.subquery, outer=None)
        aliased = [
            ColumnDef(d.cid, d.name, d.type, d.nullable, source.alias)
            for d in output_defs
        ]
        for definition in aliased:
            self.registry.defs[definition.cid] = definition
        scope.add(source.alias, aliased)
        return root

    def _bind_openrowset(
        self, source: ast.OpenRowsetSource, scope: Scope
    ) -> LogicalOp:
        datasource = self.context.openrowset_datasource(
            source.provider, source.datasource, source.user, source.password
        )
        is_query = " " in source.query_or_table.strip()
        session = datasource.create_session()
        if is_query:
            command = session.create_command()
            command.set_text(source.query_or_table)
            schema = _describe_command(command)
            node_args = {"command_text": source.query_or_table}
        else:
            rowset = session.open_rowset(source.query_or_table)
            schema = rowset.schema
            node_args = {"rowset_name": source.query_or_table}
        column_defs = [
            self.registry.mint(c.name, c.type, c.nullable, source.alias)
            for c in schema
        ]
        scope.add(source.alias, column_defs)
        return ProviderRowset(
            f"OPENROWSET({source.provider})",
            datasource,
            column_defs,
            **node_args,
        )

    def _bind_openquery(
        self, source: ast.OpenQuerySource, scope: Scope
    ) -> LogicalOp:
        server = self.context.linked_server(source.server)
        if server is None:
            raise BindError(f"unknown linked server {source.server!r}")
        session = server.create_session()
        command = session.create_command()
        command.set_text(source.query_text)
        schema = _describe_command(command)
        column_defs = [
            self.registry.mint(c.name, c.type, c.nullable, source.alias)
            for c in schema
        ]
        scope.add(source.alias, column_defs)
        return ProviderRowset(
            f"OPENQUERY({source.server})",
            server.datasource,
            column_defs,
            command_text=source.query_text,
        )

    def _bind_maketable(
        self, source: ast.MakeTableSource, scope: Scope
    ) -> LogicalOp:
        datasource = self.context.maketable_datasource(source.provider)
        session = datasource.create_session()
        rowset_name = source.table if source.table else source.path
        rowset = session.open_rowset(rowset_name, path=source.path)
        column_defs = [
            self.registry.mint(c.name, c.type, c.nullable, source.alias)
            for c in rowset.schema
        ]
        scope.add(source.alias, column_defs)
        return ProviderRowset(
            f"MakeTable({source.provider})",
            datasource,
            column_defs,
            rowset_name=rowset_name,
        )

    # ------------------------------------------------------------------
    # WHERE + subquery unrolling
    # ------------------------------------------------------------------
    def _apply_where(
        self, tree: LogicalOp, where: ast.Expr, scope: Scope
    ) -> LogicalOp:
        plain: list[ScalarExpr] = []
        for conjunct in _ast_conjuncts(where):
            if isinstance(conjunct, ast.ExistsExpr):
                tree = self._bind_exists(tree, conjunct, scope, negated=False)
            elif isinstance(conjunct, ast.NotExpr) and isinstance(
                conjunct.operand, ast.ExistsExpr
            ):
                tree = self._bind_exists(
                    tree, conjunct.operand, scope, negated=True
                )
            elif isinstance(conjunct, ast.InExpr) and conjunct.subquery is not None:
                tree = self._bind_in_subquery(tree, conjunct, scope)
            else:
                plain.append(self._bind_expr(conjunct, scope))
        predicate = conjoin(plain)
        if predicate is not None:
            tree = Select(tree, predicate)
        return tree

    def _bind_exists(
        self,
        tree: LogicalOp,
        exists: ast.ExistsExpr,
        scope: Scope,
        negated: bool,
    ) -> LogicalOp:
        """EXISTS → semi-join; NOT EXISTS → anti-semi-join (Section 4.1.4)."""
        inner_scope = Scope(parent=scope)
        subquery = exists.subquery
        inner_tree = self._bind_source_list(subquery.sources, inner_scope)
        inner_ids = inner_scope.all_ids()
        inner_only: list[ScalarExpr] = []
        correlated: list[ScalarExpr] = []
        if subquery.where is not None:
            for conjunct in _ast_conjuncts(subquery.where):
                bound = self._bind_expr(conjunct, inner_scope)
                if bound.references() <= inner_ids:
                    inner_only.append(bound)
                else:
                    correlated.append(bound)
        inner_pred = conjoin(inner_only)
        if inner_pred is not None:
            inner_tree = Select(inner_tree, inner_pred)
        kind = JoinKind.ANTI_SEMI if (negated or exists.negated) else JoinKind.SEMI
        return Join(tree, inner_tree, kind, conjoin(correlated))

    def _bind_in_subquery(
        self, tree: LogicalOp, in_expr: ast.InExpr, scope: Scope
    ) -> LogicalOp:
        """``x IN (SELECT y FROM ...)`` → semi-join on x = y."""
        assert in_expr.subquery is not None
        subquery = in_expr.subquery
        if len(subquery.items) != 1 or isinstance(
            subquery.items[0].expr, ast.StarExpr
        ):
            raise BindError("IN subquery must select exactly one column")
        inner_scope = Scope(parent=scope)
        inner_tree = self._bind_source_list(subquery.sources, inner_scope)
        inner_ids = inner_scope.all_ids()
        inner_only: list[ScalarExpr] = []
        correlated: list[ScalarExpr] = []
        if subquery.where is not None:
            for conjunct in _ast_conjuncts(subquery.where):
                bound = self._bind_expr(conjunct, inner_scope)
                if bound.references() <= inner_ids:
                    inner_only.append(bound)
                else:
                    correlated.append(bound)
        inner_pred = conjoin(inner_only)
        if inner_pred is not None:
            inner_tree = Select(inner_tree, inner_pred)
        operand = self._bind_expr(in_expr.operand, scope)
        item = self._bind_expr(subquery.items[0].expr, inner_scope)
        condition = conjoin([BinaryOp("=", operand, item)] + correlated)
        kind = JoinKind.ANTI_SEMI if in_expr.negated else JoinKind.SEMI
        return Join(tree, inner_tree, kind, condition)

    # ------------------------------------------------------------------
    # projection & aggregation
    # ------------------------------------------------------------------
    def _bind_plain_projection(
        self, stmt: ast.SelectStmt, tree: LogicalOp, scope: Scope
    ) -> tuple[LogicalOp, list[ColumnDef]]:
        outputs: list[tuple[ColumnId, ScalarExpr]] = []
        output_defs: list[ColumnDef] = []
        for item in stmt.items:
            if isinstance(item.expr, ast.StarExpr):
                for definition in scope.columns_of(item.expr.qualifier):
                    outputs.append(
                        (definition.cid, self.registry.ref(definition))
                    )
                    output_defs.append(definition)
                continue
            bound = self._bind_expr(item.expr, scope)
            if isinstance(bound, ColumnRef) and item.alias is None:
                definition = self.registry.defs[bound.cid]
                outputs.append((definition.cid, bound))
                output_defs.append(definition)
            else:
                name = item.alias or _default_name(item.expr, len(outputs))
                definition = self.registry.mint(name, bound.type)
                outputs.append((definition.cid, bound))
                output_defs.append(definition)
        return Project(tree, outputs, output_defs), output_defs

    def _bind_aggregation(
        self, stmt: ast.SelectStmt, tree: LogicalOp, scope: Scope
    ) -> tuple[LogicalOp, list[ColumnDef]]:
        # 1. group keys: plain columns pass through; exprs pre-projected
        group_key_cids: list[ColumnId] = []
        group_key_exprs: list[tuple[ScalarExpr, ColumnDef]] = []
        pre_outputs: Optional[list[tuple[ColumnId, ScalarExpr]]] = None
        for group_expr in stmt.group_by:
            bound = self._bind_expr(group_expr, scope)
            if isinstance(bound, ColumnRef):
                group_key_cids.append(bound.cid)
                group_key_exprs.append(
                    (bound, self.registry.defs[bound.cid])
                )
            else:
                definition = self.registry.mint(
                    _default_name(group_expr, len(group_key_cids)), bound.type
                )
                group_key_cids.append(definition.cid)
                group_key_exprs.append((bound, definition))
        computed = [
            (d.cid, e) for e, d in group_key_exprs if not isinstance(e, ColumnRef)
        ]
        if computed:
            # pre-project: all input columns + computed group keys
            passthrough = [
                (cid, self.registry.ref(self.registry.defs[cid]))
                for cid in tree.output_ids()
            ]
            pre_outputs = passthrough + computed
            pre_defs = [self.registry.defs[cid] for cid, __ in pre_outputs]
            tree = Project(tree, pre_outputs, pre_defs)
        # 2. collect aggregate calls from items + having
        self._aggregate_map: Dict[tuple, ColumnDef] = {}
        aggregates: list[AggregateCall] = []

        def register_aggregate(func_expr: ast.FuncExpr) -> ColumnDef:
            argument = (
                None
                if func_expr.star
                else self._bind_expr(func_expr.args[0], scope)
            )
            key = (
                func_expr.name.lower(),
                func_expr.distinct,
                argument.sql_key() if argument is not None else None,
            )
            if key in self._aggregate_map:
                return self._aggregate_map[key]
            definition = self.registry.mint(
                _aggregate_name(func_expr), _aggregate_type(func_expr, argument)
            )
            call = AggregateCall(
                func_expr.name,
                argument,
                definition.cid,
                definition.name,
                func_expr.distinct,
            )
            aggregates.append(call)
            self._aggregate_map[key] = definition
            return definition

        self._register_aggregate = register_aggregate
        # bind select items with aggregate replacement; expressions that
        # structurally match a GROUP BY expression resolve to its key
        group_expr_keys = {
            expr.sql_key(): definition
            for expr, definition in group_key_exprs
        }
        outputs: list[tuple[ColumnId, ScalarExpr]] = []
        output_defs: list[ColumnDef] = []
        group_cid_set = set(group_key_cids)
        for item in stmt.items:
            if isinstance(item.expr, ast.StarExpr):
                raise BindError("SELECT * is invalid with GROUP BY")
            bound = self._bind_expr(item.expr, scope, in_aggregation=True)
            if bound.sql_key() in group_expr_keys:
                definition = group_expr_keys[bound.sql_key()]
                bound = self.registry.ref(definition)
            if isinstance(bound, ColumnRef) and item.alias is None:
                if (
                    bound.cid not in group_cid_set
                    and bound.cid
                    not in {d.cid for d in self._aggregate_map.values()}
                ):
                    raise BindError(
                        f"column {bound.display!r} must appear in GROUP BY "
                        "or inside an aggregate"
                    )
                definition = self.registry.defs[bound.cid]
                outputs.append((definition.cid, bound))
                output_defs.append(definition)
            else:
                refs = bound.references()
                allowed = group_cid_set | {
                    d.cid for d in self._aggregate_map.values()
                }
                if not refs <= allowed:
                    raise BindError(
                        "select expression mixes grouped and ungrouped columns"
                    )
                name = item.alias or _default_name(item.expr, len(outputs))
                definition = self.registry.mint(name, bound.type)
                outputs.append((definition.cid, bound))
                output_defs.append(definition)
        having_expr = (
            self._bind_expr(stmt.having, scope, in_aggregation=True)
            if stmt.having is not None
            else None
        )
        self._register_aggregate = None
        tree = Aggregate(tree, tuple(group_key_cids), tuple(aggregates))
        if having_expr is not None:
            tree = Select(tree, having_expr)
        tree = Project(tree, outputs, output_defs)
        return tree, output_defs

    # ------------------------------------------------------------------
    # scalar expressions
    # ------------------------------------------------------------------
    def _bind_expr(
        self,
        expr: ast.Expr,
        scope: Scope,
        in_aggregation: bool = False,
    ) -> ScalarExpr:
        if isinstance(expr, ast.LiteralExpr):
            return Literal(expr.value)
        if isinstance(expr, ast.ParamExpr):
            self.parameters.add(expr.name.lstrip("@"))
            return Parameter(expr.name)
        if isinstance(expr, ast.NameExpr):
            name = expr.parts[-1]
            qualifier = expr.parts[-2] if len(expr.parts) > 1 else None
            definition = scope.resolve(name, qualifier)
            return self.registry.ref(definition)
        if isinstance(expr, ast.UnaryExpr):
            operand = self._bind_expr(expr.operand, scope, in_aggregation)
            return BinaryOp("-", Literal(0), operand)
        if isinstance(expr, ast.BinaryExpr):
            return BinaryOp(
                expr.op,
                self._bind_expr(expr.left, scope, in_aggregation),
                self._bind_expr(expr.right, scope, in_aggregation),
            )
        if isinstance(expr, ast.NotExpr):
            return NotOp(self._bind_expr(expr.operand, scope, in_aggregation))
        if isinstance(expr, ast.IsNullExpr):
            return IsNullOp(
                self._bind_expr(expr.operand, scope, in_aggregation),
                expr.negated,
            )
        if isinstance(expr, ast.InExpr):
            if expr.subquery is not None:
                raise BindError(
                    "IN subqueries are supported only as top-level WHERE "
                    "conjuncts"
                )
            assert expr.items is not None
            return InListOp(
                self._bind_expr(expr.operand, scope, in_aggregation),
                [self._bind_expr(i, scope, in_aggregation) for i in expr.items],
                expr.negated,
            )
        if isinstance(expr, ast.BetweenExpr):
            operand = self._bind_expr(expr.operand, scope, in_aggregation)
            low = self._bind_expr(expr.low, scope, in_aggregation)
            high = self._bind_expr(expr.high, scope, in_aggregation)
            between = BinaryOp(
                "AND",
                BinaryOp(">=", operand, low),
                BinaryOp("<=", operand, high),
            )
            return NotOp(between) if expr.negated else between
        if isinstance(expr, ast.LikeExpr):
            return LikeOp(
                self._bind_expr(expr.operand, scope, in_aggregation),
                self._bind_expr(expr.pattern, scope, in_aggregation),
                expr.negated,
            )
        if isinstance(expr, ast.ContainsExpr):
            column = self._bind_expr(expr.column, scope)
            if not isinstance(column, ColumnRef):
                raise BindError("CONTAINS requires a column reference")
            query_text = expr.query_text
            if expr.freetext:
                # FREETEXT: any word matches, inflectional forms implied
                from repro.fulltext.tokenizer import tokenize

                words = tokenize(query_text)
                if not words:
                    raise BindError("FREETEXT requires at least one word")
                query_text = " OR ".join(
                    f"FORMSOF(INFLECTIONAL, {word})" for word in words
                )
            return ContainsPredicate(column, query_text)
        if isinstance(expr, ast.FuncExpr):
            if expr.name.lower() in AGGREGATE_NAMES:
                if not in_aggregation or self._register_aggregate is None:
                    raise BindError(
                        f"aggregate {expr.name} is not allowed here"
                    )
                definition = self._register_aggregate(expr)
                return self.registry.ref(definition)
            return FuncCall(
                expr.name,
                [self._bind_expr(a, scope, in_aggregation) for a in expr.args],
            )
        if isinstance(expr, ast.CaseExpr):
            return self._bind_case(expr, scope, in_aggregation)
        if isinstance(expr, ast.ExistsExpr):
            raise BindError(
                "EXISTS is supported only as a top-level WHERE conjunct"
            )
        if isinstance(expr, ast.ScalarSubqueryExpr):
            inner = Binder(self.context, self.default_database)
            inner.registry = self.registry  # share column id space
            bound = inner._bind_select_full(expr.subquery, outer=None)
            root, output_defs = bound
            if len(output_defs) != 1:
                raise BindError("scalar subquery must return one column")
            self.parameters.update(inner.parameters)
            return ScalarSubquery(root, output_defs[0].type)
        if isinstance(expr, ast.StarExpr):
            raise BindError("* is only valid in a select list")
        raise BindError(f"unsupported expression {type(expr).__name__}")

    _register_aggregate = None

    def _bind_case(
        self, expr: ast.CaseExpr, scope: Scope, in_aggregation: bool
    ) -> ScalarExpr:
        """Bind searched CASE into a dedicated expression node."""
        bound_parts: list[ScalarExpr] = []
        for condition, value in expr.whens:
            bound_parts.append(self._bind_expr(condition, scope, in_aggregation))
            bound_parts.append(self._bind_expr(value, scope, in_aggregation))
        if expr.else_value is not None:
            bound_parts.append(
                self._bind_expr(expr.else_value, scope, in_aggregation)
            )
        return _CaseExprNode(bound_parts, expr.else_value is not None)


class _CaseExprNode(ScalarExpr):
    """Searched CASE over pre-bound (condition, value) pairs."""

    def __init__(self, parts: list[ScalarExpr], has_else: bool):
        self.parts = tuple(parts)
        self.has_else = has_else
        value_exprs = [self.parts[i] for i in range(1, len(self.parts), 2)]
        self.type = value_exprs[0].type if value_exprs else varchar()

    def children(self) -> tuple[ScalarExpr, ...]:
        return self.parts

    def references(self):
        refs = frozenset()
        for part in self.parts:
            refs |= part.references()
        return refs

    def compile(self, layout):
        pair_count = (len(self.parts) - (1 if self.has_else else 0)) // 2
        compiled = [part.compile(layout) for part in self.parts]
        has_else = self.has_else

        def evaluate(row, params):
            for i in range(pair_count):
                if compiled[2 * i](row, params) is True:
                    return compiled[2 * i + 1](row, params)
            if has_else:
                return compiled[-1](row, params)
            return None

        return evaluate

    def substitute(self, mapping):
        return _CaseExprNode(
            [part.substitute(mapping) for part in self.parts], self.has_else
        )

    def sql_key(self) -> tuple:
        return ("case", self.has_else, tuple(p.sql_key() for p in self.parts))

    def __repr__(self) -> str:
        return f"Case({len(self.parts)} parts)"


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def _ast_conjuncts(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.BinaryExpr) and expr.op.upper() == "AND":
        return _ast_conjuncts(expr.left) + _ast_conjuncts(expr.right)
    return [expr]


def _default_name(expr: ast.Expr, index: int) -> str:
    if isinstance(expr, ast.NameExpr):
        return expr.parts[-1]
    if isinstance(expr, ast.FuncExpr):
        return expr.name.lower()
    return f"expr{index + 1}"


def _aggregate_name(expr: ast.FuncExpr) -> str:
    if expr.star:
        return f"{expr.name.lower()}_star"
    return expr.name.lower()


def _aggregate_type(expr: ast.FuncExpr, argument: Optional[ScalarExpr]):
    from repro.types.datatypes import FLOAT, INT

    name = expr.name.lower()
    if name == "count":
        return INT
    if name == "avg":
        return FLOAT
    if argument is not None:
        return argument.type
    return FLOAT


def _describe_command(command: Any):
    """Schema of a command's result without (or with one) execution."""
    describe = getattr(command, "describe", None)
    if describe is not None:
        try:
            schema = describe()
            if schema is not None:
                return schema
        except NotImplementedError:
            pass
    # fall back: execute once and look at the schema (results discarded)
    return command.execute().schema
