"""Equi-depth histograms.

Modeled on SQL Server's statistics objects: each bucket records an
upper-bound key, the number of rows equal to that key, the number of
rows strictly inside the bucket (below the bound, above the previous
bound), and the number of distinct values inside.  Histograms are built
from a sample of column values and support estimation of equality and
range selectivities.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

from repro.types.intervals import Interval, IntervalSet, SortKey, _cmp


class HistogramBucket:
    """One step of an equi-depth histogram."""

    __slots__ = ("upper_bound", "equal_rows", "range_rows", "distinct_range")

    def __init__(
        self,
        upper_bound: Any,
        equal_rows: float,
        range_rows: float,
        distinct_range: float,
    ):
        self.upper_bound = upper_bound
        self.equal_rows = equal_rows
        self.range_rows = range_rows
        self.distinct_range = distinct_range

    def __repr__(self) -> str:
        return (
            f"Bucket(<= {self.upper_bound!r}: eq={self.equal_rows}, "
            f"range={self.range_rows}, distinct={self.distinct_range})"
        )


class Histogram:
    """An equi-depth histogram over one column.

    ``null_rows`` counts NULLs, which live outside all buckets (SQL
    comparisons never select them).
    """

    def __init__(self, buckets: Sequence[HistogramBucket], null_rows: float = 0.0):
        self.buckets = list(buckets)
        self.null_rows = float(null_rows)

    # -- construction ----------------------------------------------------
    @staticmethod
    def build(values: Iterable[Any], max_buckets: int = 32) -> "Histogram":
        """Build an equi-depth histogram from raw column values."""
        non_null = []
        null_rows = 0
        for v in values:
            if v is None:
                null_rows += 1
            else:
                non_null.append(v)
        if not non_null:
            return Histogram([], null_rows)
        non_null.sort(key=SortKey)
        # group into runs of equal values
        runs: list[tuple[Any, int]] = []
        for v in non_null:
            if runs and _cmp(runs[-1][0], v) == 0:
                runs[-1] = (runs[-1][0], runs[-1][1] + 1)
            else:
                runs.append((v, 1))
        target_depth = max(1, len(non_null) // max(1, max_buckets))
        buckets: list[HistogramBucket] = []
        range_rows = 0
        distinct_range = 0
        for value, count in runs:
            # a run closes a bucket when accumulated depth is reached or
            # it is the last run
            if range_rows + count >= target_depth or (value, count) == runs[-1]:
                buckets.append(
                    HistogramBucket(value, count, range_rows, distinct_range)
                )
                range_rows = 0
                distinct_range = 0
            else:
                range_rows += count
                distinct_range += 1
        return Histogram(buckets, null_rows)

    # -- basic facts -----------------------------------------------------
    @property
    def total_rows(self) -> float:
        return (
            sum(b.equal_rows + b.range_rows for b in self.buckets) + self.null_rows
        )

    @property
    def distinct_count(self) -> float:
        return sum(1 + b.distinct_range for b in self.buckets)

    @property
    def min_value(self) -> Optional[Any]:
        if not self.buckets:
            return None
        return self.buckets[0].upper_bound

    @property
    def max_value(self) -> Optional[Any]:
        if not self.buckets:
            return None
        return self.buckets[-1].upper_bound

    # -- estimation -------------------------------------------------------
    def estimate_equal(self, value: Any) -> float:
        """Estimated number of rows equal to ``value``."""
        if value is None or not self.buckets:
            return 0.0
        prev_bound: Any = None
        for bucket in self.buckets:
            c = _cmp(value, bucket.upper_bound)
            if c == 0:
                return float(bucket.equal_rows)
            if c < 0:
                if prev_bound is not None and _cmp(value, prev_bound) <= 0:
                    return 0.0
                if bucket.distinct_range > 0:
                    return bucket.range_rows / bucket.distinct_range
                return 0.0
            prev_bound = bucket.upper_bound
        return 0.0

    def estimate_interval(self, interval: Interval) -> float:
        """Estimated number of rows whose value falls in ``interval``."""
        if not self.buckets or interval.is_empty():
            return 0.0
        total = 0.0
        prev_bound: Any = None
        for bucket in self.buckets:
            if bucket.upper_bound is not None and interval.contains(
                bucket.upper_bound
            ):
                total += bucket.equal_rows
            total += bucket.range_rows * self._range_fraction(
                prev_bound, bucket.upper_bound, interval
            )
            prev_bound = bucket.upper_bound
        return total

    def estimate_interval_set(self, domain: IntervalSet) -> float:
        """Estimated rows matching a disjoint interval set."""
        if domain.is_full():
            return self.total_rows - self.null_rows
        return sum(self.estimate_interval(iv) for iv in domain.intervals)

    @staticmethod
    def _range_fraction(low: Any, high: Any, interval: Interval) -> float:
        """Fraction of the open range (low, high) covered by ``interval``.

        Uses linear interpolation for numeric bounds and a coarse
        contains-check otherwise.
        """
        if low is None:
            # first bucket has no interior by construction
            return 0.0
        bucket_iv = Interval(low, high, False, False)
        overlap = bucket_iv.intersect(interval)
        if overlap.is_empty():
            return 0.0
        if isinstance(low, (int, float)) and isinstance(high, (int, float)):
            span = float(high) - float(low)
            if span <= 0:
                return 0.0
            o_low = low if not isinstance(overlap.low, (int, float)) else overlap.low
            o_high = (
                high if not isinstance(overlap.high, (int, float)) else overlap.high
            )
            o_low = max(float(o_low), float(low))
            o_high = min(float(o_high), float(high))
            return max(0.0, min(1.0, (o_high - o_low) / span))
        # non-numeric: assume the whole interior qualifies
        return 1.0

    def __repr__(self) -> str:
        return f"Histogram({len(self.buckets)} buckets, {self.total_rows:.0f} rows)"
