"""Selectivity estimation helpers shared by the optimizer.

When a histogram is available (local table, or a remote source that
exposes histogram rowsets per Section 3.2.4), estimates come from the
histogram; otherwise the classic System-R magic constants apply.  The
gap between the two is exactly what experiment E11 measures.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.stats.table_stats import ColumnStatistics
from repro.types.intervals import IntervalSet

#: default selectivity of ``col = const`` when no statistics exist
DEFAULT_EQUALITY_SELECTIVITY = 0.1
#: default selectivity of a range predicate when no statistics exist
DEFAULT_RANGE_SELECTIVITY = 0.3


def estimate_comparison_selectivity(
    op: str,
    value: Any,
    stats: Optional[ColumnStatistics],
    table_rows: float,
) -> float:
    """Selectivity of ``column <op> value`` in [0, 1]."""
    if table_rows <= 0:
        return 0.0
    if stats is None or stats.histogram is None or not stats.histogram.buckets:
        if op == "=":
            if stats is not None:
                return min(1.0, 1.0 / stats.distinct_count)
            return DEFAULT_EQUALITY_SELECTIVITY
        if op in ("<>", "!="):
            return 1.0 - DEFAULT_EQUALITY_SELECTIVITY
        return DEFAULT_RANGE_SELECTIVITY
    histogram = stats.histogram
    domain = IntervalSet.from_comparison(op, value)
    rows = histogram.estimate_interval_set(domain)
    # scale from the sampled histogram population to the live table
    population = max(1.0, histogram.total_rows - histogram.null_rows)
    return max(0.0, min(1.0, rows / population))


def estimate_domain_selectivity(
    domain: IntervalSet,
    stats: Optional[ColumnStatistics],
    table_rows: float,
) -> float:
    """Selectivity of ``column IN domain`` for an interval-set domain."""
    if domain.is_full():
        return 1.0
    if domain.is_empty():
        return 0.0
    if stats is None or stats.histogram is None or not stats.histogram.buckets:
        point = domain.single_point()
        if point is not None:
            return DEFAULT_EQUALITY_SELECTIVITY
        return DEFAULT_RANGE_SELECTIVITY
    histogram = stats.histogram
    rows = histogram.estimate_interval_set(domain)
    population = max(1.0, histogram.total_rows - histogram.null_rows)
    return max(0.0, min(1.0, rows / population))


def estimate_join_selectivity(
    left_stats: Optional[ColumnStatistics],
    right_stats: Optional[ColumnStatistics],
) -> float:
    """Selectivity of an equi-join predicate ``l.a = r.b``.

    Classic formula: 1 / max(distinct(a), distinct(b)); falls back to a
    magic constant when neither side has statistics.
    """
    distincts = []
    if left_stats is not None:
        distincts.append(left_stats.distinct_count)
    if right_stats is not None:
        distincts.append(right_stats.distinct_count)
    if not distincts:
        return DEFAULT_EQUALITY_SELECTIVITY
    return 1.0 / max(distincts)
