"""Table- and column-level statistics objects.

A :class:`TableStatistics` is what a provider exposes through the
TABLES_INFO schema rowset (cardinality) plus per-column histogram
rowsets (Section 3.2.4).  Local tables build these automatically;
remote providers may or may not expose them — experiment E11 measures
the difference.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Sequence

from repro.stats.histogram import Histogram
from repro.types.schema import Schema


class ColumnStatistics:
    """Statistics for one column: histogram + distinct/null counts."""

    __slots__ = ("column_name", "histogram", "distinct_count", "null_count")

    def __init__(
        self,
        column_name: str,
        histogram: Optional[Histogram],
        distinct_count: float,
        null_count: float,
    ):
        self.column_name = column_name
        self.histogram = histogram
        self.distinct_count = max(1.0, float(distinct_count))
        self.null_count = float(null_count)

    @staticmethod
    def build(column_name: str, values: Sequence[Any]) -> "ColumnStatistics":
        histogram = Histogram.build(values)
        seen = set()
        nulls = 0
        for v in values:
            if v is None:
                nulls += 1
            else:
                try:
                    seen.add(v)
                except TypeError:
                    seen.add(repr(v))
        return ColumnStatistics(column_name, histogram, len(seen), nulls)

    def __repr__(self) -> str:
        return (
            f"ColumnStatistics({self.column_name}: "
            f"distinct={self.distinct_count:.0f}, nulls={self.null_count:.0f})"
        )


class TableStatistics:
    """Cardinality + per-column statistics for one table."""

    def __init__(
        self,
        row_count: float,
        columns: Optional[Dict[str, ColumnStatistics]] = None,
        avg_row_width: float = 64.0,
    ):
        self.row_count = float(row_count)
        self.columns = dict(columns or {})
        self.avg_row_width = float(avg_row_width)

    @staticmethod
    def build(
        schema: Schema, rows: Iterable[tuple[Any, ...]]
    ) -> "TableStatistics":
        """Scan rows once and build full statistics for every column."""
        materialized = list(rows)
        column_values: list[list[Any]] = [[] for _ in schema]
        width_total = 0
        for row in materialized:
            width_total += schema.row_width(row)
            for i, value in enumerate(row):
                column_values[i].append(value)
        stats = {
            column.name.lower(): ColumnStatistics.build(column.name, values)
            for column, values in zip(schema, column_values)
        }
        avg_width = (
            width_total / len(materialized) if materialized else schema.row_width()
        )
        return TableStatistics(len(materialized), stats, avg_width)

    def column(self, name: str) -> Optional[ColumnStatistics]:
        """Per-column statistics, case-insensitive lookup."""
        return self.columns.get(name.lower())

    def __repr__(self) -> str:
        return (
            f"TableStatistics(rows={self.row_count:.0f}, "
            f"columns={sorted(self.columns)})"
        )
