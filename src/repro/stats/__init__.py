"""Statistics: histograms and cardinality estimation.

Section 3.2.4 of the paper: remote sources pass histograms and
cardinality information through OLE DB (histogram rowsets and the
TABLES_INFO schema rowset), which "commonly provides order of magnitude
improvements on cardinality estimates".  This package implements the
statistics objects themselves; the OLE DB layer exposes them and the
optimizer consumes them.
"""

from repro.stats.histogram import Histogram, HistogramBucket
from repro.stats.table_stats import ColumnStatistics, TableStatistics
from repro.stats.estimator import (
    DEFAULT_EQUALITY_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    estimate_comparison_selectivity,
    estimate_join_selectivity,
)

__all__ = [
    "Histogram",
    "HistogramBucket",
    "ColumnStatistics",
    "TableStatistics",
    "DEFAULT_EQUALITY_SELECTIVITY",
    "DEFAULT_RANGE_SELECTIVITY",
    "estimate_comparison_selectivity",
    "estimate_join_selectivity",
]
