"""The mail-file provider (Section 2.4).

"MakeTable is a table-valued function that transforms the mail file
(d:\\mail\\smith.mmf) into a stream of rows, each representing a
message."  A :class:`MailFile` is our ``.mmf`` substitute: a list of
:class:`MailMessage` objects with the columns the paper's query touches
(MsgId, From, Date, InReplyTo, ...).

Mail is also the paper's canonical *heterogeneous data* example
(Section 3.2.3): messages carry format-specific extras (meeting
invites have locations, receipts have amounts) and attachments form a
containment hierarchy — so this provider additionally exposes its data
as a chaptered rowset of row objects.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Dict, Iterable, Optional

from repro.errors import CatalogError, ConnectionError_
from repro.network.channel import NetworkChannel
from repro.oledb.datasource import DataSource
from repro.oledb.interfaces import (
    IDB_CREATE_SESSION,
    IDB_INITIALIZE,
    IDB_PROPERTIES,
    IOPEN_ROWSET,
    IROWSET,
)
from repro.oledb.properties import ProviderCapabilities, SqlSupportLevel
from repro.oledb.row_object import ChapteredRowset, RowObject
from repro.oledb.rowset import Rowset
from repro.oledb.session import Session
from repro.types.datatypes import DATETIME, INT, varchar
from repro.types.schema import Column, Schema

#: the common columns every message exposes through the rowset view
MAIL_SCHEMA = Schema(
    [
        Column("MsgId", INT, nullable=False),
        Column("From", varchar()),
        Column("To", varchar()),
        Column("Subject", varchar()),
        Column("Date", DATETIME),
        Column("InReplyTo", INT),
        Column("Body", varchar()),
    ]
)

ATTACHMENT_SCHEMA = Schema(
    [
        Column("FileName", varchar(), nullable=False),
        Column("Size", INT, nullable=False),
    ]
)


class MailMessage:
    """One message; ``extras`` holds row-specific columns."""

    def __init__(
        self,
        msg_id: int,
        sender: str,
        to: str,
        subject: str,
        date: _dt.datetime,
        in_reply_to: Optional[int] = None,
        body: str = "",
        extras: Optional[Dict[str, Any]] = None,
        attachments: Optional[list[tuple[str, int]]] = None,
    ):
        self.msg_id = msg_id
        self.sender = sender
        self.to = to
        self.subject = subject
        self.date = date
        self.in_reply_to = in_reply_to
        self.body = body
        self.extras = dict(extras or {})
        self.attachments = list(attachments or [])

    def as_row(self) -> tuple[Any, ...]:
        return (
            self.msg_id,
            self.sender,
            self.to,
            self.subject,
            self.date,
            self.in_reply_to,
            self.body,
        )

    def __repr__(self) -> str:
        return f"MailMessage({self.msg_id}, from={self.sender!r})"


class MailFile:
    """An .mmf-like mailbox file."""

    def __init__(self, path: str):
        self.path = path
        self.messages: list[MailMessage] = []

    def add(self, message: MailMessage) -> None:
        self.messages.append(message)

    def __len__(self) -> int:
        return len(self.messages)

    def __repr__(self) -> str:
        return f"MailFile({self.path}, {len(self.messages)} messages)"


class EmailDataSource(DataSource):
    """Provider over one or more registered mail files."""

    provider_name = "Microsoft.Mail.OLEDB"

    def __init__(
        self,
        mail_files: Iterable[MailFile],
        channel: Optional[NetworkChannel] = None,
    ):
        super().__init__(channel)
        self._files = {mf.path.lower(): mf for mf in mail_files}
        self._capabilities = ProviderCapabilities(
            sql_support=SqlSupportLevel.NONE,
            query_language="SQL with hierarchical query extensions",
            dialect_name="mail",
        )

    def interfaces(self) -> frozenset[str]:
        return frozenset(
            {
                IDB_INITIALIZE,
                IDB_CREATE_SESSION,
                IDB_PROPERTIES,
                IOPEN_ROWSET,
                IROWSET,
            }
        )

    @property
    def capabilities(self) -> ProviderCapabilities:
        return self._capabilities

    def _check_connection(self) -> None:
        if not self._files:
            raise ConnectionError_("mail provider: no mail files registered")

    def mail_file(self, path: str) -> MailFile:
        key = path.lower()
        if key not in self._files:
            raise CatalogError(f"mail file {path!r} not registered")
        return self._files[key]

    def _make_session(self) -> "EmailSession":
        return EmailSession(self)


class EmailSession(Session):
    """Messages as a rowset (MakeTable) or a chaptered rowset."""

    def open_rowset(self, table_name: str, **kwargs: Any) -> Rowset:
        """``table_name`` is the mail-file path (MakeTable semantics)."""
        mail_file = self.datasource.mail_file(table_name)
        rows = [message.as_row() for message in mail_file.messages]
        channel = self.datasource.channel
        if not channel.is_local:
            return Rowset(MAIL_SCHEMA, channel.stream_rows(rows, MAIL_SCHEMA))
        return Rowset(MAIL_SCHEMA, iter(rows))

    def open_chaptered_rowset(self, table_name: str) -> ChapteredRowset:
        """Heterogeneous view: row objects + attachment chapters."""
        mail_file = self.datasource.mail_file(table_name)
        row_objects = []
        chapters: Dict[int, Dict[str, ChapteredRowset]] = {}
        for index, message in enumerate(mail_file.messages):
            row_objects.append(
                RowObject(MAIL_SCHEMA, message.as_row(), message.extras)
            )
            if message.attachments:
                child = ChapteredRowset(
                    ATTACHMENT_SCHEMA,
                    [
                        RowObject(ATTACHMENT_SCHEMA, (name, size))
                        for name, size in message.attachments
                    ],
                )
                chapters[index] = {"attachments": child}
        return ChapteredRowset(MAIL_SCHEMA, row_objects, chapters)
