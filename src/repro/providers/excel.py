"""An Excel-like tabular provider.

Section 2.1 lists Microsoft Excel among the tabular sources reachable
through linked servers.  A :class:`Workbook` holds named worksheets
whose first row is the header; each sheet is exposed as a named rowset
(``Sheet1$`` naming convention preserved).  Like the real Excel
provider, it reports minimal SQL support — the DHQP compensates.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

from repro.errors import CatalogError, ConnectionError_
from repro.network.channel import NetworkChannel
from repro.oledb.datasource import DataSource
from repro.oledb.interfaces import (
    IDB_CREATE_SESSION,
    IDB_INITIALIZE,
    IDB_PROPERTIES,
    IOPEN_ROWSET,
    IROWSET,
)
from repro.oledb.properties import ProviderCapabilities, SqlSupportLevel
from repro.oledb.rowset import Rowset
from repro.oledb.session import Session
from repro.types.datatypes import infer_type, varchar
from repro.types.schema import Column, Schema


class Workbook:
    """Named worksheets of raw cell rows (first row = header)."""

    def __init__(self, path: str = "workbook.xls"):
        self.path = path
        self._sheets: Dict[str, list[tuple[Any, ...]]] = {}

    def add_sheet(self, name: str, rows: Iterable[tuple[Any, ...]]) -> None:
        self._sheets[name.lower()] = [tuple(r) for r in rows]

    def sheet(self, name: str) -> list[tuple[Any, ...]]:
        key = name.lower().rstrip("$")
        if key not in self._sheets:
            raise CatalogError(f"worksheet {name!r} not found in {self.path}")
        return self._sheets[key]

    def sheet_names(self) -> list[str]:
        return sorted(self._sheets)


class ExcelDataSource(DataSource):
    """Workbook provider: each sheet is a named rowset."""

    provider_name = "Microsoft.Jet.OLEDB.Excel"

    def __init__(self, workbook: Workbook, channel: Optional[NetworkChannel] = None):
        super().__init__(channel)
        self.workbook = workbook
        self._capabilities = ProviderCapabilities(
            sql_support=SqlSupportLevel.NONE,
            query_language="none",
            dialect_name="excel",
        )

    def interfaces(self) -> frozenset[str]:
        return frozenset(
            {
                IDB_INITIALIZE,
                IDB_CREATE_SESSION,
                IDB_PROPERTIES,
                IOPEN_ROWSET,
                IROWSET,
            }
        )

    @property
    def capabilities(self) -> ProviderCapabilities:
        return self._capabilities

    def _check_connection(self) -> None:
        if not self.workbook.sheet_names():
            raise ConnectionError_(
                f"workbook {self.workbook.path} has no sheets"
            )

    def _make_session(self) -> "ExcelSession":
        return ExcelSession(self)


class ExcelSession(Session):
    def open_rowset(self, table_name: str, **kwargs: Any) -> Rowset:
        cells = self.datasource.workbook.sheet(table_name)
        if not cells:
            raise CatalogError(f"worksheet {table_name!r} is empty")
        header, data = cells[0], cells[1:]
        columns = []
        for ordinal, name in enumerate(header):
            sample = next(
                (row[ordinal] for row in data if row[ordinal] is not None), None
            )
            column_type = infer_type(sample) if sample is not None else varchar()
            columns.append(Column(str(name), column_type))
        schema = Schema(columns)
        channel = self.datasource.channel
        rows: Iterable[tuple[Any, ...]] = iter(data)
        if not channel.is_local:
            rows = channel.stream_rows(data, schema)
        return Rowset(schema, rows)
