"""The SQL provider ("SQLOLEDB" and friends).

Fronts any object implementing :class:`SqlBackend` — in practice a
:class:`~repro.engine.ServerInstance`, whether it plays the local
engine (Figure 1's "OLE DB / Storage Engine" path) or a simulated
remote server reachable over a network channel.

The same class models non-SQL-Server relational sources (Oracle- or
DB2-like): construct it with a lower :class:`SqlSupportLevel`, a
different dialect name, and a different collation, and the DHQP's
decoder will restrict what it remotes accordingly (Section 3.3:
"The DHQP constructs plans such that the provider's capabilities are
fully used while not overshooting its limitations").
"""

from __future__ import annotations

from typing import Any, Optional, Protocol

from repro.network.channel import NetworkChannel
from repro.oledb.command import Command
from repro.oledb.datasource import DataSource
from repro.oledb.interfaces import (
    ICOMMAND,
    IDB_CREATE_COMMAND,
    IDB_CREATE_SESSION,
    IDB_INFO,
    IDB_INITIALIZE,
    IDB_PROPERTIES,
    IDB_SCHEMA_ROWSET,
    IOPEN_ROWSET,
    IROWSET,
    IROWSET_INDEX,
    IROWSET_LOCATE,
)
from repro.oledb.properties import ProviderCapabilities, SqlSupportLevel
from repro.oledb.rowset import Rowset
from repro.providers.base import TableBackedSession
from repro.storage.catalog import Catalog
from repro.storage.transactions import ResourceManager
from repro.types.collation import Collation, DEFAULT_COLLATION


class SqlBackend(Protocol):
    """What a SQL-capable server must offer its provider."""

    name: str
    catalog: Catalog

    def execute_sql(self, text: str) -> Rowset:
        """Parse/plan/execute SQL text, returning the result rowset."""
        ...

    def begin_transaction(self) -> ResourceManager:
        ...


class SqlServerDataSource(DataSource):
    """Data source object for a SQL-capable server."""

    provider_name = "SQLOLEDB"

    def __init__(
        self,
        backend: SqlBackend,
        channel: Optional[NetworkChannel] = None,
        sql_support: SqlSupportLevel = SqlSupportLevel.SQL92_FULL,
        dialect_name: str = "tsql",
        collation: Collation = DEFAULT_COLLATION,
        supports_nested_select: bool = True,
        provider_name: Optional[str] = None,
        database_name: Optional[str] = None,
    ):
        super().__init__(channel)
        self.backend = backend
        self.database_name = database_name
        if provider_name is not None:
            self.provider_name = provider_name
        self._capabilities = ProviderCapabilities(
            sql_support=sql_support,
            query_language=(
                "Transact-SQL" if dialect_name == "tsql" else f"SQL ({dialect_name})"
            ),
            supports_indexes=True,
            supports_statistics=True,
            supports_nested_select=supports_nested_select,
            supports_parallel_scan=dialect_name == "tsql",
            supports_transactions=True,
            collation=collation,
            dialect_name=dialect_name,
        )

    def interfaces(self) -> frozenset[str]:
        return frozenset(
            {
                IDB_INITIALIZE,
                IDB_CREATE_SESSION,
                IDB_PROPERTIES,
                IDB_INFO,
                IDB_SCHEMA_ROWSET,
                IOPEN_ROWSET,
                IDB_CREATE_COMMAND,
                ICOMMAND,
                IROWSET,
                IROWSET_INDEX,
                IROWSET_LOCATE,
            }
        )

    @property
    def capabilities(self) -> ProviderCapabilities:
        return self._capabilities

    def _make_session(self) -> "SqlServerSession":
        database = self.backend.catalog.database(self.database_name)
        return SqlServerSession(self, database, self.backend.catalog)


class SqlServerSession(TableBackedSession):
    """Session over a SQL backend: table rowsets + SQL commands.

    The session is the transactional scope (Section 3.1): a transaction
    begun here covers every command the session executes until it
    completes.
    """

    def __init__(self, datasource: Any, database: Any, catalog: Any = None):
        super().__init__(datasource, database, catalog)
        self.active_transaction: Optional[ResourceManager] = None

    def _make_command(self) -> "SqlCommand":
        return SqlCommand(self)

    def begin_transaction(self) -> ResourceManager:
        self.active_transaction = self.datasource.backend.begin_transaction()
        return self.active_transaction


class SqlCommand(Command):
    """ICommand whose text is SQL executed by the backing server.

    Results stream back through the channel, charging the bytes the
    paper's cost model is designed to minimize.
    """

    def describe(self):
        """Result schema without execution (bind-only on the backend)."""
        backend = self.session.datasource.backend
        describe_sql = getattr(backend, "describe_sql", None)
        if describe_sql is None or self.text is None:
            raise NotImplementedError
        return describe_sql(self.text)

    def _execute(self, text: str) -> Rowset:
        backend = self.session.datasource.backend
        txn = getattr(self.session, "active_transaction", None)
        if txn is not None:
            result = backend.execute_sql(text, txn=txn)
        else:
            result = backend.execute_sql(text)
        channel = self.session.datasource.channel
        if channel.is_local:
            return result
        return Rowset(
            result.schema, channel.stream_rows(result, result.schema)
        )
