"""A generic proprietary-language query provider.

Models Table 1's non-SQL command languages (MDX for OLAP Services,
LDAP for Active Directory) without building those engines: the
application registers handler functions per command pattern, and the
DHQP treats the provider as pass-through-only, exactly as Section 3.3
prescribes ("If the query syntax is a proprietary syntax, then DHQP
supports only pass-through queries against this provider using the
OpenQuery function").
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConnectionError_, ProviderError
from repro.network.channel import NetworkChannel
from repro.oledb.command import Command
from repro.oledb.datasource import DataSource
from repro.oledb.interfaces import (
    ICOMMAND,
    IDB_CREATE_COMMAND,
    IDB_CREATE_SESSION,
    IDB_INFO,
    IDB_INITIALIZE,
    IDB_PROPERTIES,
    IROWSET,
)
from repro.oledb.properties import ProviderCapabilities, SqlSupportLevel
from repro.oledb.rowset import Rowset
from repro.oledb.session import Session

#: a handler takes the command text and returns a rowset
CommandHandler = Callable[[str], Rowset]


class PassThroughDataSource(DataSource):
    """Provider whose only capability is executing opaque commands."""

    provider_name = "GENERIC.QUERY"

    def __init__(
        self,
        handler: CommandHandler,
        query_language: str = "proprietary",
        channel: Optional[NetworkChannel] = None,
        provider_name: Optional[str] = None,
    ):
        super().__init__(channel)
        self._handler = handler
        if provider_name is not None:
            self.provider_name = provider_name
        self._capabilities = ProviderCapabilities(
            sql_support=SqlSupportLevel.PROPRIETARY,
            query_language=query_language,
            dialect_name="proprietary",
        )

    def interfaces(self) -> frozenset[str]:
        return frozenset(
            {
                IDB_INITIALIZE,
                IDB_CREATE_SESSION,
                IDB_PROPERTIES,
                IDB_INFO,
                IDB_CREATE_COMMAND,
                ICOMMAND,
                IROWSET,
            }
        )

    @property
    def capabilities(self) -> ProviderCapabilities:
        return self._capabilities

    def _check_connection(self) -> None:
        if self._handler is None:
            raise ConnectionError_("pass-through provider has no handler")

    def _make_session(self) -> "PassThroughSession":
        return PassThroughSession(self)


class PassThroughSession(Session):
    def open_rowset(self, table_name: str, **kwargs: object) -> Rowset:
        raise ProviderError(
            f"{self.datasource.provider_name} has no named rowsets; "
            "use OpenQuery with a command in its native language"
        )

    def _make_command(self) -> "PassThroughCommand":
        return PassThroughCommand(self)


class PassThroughCommand(Command):
    def _execute(self, text: str) -> Rowset:
        result = self.session.datasource._handler(text)
        channel = self.session.datasource.channel
        if not channel.is_local:
            return Rowset(
                result.schema, channel.stream_rows(result, result.schema)
            )
        return result
