"""An Access/Jet-like *index provider* (Section 3.3).

"If the provider supports indexes, then the DHQP can generate plans
that use these indexes.  Index support requires reporting metadata on
the indexes (through IDBSchemaRowset ...), ability to open OLE DB
rowsets on indexes, the ability to seek ... on the index for given key
values (using the IRowsetIndex interface) and the ability to locate
base table rows using bookmark values retrieved from the index (using
the IRowsetLocate interface)."

This provider stores real tables (an ``.mdb``-like database) and
exposes exactly that surface — but **no** command object, so the DHQP
must compose remote range/fetch plans itself rather than pushing SQL.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConnectionError_
from repro.network.channel import NetworkChannel
from repro.oledb.datasource import DataSource
from repro.oledb.interfaces import (
    IDB_CREATE_SESSION,
    IDB_INFO,
    IDB_INITIALIZE,
    IDB_PROPERTIES,
    IDB_SCHEMA_ROWSET,
    IOPEN_ROWSET,
    IROWSET,
    IROWSET_INDEX,
    IROWSET_LOCATE,
)
from repro.oledb.properties import ProviderCapabilities, SqlSupportLevel
from repro.providers.base import TableBackedSession
from repro.storage.catalog import Database


class IsamDataSource(DataSource):
    """Data source over an .mdb-like database of tables + indexes."""

    provider_name = "Microsoft.Jet.OLEDB"

    def __init__(
        self,
        database: Database,
        channel: Optional[NetworkChannel] = None,
        path: str = "",
    ):
        super().__init__(channel)
        self.database = database
        self.path = path
        self._capabilities = ProviderCapabilities(
            sql_support=SqlSupportLevel.NONE,
            query_language="none (ISAM navigation)",
            supports_indexes=True,
            supports_statistics=True,
            dialect_name="jet",
        )

    def interfaces(self) -> frozenset[str]:
        return frozenset(
            {
                IDB_INITIALIZE,
                IDB_CREATE_SESSION,
                IDB_PROPERTIES,
                IDB_INFO,
                IDB_SCHEMA_ROWSET,
                IOPEN_ROWSET,
                IROWSET,
                IROWSET_INDEX,
                IROWSET_LOCATE,
            }
        )

    @property
    def capabilities(self) -> ProviderCapabilities:
        return self._capabilities

    def _check_connection(self) -> None:
        if self.database is None:
            raise ConnectionError_("ISAM provider: no database attached")

    def _make_session(self) -> "IsamSession":
        return IsamSession(self, self.database)


class IsamSession(TableBackedSession):
    """Full ISAM surface; no command creation (raises NotSupported)."""
