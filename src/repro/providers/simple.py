"""A *simple provider* (Section 3.3).

"A simple provider is an OLE DB provider which supports only the
mandatory OLE DB interfaces of being able to connect and retrieve named
rowsets.  In this case, DHQP provides all of the querying functionality
on top of this base provider."

This one serves delimited text files: each registered "file" is a named
rowset whose schema is inferred from a header line and the first data
rows.  No command object, no indexes, no statistics, no schema rowsets
beyond the mandatory surface — the worst case the DHQP must handle.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import CatalogError, ConnectionError_
from repro.network.channel import NetworkChannel
from repro.oledb.datasource import DataSource
from repro.oledb.interfaces import (
    IDB_CREATE_SESSION,
    IDB_INITIALIZE,
    IDB_PROPERTIES,
    IOPEN_ROWSET,
    IROWSET,
)
from repro.oledb.properties import ProviderCapabilities, SqlSupportLevel
from repro.oledb.rowset import Rowset
from repro.oledb.session import Session
from repro.types.datatypes import FLOAT, INT, infer_type, varchar
from repro.types.schema import Column, Schema


def _parse_cell(text: str) -> Any:
    """Best-effort typed parse of one CSV cell."""
    if text == "":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_delimited(content: str, delimiter: str = ",") -> tuple[Schema, list[tuple[Any, ...]]]:
    """Parse header + rows from delimited text, inferring column types."""
    lines = [line for line in content.splitlines() if line.strip()]
    if not lines:
        raise CatalogError("empty delimited file")
    names = [name.strip() for name in lines[0].split(delimiter)]
    raw_rows = [
        tuple(_parse_cell(cell.strip()) for cell in line.split(delimiter))
        for line in lines[1:]
    ]
    columns = []
    for ordinal, name in enumerate(names):
        sample = next(
            (row[ordinal] for row in raw_rows if ordinal < len(row) and row[ordinal] is not None),
            None,
        )
        inferred = infer_type(sample) if sample is not None else varchar()
        if inferred == INT and any(
            isinstance(row[ordinal], float)
            for row in raw_rows
            if ordinal < len(row) and row[ordinal] is not None
        ):
            inferred = FLOAT
        columns.append(Column(name, inferred))
    schema = Schema(columns)
    rows = [
        tuple(row[i] if i < len(row) else None for i in range(len(columns)))
        for row in raw_rows
    ]
    return schema, rows


class SimpleDataSource(DataSource):
    """Text-file provider: connect + named rowsets, nothing else."""

    provider_name = "MSDASQL.TEXT"

    def __init__(
        self,
        files: Dict[str, str],
        channel: Optional[NetworkChannel] = None,
        delimiter: str = ",",
    ):
        super().__init__(channel)
        self._files = dict(files)
        self._delimiter = delimiter
        self._parsed: Dict[str, tuple[Schema, list[tuple[Any, ...]]]] = {}
        self._capabilities = ProviderCapabilities(
            sql_support=SqlSupportLevel.NONE,
            query_language="none",
            dialect_name="text",
        )

    def interfaces(self) -> frozenset[str]:
        return frozenset(
            {
                IDB_INITIALIZE,
                IDB_CREATE_SESSION,
                IDB_PROPERTIES,
                IOPEN_ROWSET,
                IROWSET,
            }
        )

    @property
    def capabilities(self) -> ProviderCapabilities:
        return self._capabilities

    def _check_connection(self) -> None:
        if not self._files:
            raise ConnectionError_("text provider: no files registered")

    def _make_session(self) -> "SimpleSession":
        return SimpleSession(self)

    # -- file access used by the session -----------------------------------
    def parsed_file(self, name: str) -> tuple[Schema, list[tuple[Any, ...]]]:
        key = name.lower()
        if key not in self._parsed:
            match = next(
                (f for f in self._files if f.lower() == key), None
            )
            if match is None:
                raise CatalogError(f"file {name!r} not registered")
            self._parsed[key] = parse_delimited(
                self._files[match], self._delimiter
            )
        return self._parsed[key]


class SimpleSession(Session):
    """Named rowsets over registered files; everything else unsupported."""

    def open_rowset(self, table_name: str, **kwargs: Any) -> Rowset:
        schema, rows = self.datasource.parsed_file(table_name)
        channel = self.datasource.channel
        if not channel.is_local:
            return Rowset(schema, channel.stream_rows(rows, schema))
        return Rowset(schema, iter(rows))
