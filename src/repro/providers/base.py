"""Shared provider machinery.

:class:`TableBackedSession` implements the full IOpenRowset /
IRowsetIndex / IRowsetLocate / IDBSchemaRowset / histogram surface
against a :class:`~repro.storage.catalog.Database`, streaming every
rowset through the provider's network channel so experiments can
account for bytes moved.  Table-backed providers (SQL Server, ISAM,
simple) share it and differ only in which interfaces they advertise.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

from repro.errors import CatalogError, ProviderError
from repro.oledb.rowset import MaterializedRowset, Rowset
from repro.oledb.schema_rowsets import (
    check_constraints_rowset,
    columns_rowset,
    histogram_rowset,
    indexes_rowset,
    tables_info_rowset,
    tables_rowset,
)
from repro.oledb.session import Session
from repro.storage.catalog import Database
from repro.storage.table import Table
from repro.types.datatypes import BIGINT
from repro.types.intervals import Interval
from repro.types.schema import Column, Schema


class TableBackedSession(Session):
    """A session serving rowsets from a Database object.

    When constructed with a full ``catalog``, requests may address any
    database on the server via ``database_name`` (three-part naming);
    otherwise only the bound default database is visible.
    """

    def __init__(self, datasource: Any, database: Database, catalog: Any = None):
        super().__init__(datasource)
        self.database = database
        self.catalog = catalog

    # -- helpers -----------------------------------------------------------
    def _database(self, database_name: Optional[str]) -> Database:
        if database_name is None:
            return self.database
        if self.catalog is None:
            if database_name.lower() == self.database.name.lower():
                return self.database
            raise CatalogError(
                f"session is bound to database {self.database.name!r}"
            )
        return self.catalog.database(database_name)

    def _table(
        self,
        table_name: str,
        schema_name: Optional[str] = None,
        database_name: Optional[str] = None,
    ) -> Table:
        return self._database(database_name).table(
            table_name, schema_name or "dbo"
        )

    def _stream(self, rows: Iterable[tuple[Any, ...]], schema: Schema):
        """Pass rows through the network channel unless local."""
        channel = self.datasource.channel
        if channel.is_local:
            return rows
        return channel.stream_rows(rows, schema)

    # -- IOpenRowset -----------------------------------------------------------
    def open_rowset(
        self,
        table_name: str,
        schema_name: Optional[str] = None,
        database_name: Optional[str] = None,
        **kwargs: Any,
    ) -> Rowset:
        table = self._table(table_name, schema_name, database_name)
        rids = []
        rows = []
        for rid, row in table.scan():
            rids.append(rid)
            rows.append(row)
        return Rowset(
            table.schema,
            self._stream(rows, table.schema),
            bookmarks=rids,
        )

    # -- IRowsetIndex -----------------------------------------------------------
    def open_index_rowset(
        self,
        table_name: str,
        index_name: str,
        seek_key: Optional[Sequence[Any]] = None,
        range_interval: Optional[Interval] = None,
        schema_name: Optional[str] = None,
        database_name: Optional[str] = None,
    ) -> Rowset:
        """Rowset over an index: yields key columns + a BOOKMARK column."""
        self._require("IRowsetIndex")
        table = self._table(table_name, schema_name, database_name)
        if index_name not in table.indexes:
            raise CatalogError(
                f"index {index_name!r} not found on table {table_name!r}"
            )
        index = table.indexes[index_name]
        if seek_key is not None:
            entries = index.seek(seek_key)
        elif range_interval is not None:
            entries = index.set_range(range_interval)
        else:
            entries = index.scan()
        key_columns = [
            table.schema[ordinal] for ordinal in index.key_ordinals
        ]
        out_schema = Schema(
            key_columns + [Column("BOOKMARK", BIGINT, nullable=False)]
        )
        rows = (key + (rid,) for key, rid in entries)
        return Rowset(out_schema, self._stream(rows, out_schema))

    # -- IRowsetLocate -----------------------------------------------------------
    def fetch_by_bookmarks(
        self,
        table_name: str,
        bookmarks: Sequence[int],
        schema_name: Optional[str] = None,
        database_name: Optional[str] = None,
    ) -> Rowset:
        self._require("IRowsetLocate")
        table = self._table(table_name, schema_name, database_name)
        rows = (table.fetch(rid) for rid in bookmarks)
        return Rowset(table.schema, self._stream(rows, table.schema))

    # -- histogram rowsets (statistics extension) ------------------------------
    def open_histogram_rowset(
        self,
        table_name: str,
        column_name: str,
        schema_name: Optional[str] = None,
        database_name: Optional[str] = None,
    ) -> MaterializedRowset:
        if not self.datasource.capabilities.supports_statistics:
            return super().open_histogram_rowset(table_name, column_name)
        table = self._table(table_name, schema_name, database_name)
        column_stats = table.statistics.column(column_name)
        if column_stats is None or column_stats.histogram is None:
            raise ProviderError(
                f"no histogram for {table_name}.{column_name}"
            )
        return histogram_rowset(column_stats.histogram)

    # -- IDBSchemaRowset -----------------------------------------------------------
    def schema_rowset(
        self, which: str, database_name: Optional[str] = None
    ) -> MaterializedRowset:
        self._require("IDBSchemaRowset")
        kind = which.upper()
        database = self._database(database_name)
        all_tables = [table for __, table in database.tables()]
        if kind == "TABLES":
            entries = [
                (schema_name, "TABLE", table)
                for schema_name, table in database.tables()
            ]
            entries += [
                (schema_name, "VIEW", _ViewAsTable(view.name))
                for schema_name, view in database.views()
            ]
            return tables_rowset(entries, catalog_name=database.name)
        if kind == "COLUMNS":
            return columns_rowset(all_tables)
        if kind == "INDEXES":
            return indexes_rowset(all_tables)
        if kind == "TABLES_INFO":
            return tables_info_rowset(all_tables)
        if kind == "CHECK_CONSTRAINTS":
            return check_constraints_rowset(all_tables)
        raise ProviderError(f"unknown schema rowset {which!r}")


class _ViewAsTable:
    """Adapter so views appear in the TABLES schema rowset."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name
