"""Concrete OLE DB providers.

One module per provider family, covering every category of Section 3.3
and every scenario of Section 2:

* :mod:`sqlserver` — the SQL provider ("SQLOLEDB"): full SQL-92 support,
  indexes, statistics, transactions; fronts both the local engine and
  simulated remote SQL Server instances.  A configurable dialect lets
  the same class model Oracle/DB2-like SQL sources at lower
  ``DBPROP_SQLSUPPORT`` levels.
* :mod:`simple` — a simple provider over named tabular data (text/CSV
  files): connect + rowsets only; the DHQP does all query processing.
* :mod:`isam` — an Access/Jet-like index provider: rowsets, indexes
  (IRowsetIndex), bookmarks (IRowsetLocate), schema rowsets, no
  command object.
* :mod:`excel` — an Excel-like provider: each worksheet is a rowset
  whose first row is the header.
* :mod:`email` — the mail-file provider behind the paper's MakeTable
  scenario (Section 2.4), with chaptered rowsets for attachments.
* :mod:`fulltext` — the "MSIDXS" provider over the search service,
  a query provider with a proprietary (non-SQL) language.
* :mod:`passthrough` — a generic proprietary-language query provider
  (the OpenQuery target), used to model OLAP/MDX-style sources.
"""

from repro.providers.sqlserver import SqlBackend, SqlServerDataSource
from repro.providers.simple import SimpleDataSource
from repro.providers.isam import IsamDataSource
from repro.providers.excel import ExcelDataSource, Workbook
from repro.providers.email import EmailDataSource, MailFile, MailMessage
from repro.providers.fulltext import FullTextDataSource
from repro.providers.passthrough import PassThroughDataSource

__all__ = [
    "SqlBackend",
    "SqlServerDataSource",
    "SimpleDataSource",
    "IsamDataSource",
    "ExcelDataSource",
    "Workbook",
    "EmailDataSource",
    "MailFile",
    "MailMessage",
    "FullTextDataSource",
    "PassThroughDataSource",
]
