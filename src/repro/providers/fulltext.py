"""The "MSIDXS" full-text provider.

A *query provider with a proprietary syntax* (Section 3.3): its command
language is the Index Server Query Language of Table 1, so the DHQP
only ever passes whole queries through (OpenRowset/OpenQuery) — it
never decomposes them.

The language we accept is the subset the paper's Section 2.2 example
uses::

    SELECT <columns> FROM SCOPE() WHERE CONTAINS('<contains-expr>')

where columns come from {Path, Directory, FileName, Size, Create,
Write, Rank}.  Relational catalogs answer the simpler surface used by
the Section 2.3 integration: :meth:`FullTextSession.contains_rowset`
returns the (KEY, RANK) rowset the relational engine joins to the base
table.
"""

from __future__ import annotations

import re
from typing import Any, Optional

from repro.errors import FullTextError, ProviderError
from repro.fulltext.service import FullTextCatalog, FullTextService
from repro.network.channel import NetworkChannel
from repro.oledb.command import Command
from repro.oledb.datasource import DataSource
from repro.oledb.interfaces import (
    ICOMMAND,
    IDB_CREATE_COMMAND,
    IDB_CREATE_SESSION,
    IDB_INFO,
    IDB_INITIALIZE,
    IDB_PROPERTIES,
    IOPEN_ROWSET,
    IROWSET,
)
from repro.oledb.properties import ProviderCapabilities, SqlSupportLevel
from repro.oledb.rowset import MaterializedRowset, Rowset
from repro.oledb.session import Session
from repro.types.datatypes import DATETIME, FLOAT, INT, varchar
from repro.types.schema import Column, Schema

#: all columns SCOPE() can project
_SCOPE_COLUMNS = {
    "path": Column("Path", varchar(), nullable=False),
    "directory": Column("Directory", varchar()),
    "filename": Column("FileName", varchar()),
    "size": Column("Size", INT),
    "create": Column("Create", DATETIME),
    "write": Column("Write", DATETIME),
    "rank": Column("Rank", FLOAT),
}

#: the (key, rank) schema returned for relational catalogs (Figure 2)
KEY_RANK_SCHEMA = Schema(
    [
        Column("KEY", varchar(), nullable=False),
        Column("RANK", FLOAT, nullable=False),
    ]
)

_QUERY = re.compile(
    r"^\s*select\s+(?P<cols>.+?)\s+from\s+scope\s*\(\s*\)\s+"
    r"where\s+contains\s*\(\s*(?P<pred>.+)\s*\)\s*$",
    re.IGNORECASE | re.DOTALL,
)


class FullTextDataSource(DataSource):
    """DSO bound to one catalog of a :class:`FullTextService`."""

    provider_name = "MSIDXS"

    def __init__(
        self,
        service: FullTextService,
        catalog_name: str,
        channel: Optional[NetworkChannel] = None,
    ):
        super().__init__(channel)
        self.service = service
        self.catalog_name = catalog_name
        self._capabilities = ProviderCapabilities(
            sql_support=SqlSupportLevel.PROPRIETARY,
            query_language="Index Server Query Language",
            dialect_name="msidxs",
        )

    def interfaces(self) -> frozenset[str]:
        return frozenset(
            {
                IDB_INITIALIZE,
                IDB_CREATE_SESSION,
                IDB_PROPERTIES,
                IDB_INFO,
                IOPEN_ROWSET,
                IDB_CREATE_COMMAND,
                ICOMMAND,
                IROWSET,
            }
        )

    @property
    def capabilities(self) -> ProviderCapabilities:
        return self._capabilities

    def _check_connection(self) -> None:
        self.service.catalog(self.catalog_name)  # raises if missing

    def _make_session(self) -> "FullTextSession":
        return FullTextSession(self)


class FullTextSession(Session):
    @property
    def catalog(self) -> FullTextCatalog:
        return self.datasource.service.catalog(self.datasource.catalog_name)

    def open_rowset(self, table_name: str, **kwargs: Any) -> Rowset:
        """Opening 'SCOPE()' yields every indexed document's properties."""
        if table_name.lower().replace(" ", "") not in ("scope()", "scope"):
            raise ProviderError(
                f"MSIDXS exposes only SCOPE(), not {table_name!r}"
            )
        schema = Schema(list(_SCOPE_COLUMNS.values()))
        rows = [
            self._document_row(path, None, list(_SCOPE_COLUMNS))
            for path in sorted(self.catalog.documents)
        ]
        return Rowset(schema, iter(rows))

    def _make_command(self) -> "FullTextCommand":
        return FullTextCommand(self)

    # -- relational catalog surface (Section 2.3 / Figure 2) ----------------
    def contains_rowset(self, contains_text: str) -> MaterializedRowset:
        """(KEY, RANK) rowset for a CONTAINS predicate over a relational
        catalog — the exact rowset Figure 2's query support returns."""
        matches = self.catalog.search(contains_text)
        rows = [(match.key, match.rank) for match in matches]
        return MaterializedRowset(KEY_RANK_SCHEMA, rows)

    # -- helpers ------------------------------------------------------------
    def _document_row(
        self, path: str, rank: Optional[float], column_names: list[str]
    ) -> tuple[Any, ...]:
        document = self.catalog.document(path)
        values = {
            "path": document.path,
            "directory": document.directory,
            "filename": document.filename,
            "size": document.size,
            "create": document.created,
            "write": document.written,
            "rank": rank,
        }
        return tuple(values[name] for name in column_names)


class FullTextCommand(Command):
    """Executes Index Server Query Language text."""

    def describe(self) -> Schema:
        """Result schema from the projected SCOPE() columns."""
        if self.text is None:
            raise NotImplementedError
        match = _QUERY.match(self.text)
        if match is None:
            raise NotImplementedError
        requested = [c.strip().lower() for c in match.group("cols").split(",")]
        unknown = [c for c in requested if c not in _SCOPE_COLUMNS]
        if unknown:
            raise FullTextError(f"unknown SCOPE() columns: {unknown}")
        return Schema([_SCOPE_COLUMNS[c] for c in requested])

    def _execute(self, text: str) -> Rowset:
        session: FullTextSession = self.session
        match = _QUERY.match(text)
        if match is None:
            raise FullTextError(
                "MSIDXS command must be: SELECT <cols> FROM SCOPE() "
                f"WHERE CONTAINS(...); got {text[:60]!r}"
            )
        requested = [c.strip().lower() for c in match.group("cols").split(",")]
        unknown = [c for c in requested if c not in _SCOPE_COLUMNS]
        if unknown:
            raise FullTextError(f"unknown SCOPE() columns: {unknown}")
        predicate = match.group("pred").strip()
        # T-SQL escaping: doubled single quotes inside OpenRowset text
        # (the paper's example) collapse to one
        predicate = predicate.replace("''", "'")
        # strip one matching outer single-quote pair, if present
        if len(predicate) >= 2 and predicate[0] == predicate[-1] == "'":
            predicate = predicate[1:-1]
        matches = session.catalog.search(predicate)
        schema = Schema([_SCOPE_COLUMNS[c] for c in requested])
        rows = [
            session._document_row(m.key, m.rank, requested) for m in matches
        ]
        channel = session.datasource.channel
        if not channel.is_local:
            return Rowset(schema, channel.stream_rows(rows, schema))
        return Rowset(schema, iter(rows))
