"""The cost model.

Local operators use classic per-row CPU costs.  Remote operators follow
Section 4.1.3: "SQL Server DHQP defines a simple cost model based on
the output cardinality of a remote operator.  It aims at finding plans
with minimal network traffic."  A remote operator's cost is dominated
by (estimated output rows × row width) over the channel plus a fixed
round-trip latency; the remote server's own execution effort is charged
at a discount since it runs elsewhere (and, for autonomous sources, we
often "cannot reason about the detailed implementation of the remote
operator").
"""

from __future__ import annotations

import math
from typing import Optional

from repro.network.channel import NetworkChannel

#: cost units are (simulated) milliseconds


class Cost:
    """A scalar cost with a convenience for unreachable plans."""

    INFINITE = float("inf")

    @staticmethod
    def is_better(a: float, b: float) -> bool:
        return a < b


class CostModel:
    """Tunable cost constants; one instance per optimizer."""

    def __init__(
        self,
        cpu_row_ms: float = 0.001,
        hash_build_row_ms: float = 0.002,
        hash_probe_row_ms: float = 0.0012,
        sort_row_ms: float = 0.002,
        spool_row_ms: float = 0.0015,
        spool_rescan_row_ms: float = 0.0003,
        remote_cpu_discount: float = 0.5,
        remote_fixed_ms: float = 1.0,
        health_open_penalty_ms: float = 500.0,
        health_half_open_penalty_ms: float = 25.0,
        exchange_branch_overhead_ms: float = 0.05,
        bytes_per_column: float = 16.0,
        hash_memory_overhead: float = 1.3,
        sort_memory_overhead: float = 1.1,
    ):
        self.cpu_row_ms = cpu_row_ms
        self.hash_build_row_ms = hash_build_row_ms
        self.hash_probe_row_ms = hash_probe_row_ms
        self.sort_row_ms = sort_row_ms
        self.spool_row_ms = spool_row_ms
        self.spool_rescan_row_ms = spool_rescan_row_ms
        #: remote servers execute "for free" relative to shipping data;
        #: a mild discount keeps pathological remote plans from winning
        self.remote_cpu_discount = remote_cpu_discount
        self.remote_fixed_ms = remote_fixed_ms
        #: surcharge on any remote access to a member whose circuit
        #: breaker is open (expected fast-fail + replan) or half-open
        #: (a probe may still fail); closed members cost nothing extra
        self.health_open_penalty_ms = health_open_penalty_ms
        self.health_half_open_penalty_ms = health_half_open_penalty_ms
        #: per-branch startup/teardown cost of a parallel exchange
        #: (thread + queue plumbing); keeps DOP>1 from beating a serial
        #: Concat on all-local unions where there is nothing to hide
        self.exchange_branch_overhead_ms = exchange_branch_overhead_ms
        #: estimated stored width of one column value, for memory grants
        self.bytes_per_column = bytes_per_column
        #: hash tables cost more than their payload (buckets, headers)
        self.hash_memory_overhead = hash_memory_overhead
        #: sort run bookkeeping on top of the rows themselves
        self.sort_memory_overhead = sort_memory_overhead

    # -- workspace-memory estimates (KB), for the resource governor -----------
    def row_width_bytes(self, column_count: int) -> float:
        return max(1, column_count) * self.bytes_per_column

    def hash_join_memory_kb(self, build_rows: float, row_width_bytes: float) -> float:
        """Workspace for a hash join's build side (the probe streams)."""
        return (
            max(0.0, build_rows) * row_width_bytes * self.hash_memory_overhead
        ) / 1024.0

    def hash_aggregate_memory_kb(self, groups: float, row_width_bytes: float) -> float:
        """Workspace for a hash aggregate: one slot per output group."""
        return (
            max(0.0, groups) * row_width_bytes * self.hash_memory_overhead
        ) / 1024.0

    def sort_memory_kb(self, rows: float, row_width_bytes: float) -> float:
        """Workspace for an in-memory sort of the full input."""
        return (
            max(0.0, rows) * row_width_bytes * self.sort_memory_overhead
        ) / 1024.0

    def spool_memory_kb(self, rows: float, row_width_bytes: float) -> float:
        """Workspace for a spool's materialized snapshot."""
        return (max(0.0, rows) * row_width_bytes) / 1024.0

    # -- local operators ------------------------------------------------------
    def scan(self, rows: float) -> float:
        return rows * self.cpu_row_ms

    def index_range(self, table_rows: float, selected_rows: float) -> float:
        return math.log2(max(2.0, table_rows)) * 0.01 + selected_rows * (
            self.cpu_row_ms * 1.5
        )

    def filter(self, rows: float, conjunct_count: int = 1) -> float:
        return rows * self.cpu_row_ms * 0.5 * max(1, conjunct_count)

    def project(self, rows: float, expr_count: int) -> float:
        return rows * self.cpu_row_ms * 0.3 * max(1, expr_count)

    def hash_join(self, build_rows: float, probe_rows: float) -> float:
        return (
            build_rows * self.hash_build_row_ms
            + probe_rows * self.hash_probe_row_ms
        )

    def nl_join(
        self, outer_rows: float, inner_first_cost: float, inner_rescan_cost: float
    ) -> float:
        if outer_rows <= 0:
            return inner_first_cost
        return inner_first_cost + max(0.0, outer_rows - 1) * inner_rescan_cost

    def merge_join(self, left_rows: float, right_rows: float) -> float:
        return (left_rows + right_rows) * self.cpu_row_ms

    def sort(self, rows: float) -> float:
        n = max(2.0, rows)
        return n * math.log2(n) * self.sort_row_ms

    def aggregate(self, rows: float, group_count: float) -> float:
        return rows * self.hash_build_row_ms + group_count * self.cpu_row_ms

    def spool_build(self, rows: float) -> float:
        return rows * self.spool_row_ms

    def spool_rescan(self, rows: float) -> float:
        return rows * self.spool_rescan_row_ms

    def fulltext_lookup(self, match_estimate: float) -> float:
        return 0.5 + match_estimate * self.cpu_row_ms

    def parallel_union(self, branch_costs: list, dop: int) -> float:
        """Cost of running UNION ALL branches on a ``dop``-worker
        exchange: the critical path of a longest-processing-time
        assignment of branch costs onto the worker slots, plus a small
        per-branch exchange overhead.

        This is where the optimizer credits latency hiding on slow
        links — independent remote branches overlap, so the exchange
        pays for the busiest worker, not the sum (the heterogeneous-
        machines scheduling model from PAPERS.md)."""
        slots = [0.0] * max(1, min(int(dop), len(branch_costs)))
        for cost in sorted(branch_costs, reverse=True):
            index = min(range(len(slots)), key=slots.__getitem__)
            slots[index] += cost
        return max(slots) + self.exchange_branch_overhead_ms * len(
            branch_costs
        )

    def health_penalty(self, state: str) -> float:
        """Extra cost for touching a member in breaker state ``state``
        (one of the ``repro.resilience.health`` state constants)."""
        if state == "open":
            return self.health_open_penalty_ms
        if state == "half_open":
            return self.health_half_open_penalty_ms
        return 0.0

    # -- remote operators (Section 4.1.3) ---------------------------------------
    def remote_transfer(
        self,
        channel: Optional[NetworkChannel],
        rows: float,
        row_width: float,
    ) -> float:
        """Cost of moving an estimated result set over a channel — the
        heart of the minimal-network-traffic model."""
        if channel is None:
            return rows * self.cpu_row_ms
        nbytes = rows * row_width
        return (
            self.remote_fixed_ms
            + channel.latency_ms
            + channel.transfer_ms(int(nbytes))
        )

    def remote_query(
        self,
        channel: Optional[NetworkChannel],
        output_rows: float,
        row_width: float,
        remote_work_estimate: float,
    ) -> float:
        """A pushed remote query: transfer of its *output* plus the
        discounted remote execution effort."""
        return (
            self.remote_transfer(channel, output_rows, row_width)
            + remote_work_estimate * self.remote_cpu_discount
        )

    def parameterized_remote_probe(
        self, channel: Optional[NetworkChannel], rows_per_probe: float, row_width: float
    ) -> float:
        """One parameterized remote execution (per outer row)."""
        if channel is None:
            return rows_per_probe * self.cpu_row_ms
        return (
            channel.latency_ms
            + channel.transfer_ms(int(rows_per_probe * row_width))
            + 0.05  # remote statement dispatch overhead
        )
