"""Linked servers (Section 2.1).

"Linked server names associate a server name with an OLE DB data
source."  A :class:`LinkedServer` owns an initialized
:class:`~repro.oledb.datasource.DataSource` and performs all metadata
discovery *through the OLE DB interfaces* — schema rowsets for columns,
indexes, cardinality and check constraints, histogram rowsets for
statistics — exactly the contract the paper describes.  Discovered
metadata is cached per schema version; delayed schema validation
(Section 4.1.5) re-checks the version at execution time.
"""

from __future__ import annotations

import re
import threading
from typing import Dict, Optional

from repro.errors import (
    CatalogError,
    CircuitOpenError,
    NetworkError,
    NotSupportedError,
    ProviderError,
    SchemaValidationError,
    ServerUnavailableError,
)
from repro.oledb.datasource import DataSource
from repro.oledb.interfaces import IDB_SCHEMA_ROWSET
from repro.oledb.properties import ProviderCapabilities
from repro.oledb.schema_rowsets import histogram_from_rowset
from repro.oledb.session import Session
from repro.resilience.retry import RetryPolicy, call_with_retry
from repro.stats.table_stats import ColumnStatistics, TableStatistics
from repro.storage.btree import IndexMetadata
from repro.types.datatypes import (
    BIGINT,
    BOOL,
    DATE,
    DATETIME,
    FLOAT,
    INT,
    SqlType,
    varchar,
)
from repro.types.intervals import IntervalSet
from repro.types.schema import Column, Schema

_TYPE_PATTERN = re.compile(r"([A-Za-z]+)(?:\((\d+)\))?")

_TYPE_BY_NAME: Dict[str, SqlType] = {
    "INT": INT,
    "INTEGER": INT,
    "BIGINT": BIGINT,
    "FLOAT": FLOAT,
    "REAL": FLOAT,
    "DOUBLE": FLOAT,
    "BIT": BOOL,
    "BOOL": BOOL,
    "DATE": DATE,
    "DATETIME": DATETIME,
    "TIMESTAMP": DATETIME,
}


def type_from_name(name: str) -> SqlType:
    """Parse a type name ('INT', 'VARCHAR(50)') back into a SqlType."""
    match = _TYPE_PATTERN.match(name.strip())
    if match is None:
        raise CatalogError(f"unparseable type name {name!r}")
    family = match.group(1).upper()
    argument = match.group(2)
    if family in ("VARCHAR", "NVARCHAR", "CHAR", "TEXT", "STRING"):
        return varchar(int(argument) if argument else None)
    if family in _TYPE_BY_NAME:
        return _TYPE_BY_NAME[family]
    raise CatalogError(f"unknown type name {name!r}")


class RemoteTableInfo:
    """Everything the optimizer knows about one remote table."""

    __slots__ = (
        "table_name",
        "schema",
        "cardinality",
        "avg_row_width",
        "schema_version",
        "indexes",
        "check_domains",
        "_column_stats",
    )

    def __init__(
        self,
        table_name: str,
        schema: Schema,
        cardinality: float,
        avg_row_width: float,
        schema_version: int,
        indexes: list[IndexMetadata],
        check_domains: Dict[str, IntervalSet],
    ):
        self.table_name = table_name
        self.schema = schema
        self.cardinality = cardinality
        self.avg_row_width = avg_row_width
        self.schema_version = schema_version
        self.indexes = indexes
        self.check_domains = check_domains
        self._column_stats: Dict[str, Optional[ColumnStatistics]] = {}

    def __repr__(self) -> str:
        return (
            f"RemoteTableInfo({self.table_name}, rows={self.cardinality:.0f}, "
            f"v{self.schema_version})"
        )


class LinkedServer:
    """A named OLE DB data source registered with the engine."""

    def __init__(
        self,
        name: str,
        datasource: DataSource,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self.name = name
        self.datasource = datasource
        if not datasource.initialized:
            datasource.initialize()
        self._session: Optional[Session] = None
        self._table_cache: Dict[str, RemoteTableInfo] = {}
        #: guards the metadata cache and the lazily created shared
        #: session — parallel exchange workers may first-touch both
        self._cache_lock = threading.RLock()
        #: retry/backoff policy for every remote operation on this server
        self.retry_policy = retry_policy or RetryPolicy()
        #: the owning engine's HealthRegistry (set at registration);
        #: None means no breaker gating (standalone LinkedServer use)
        self.health = None

    # -- plumbing ---------------------------------------------------------
    @property
    def breaker(self):
        """This server's circuit breaker, or None when no registry is
        attached."""
        if self.health is None:
            return None
        return self.health.breaker(self.name)

    def run_with_retry(self, fn, description: str = ""):
        """Run one remote operation under this server's retry policy,
        gated by the server's circuit breaker when a HealthRegistry is
        attached.

        Transient faults back off (simulated ms charged to the channel)
        and retry; timeouts retry when the policy allows; server-down
        and exhausted retries propagate as typed errors.  The breaker
        sees only *final* outcomes: a retried-then-masked fault records
        a success, retries exhausted or server-down records a failure
        (down trips the breaker immediately), and an already-open
        breaker fails fast with :class:`CircuitOpenError` before any
        attempt — a flapping member stops eating retry budget.

        Breaker evidence is asymmetric: any failure counts, but a
        success only counts when the call produced actual channel
        traffic.  Free metadata checks (schema rowsets charge no round
        trips) can prove a member sick, not healthy — otherwise a hung
        member whose pings still answer would reset the failure streak
        every statement and the breaker could never trip.
        """
        description = description or self.name
        channel = self.channel
        trace = channel.active_trace if channel is not None else None
        if trace is None:
            return self._run_with_retry_inner(fn, description)
        # one child span per remote command, nested under whichever
        # operator span is current when the dispatch happens — retries,
        # backoff waits and breaker fast-fails all land inside it
        span = trace.begin_span(
            "remote_command", server=self.name, operation=description
        )
        stats_before = channel.stats.snapshot()
        started = trace.clock()
        try:
            return self._run_with_retry_inner(fn, description)
        finally:
            span.duration_ms += trace.clock() - started
            delta = channel.stats.delta(stats_before)
            span.attrs["retries"] = int(delta["retries"])
            span.attrs["backoff_ms"] = round(delta["backoff_ms"], 3)
            span.attrs["breaker_fast_fails"] = int(
                delta["breaker_fast_fails"]
            )
            span.attrs["round_trips"] = int(delta["round_trips"])
            trace.exit_span(span)

    def _run_with_retry_inner(self, fn, description: str):
        breaker = self.breaker
        if breaker is not None:
            breaker.before_attempt(self.channel, description)
        trips_before = (
            self.channel.stats.round_trips
            if self.channel is not None
            else None
        )
        try:
            result = call_with_retry(
                self.retry_policy, self.channel, fn, description=description
            )
        except NetworkError as error:
            if getattr(error, "server_name", None) is None:
                error.server_name = self.name
            if breaker is not None and not isinstance(error, CircuitOpenError):
                breaker.record_failure(
                    error,
                    self.channel,
                    definitive=isinstance(error, ServerUnavailableError),
                )
            raise
        if breaker is not None:
            trafficked = (
                trips_before is None
                or self.channel.stats.round_trips != trips_before
            )
            if trafficked:
                breaker.record_success(self.channel)
        return result

    def execute_command(self, sql_text: str, session: Optional[Session] = None):
        """Dispatch a SQL command to the remote server with retries.

        The result rowset is materialized *inside* the retry scope, so a
        fault mid-stream discards the partial transfer and re-runs the
        whole command — the retry unit is the statement, never a
        half-consumed rowset.  Returns the list of fetched rows.
        """

        def attempt():
            sess = session if session is not None else self.create_session()
            command = sess.create_command()
            command.set_text(sql_text)
            return command.execute().fetch_all()

        return self.run_with_retry(attempt, description=f"command:{self.name}")
    @property
    def capabilities(self) -> ProviderCapabilities:
        return self.datasource.capabilities

    @property
    def channel(self):
        return self.datasource.channel

    @property
    def session(self) -> Session:
        with self._cache_lock:
            if self._session is None:
                self._session = self.datasource.create_session()
            return self._session

    def create_session(self) -> Session:
        """A fresh session (DML wants its own transactional scope)."""
        return self.datasource.create_session()

    # -- metadata discovery through OLE DB ------------------------------------
    def table_info(
        self,
        table_name: str,
        database: Optional[str] = None,
        refresh: bool = False,
        allow_stale: bool = True,
    ) -> RemoteTableInfo:
        """Discover (and cache) schema/statistics for a remote table.

        Delayed schema validation (Section 4.1.5) hinges on the
        ``allow_stale`` fallback: when the server is unreachable but a
        cached :class:`RemoteTableInfo` exists, compilation proceeds
        against the cache and validation is deferred to execution time —
        so queries whose plans never *touch* the unreachable member
        still compile and run.  Pass ``allow_stale=False`` (as
        :meth:`validate_schema_version` does) to force an on-the-wire
        check.
        """
        key = (database.lower() if database else None, table_name.lower())
        with self._cache_lock:
            if not refresh and key in self._table_cache:
                return self._table_cache[key]
        try:
            info = self.run_with_retry(
                lambda: self._discover(table_name, database),
                description=f"table_info:{table_name}",
            )
        except ServerUnavailableError:
            with self._cache_lock:
                cached = self._table_cache.get(key)
            if allow_stale and cached is not None:
                channel = self.channel
                if channel is not None:
                    channel._count("network.stale_metadata_served")
                    channel._trace_event(
                        "schema_validation_deferred",
                        server=self.name, table=table_name,
                    )
                return cached
            raise
        with self._cache_lock:
            self._table_cache[key] = info
        return info

    def _discover(
        self, table_name: str, database: Optional[str]
    ) -> RemoteTableInfo:
        """One metadata round trip (schema stays free of byte charges,
        but an unreachable server still refuses it)."""
        channel = self.channel
        if channel is not None:
            channel.check_available()
        if not self.datasource.supports_interface(IDB_SCHEMA_ROWSET):
            return self._probe_without_schema_rowsets(table_name)
        return self._read_schema_rowsets(table_name, database)

    def _read_schema_rowsets(
        self, table_name: str, database: Optional[str] = None
    ) -> RemoteTableInfo:
        session = self.session
        target = table_name.lower()
        columns = []
        for (tname, cname, __, type_name, nullable) in self._rowset(
            session, "COLUMNS", database
        ):
            if tname.lower() == target:
                columns.append(Column(cname, type_from_name(type_name), nullable))
        if not columns:
            raise CatalogError(
                f"table {table_name!r} not found on linked server {self.name}"
            )
        cardinality = 0.0
        avg_width = 64.0
        version = 1
        for (tname, rows, width, schema_version) in self._rowset(
            session, "TABLES_INFO", database
        ):
            if tname.lower() == target:
                cardinality = float(rows)
                avg_width = float(width)
                version = int(schema_version)
                break
        indexes: Dict[str, list[tuple[int, str, bool]]] = {}
        for (tname, index_name, unique, ordinal, column_name) in self._rowset(
            session, "INDEXES", database
        ):
            if tname.lower() == target:
                indexes.setdefault(index_name, []).append(
                    (ordinal, column_name, unique)
                )
        index_list = []
        for index_name, entries in indexes.items():
            entries.sort()
            index_list.append(
                IndexMetadata(
                    index_name,
                    table_name,
                    [column_name for __, column_name, __u in entries],
                    unique=entries[0][2],
                )
            )
        check_domains: Dict[str, IntervalSet] = {}
        try:
            for (tname, __, column_name, domain, __text) in self._rowset(
                session, "CHECK_CONSTRAINTS", database
            ):
                if tname.lower() == target and column_name and domain is not None:
                    existing = check_domains.get(column_name.lower())
                    check_domains[column_name.lower()] = (
                        domain if existing is None else existing.intersect(domain)
                    )
        except (ProviderError, NotSupportedError):
            pass
        return RemoteTableInfo(
            table_name,
            Schema(columns),
            cardinality,
            avg_width,
            version,
            index_list,
            check_domains,
        )

    @staticmethod
    def _rowset(session: Session, which: str, database: Optional[str]):
        """schema_rowset with database targeting when supported."""
        try:
            return session.schema_rowset(which, database_name=database)
        except TypeError:
            return session.schema_rowset(which)

    def _probe_without_schema_rowsets(self, table_name: str) -> RemoteTableInfo:
        """Simple providers: open the rowset and take its schema; no
        statistics, no indexes (the DHQP must do everything itself)."""
        rowset = self.session.open_rowset(table_name)
        rows = rowset.fetch_all()
        return RemoteTableInfo(
            table_name,
            rowset.schema,
            float(len(rows)),
            rowset.schema.row_width(),
            1,
            [],
            {},
        )

    def column_statistics(
        self,
        table_name: str,
        column_name: str,
        database: Optional[str] = None,
    ) -> Optional[ColumnStatistics]:
        """Histogram-backed statistics via the Section 3.2.4 extension;
        None when the provider does not expose them."""
        info = self.table_info(table_name, database)
        key = column_name.lower()
        if key in info._column_stats:
            return info._column_stats[key]
        stats: Optional[ColumnStatistics] = None
        if self.capabilities.supports_statistics:
            try:
                rowset = self.session.open_histogram_rowset(
                    table_name, column_name, database_name=database
                )
                histogram = histogram_from_rowset(rowset)
                stats = ColumnStatistics(
                    column_name,
                    histogram,
                    histogram.distinct_count,
                    histogram.null_rows,
                )
            except (ProviderError, NotSupportedError):
                stats = None
        info._column_stats[key] = stats
        return stats

    def table_statistics(
        self, table_name: str, database: Optional[str] = None
    ) -> TableStatistics:
        info = self.table_info(table_name, database)
        return TableStatistics(info.cardinality, {}, info.avg_row_width)

    # -- delayed schema validation (Section 4.1.5) ----------------------------
    def validate_schema_version(
        self, table_name: str, database: Optional[str] = None
    ) -> None:
        """Re-read the remote schema version; raises when the cached
        plan was compiled against a stale schema."""
        key = (database.lower() if database else None, table_name.lower())
        with self._cache_lock:
            cached = self._table_cache.get(key)
        if cached is None:
            return
        try:
            fresh = self.table_info(
                table_name, database, refresh=True, allow_stale=False
            )
        except ServerUnavailableError as error:
            raise ServerUnavailableError(
                f"cannot validate schema of {self.name}.{table_name}: "
                f"{error}"
            ) from error
        if fresh.schema_version != cached.schema_version:
            raise SchemaValidationError(
                f"schema of {self.name}.{table_name} changed "
                f"(v{cached.schema_version} -> v{fresh.schema_version}); "
                "recompile the statement"
            )
        # keep the fresh copy cached
        with self._cache_lock:
            self._table_cache[key] = fresh

    def invalidate_metadata(
        self, table_name: Optional[str] = None, database: Optional[str] = None
    ) -> None:
        with self._cache_lock:
            if table_name is None:
                self._table_cache.clear()
            else:
                key = (
                    database.lower() if database else None,
                    table_name.lower(),
                )
                self._table_cache.pop(key, None)

    def __repr__(self) -> str:
        return f"LinkedServer({self.name} -> {self.datasource.provider_name})"
