"""The decoder: logical query trees → remote SQL text (Section 4.1.3).

"The decoder takes a logical query tree as its input and decodes it
into an equivalent SQL statement. ... When composing the SQL statement,
the decoder responds to different parameter settings of the connection
... e.g., the SQL dialect the remote sources support, data collation."

Operating over memo groups, the decoder implements Section 4.1.4's
framework extension: "not all logical alternatives in a specific group
may be remotable ... the implementation rule that transforms a logical
tree into a remote SQL statement requires special framework logic to
pick any remotable tree from the same group in the Memo."  Semi-joins,
for example, have "no direct SQL corollary" here and force the decoder
onto a sibling alternative.

Parameters decode to ``?`` markers; the corresponding expressions are
returned so the executor can bind them per execution (or per outer row
for parameterized remote joins).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.algebra.expressions import (
    AggregateCall,
    BinaryOp,
    ColumnId,
    ColumnRef,
    ContainsPredicate,
    FuncCall,
    InListOp,
    IsNullOp,
    LikeOp,
    Literal,
    NotOp,
    Parameter,
    ScalarExpr,
    ScalarSubquery,
)
from repro.algebra.logical import (
    Aggregate,
    EmptyTable,
    Get,
    Join,
    JoinKind,
    LogicalOp,
    Project,
    ProviderRowset,
    Select,
    Sort,
    Top,
    UnionAll,
    Values,
)
from repro.core.constraints import DomainTest
from repro.core.memo import Group
from repro.errors import DecoderError
from repro.oledb.properties import Operation, ProviderCapabilities


class DecodedQuery:
    """The decoder's output: SQL text + ordered parameter expressions."""

    __slots__ = ("sql_text", "params", "column_order", "tables")

    def __init__(
        self,
        sql_text: str,
        params: list[ScalarExpr],
        column_order: list[ColumnId],
        tables: list[str],
    ):
        self.sql_text = sql_text
        self.params = params
        self.column_order = column_order
        self.tables = tables

    def __repr__(self) -> str:
        return f"DecodedQuery({self.sql_text!r})"


class _FlatQuery:
    """One SELECT block being assembled."""

    def __init__(self) -> None:
        self.from_items: list[str] = []
        self.where: list[str] = []
        self.column_sql: Dict[ColumnId, str] = {}
        self.select_items: Optional[list[tuple[ColumnId, str]]] = None
        self.group_by: Optional[list[str]] = None
        self.order_by: Optional[list[str]] = None
        self.top: Optional[int] = None
        self.tables: list[str] = []

    @property
    def shaped(self) -> bool:
        """Has projection/grouping been fixed (further merging limited)?"""
        return self.select_items is not None or self.group_by is not None


class Decoder:
    """Decodes logical trees for one target provider."""

    def __init__(self, capabilities: ProviderCapabilities, server_name: str):
        self.capabilities = capabilities
        self.server_name = server_name
        self.collation = capabilities.collation
        self._params: list[ScalarExpr] = []
        self._derived_counter = 0

    # ==================================================================
    def decode_group(self, group: Group) -> DecodedQuery:
        """Decode a memo group, trying each alternative ("pick any
        remotable tree from the same group")."""
        self._params = []
        flat = self._group_to_flat(group)
        output_ids = list(group.properties.output_ids)
        sql = self._render(flat, output_ids)
        return DecodedQuery(sql, list(self._params), output_ids, flat.tables)

    def decode_tree(self, op: LogicalOp) -> DecodedQuery:
        """Decode a standalone logical tree (children are LogicalOps)."""
        self._params = []
        flat = self._op_to_flat(op, self._tree_child_to_flat)
        output_ids = list(op.output_ids())
        sql = self._render(flat, output_ids)
        return DecodedQuery(sql, list(self._params), output_ids, flat.tables)

    # ==================================================================
    # group plumbing
    # ==================================================================
    def _group_to_flat(self, group: Group) -> _FlatQuery:
        last_error: Optional[DecoderError] = None
        for expression in group.expressions:
            saved_params = list(self._params)
            try:
                return self._op_to_flat(
                    expression.op,
                    self._memo_child_to_flat,
                    expression.children,
                )
            except DecoderError as exc:
                self._params = saved_params
                last_error = exc
        raise last_error or DecoderError(
            f"group g{group.gid} has no remotable alternative"
        )

    def _memo_child_to_flat(self, child: Any) -> _FlatQuery:
        return self._group_to_flat(child)

    def _tree_child_to_flat(self, child: Any) -> _FlatQuery:
        return self._op_to_flat(child, self._tree_child_to_flat)

    # ==================================================================
    # per-operator decoding
    # ==================================================================
    def _op_to_flat(
        self,
        op: LogicalOp,
        child_fn,
        memo_children: Optional[tuple] = None,
    ) -> _FlatQuery:
        children = memo_children if memo_children is not None else op.inputs
        if isinstance(op, Get):
            return self._decode_get(op)
        if isinstance(op, Select):
            self._require(Operation.RESTRICT, "restriction")
            flat = child_fn(children[0])
            if flat.shaped:
                flat = self._wrap(flat)
            flat.where.append(self._expr(op.predicate, flat.column_sql))
            return flat
        if isinstance(op, Project):
            self._require(Operation.PROJECT, "projection")
            flat = child_fn(children[0])
            if flat.shaped and flat.group_by is None:
                flat = self._wrap(flat)
            items = []
            for cid, expr in op.outputs:
                items.append((cid, self._expr(expr, flat.column_sql)))
            flat.select_items = items
            for cid, text in items:
                flat.column_sql[cid] = text
            return flat
        if isinstance(op, Join):
            return self._decode_join(op, child_fn, children)
        if isinstance(op, Aggregate):
            return self._decode_aggregate(op, child_fn, children)
        if isinstance(op, Sort):
            self._require(Operation.SORT, "sorting")
            flat = child_fn(children[0])
            flat.order_by = [
                self._order_key(k.cid, k.ascending, flat) for k in op.keys
            ]
            return flat
        if isinstance(op, Top):
            self._require(Operation.TOP, "TOP")
            flat = child_fn(children[0])
            flat.top = op.count
            return flat
        if isinstance(op, UnionAll):
            return self._decode_union(op, child_fn, children)
        if isinstance(op, (Values, EmptyTable, ProviderRowset)):
            raise DecoderError(
                f"{type(op).__name__} has no remote SQL form"
            )
        raise DecoderError(f"cannot decode {type(op).__name__}")

    def _decode_get(self, op: Get) -> _FlatQuery:
        table = op.table
        if table.server != self.server_name:
            raise DecoderError(
                f"table {table.qualified_name} is not on server "
                f"{self.server_name}"
            )
        quote = self.collation.quote_identifier
        name_parts = []
        if table.database:
            name_parts.append(quote(table.database))
        if table.schema_name:
            name_parts.append(quote(table.schema_name))
        name_parts.append(quote(table.table_name))
        self._derived_counter += 1
        alias = f"t{self._derived_counter}_{table.alias}"
        flat = _FlatQuery()
        flat.from_items.append(f"{'.'.join(name_parts)} AS {quote(alias)}")
        flat.tables.append((table.database, table.table_name))
        for definition in table.columns:
            flat.column_sql[definition.cid] = (
                f"{quote(alias)}.{quote(definition.name)}"
            )
        return flat

    def _decode_join(self, op: Join, child_fn, children) -> _FlatQuery:
        if op.kind in (JoinKind.SEMI, JoinKind.ANTI_SEMI):
            # "the use of an abstract operator (such as a semi-join)
            # with no direct SQL corollary" — force a sibling alternative
            raise DecoderError("semi-join has no direct SQL corollary")
        self._require(Operation.JOIN, "join")
        left = child_fn(children[0])
        right = child_fn(children[1])
        if left.shaped or left.order_by or left.top:
            left = self._wrap(left)
        if right.shaped or right.order_by or right.top:
            right = self._wrap(right)
        flat = _FlatQuery()
        flat.tables = left.tables + right.tables
        flat.column_sql = {**left.column_sql, **right.column_sql}
        condition_sql = (
            self._expr(op.condition, flat.column_sql)
            if op.condition is not None
            else None
        )
        if op.kind == JoinKind.LEFT_OUTER:
            if len(left.from_items) > 1 or left.where:
                left = self._wrap(left)
                flat.column_sql.update(left.column_sql)
            if len(right.from_items) > 1 or right.where:
                right = self._wrap(right)
                flat.column_sql.update(right.column_sql)
            condition_sql = (
                self._expr(op.condition, flat.column_sql)
                if op.condition is not None
                else "1=1"
            )
            flat.from_items = [
                f"{left.from_items[0]} LEFT OUTER JOIN {right.from_items[0]} "
                f"ON {condition_sql}"
            ]
            flat.where = []
            return flat
        # inner/cross: comma-join + WHERE keeps the text canonical
        flat.from_items = left.from_items + right.from_items
        flat.where = left.where + right.where
        if condition_sql is not None:
            flat.where.append(condition_sql)
        return flat

    def _decode_aggregate(self, op: Aggregate, child_fn, children) -> _FlatQuery:
        self._require(Operation.GROUP_BY, "GROUP BY")
        self._require(Operation.AGGREGATE, "aggregation")
        flat = child_fn(children[0])
        if flat.shaped:
            flat = self._wrap(flat)
        items: list[tuple[ColumnId, str]] = []
        group_sql: list[str] = []
        for cid in op.group_by:
            text = flat.column_sql.get(cid)
            if text is None:
                raise DecoderError(f"group key #{cid} not in scope")
            items.append((cid, text))
            group_sql.append(text)
        for aggregate in op.aggregates:
            items.append(
                (aggregate.output_cid, self._aggregate(aggregate, flat.column_sql))
            )
        flat.select_items = items
        flat.group_by = group_sql
        for cid, text in items:
            flat.column_sql[cid] = text
        return flat

    def _decode_union(self, op: UnionAll, child_fn, children) -> _FlatQuery:
        self._require(Operation.UNION, "UNION ALL")
        quote = self.collation.quote_identifier
        branch_sqls = []
        for child, branch_map in zip(children, op.branch_maps):
            branch_flat = child_fn(child)
            ordered = []
            for definition in op.output_defs:
                branch_cid = branch_map[definition.cid]
                text = branch_flat.column_sql.get(branch_cid)
                if text is None:
                    raise DecoderError(
                        f"union branch misses column #{branch_cid}"
                    )
                ordered.append((definition.cid, f"{text} AS {quote(self._col_name(definition.cid))}"))
            branch_sqls.append(
                self._render_with_items(
                    branch_flat, [text for __, text in ordered]
                )
            )
        self._derived_counter += 1
        alias = f"u{self._derived_counter}"
        flat = _FlatQuery()
        flat.from_items.append(
            "(" + " UNION ALL ".join(branch_sqls) + f") AS {quote(alias)}"
        )
        for definition in op.output_defs:
            flat.column_sql[definition.cid] = (
                f"{quote(alias)}.{quote(self._col_name(definition.cid))}"
            )
        return flat

    # ==================================================================
    # rendering
    # ==================================================================
    @staticmethod
    def _col_name(cid: ColumnId) -> str:
        return f"c{cid}"

    def _wrap(self, flat: _FlatQuery) -> _FlatQuery:
        """Close a shaped block into a derived table."""
        if not self.capabilities.supports_nested_select:
            raise DecoderError(
                f"provider on {self.server_name} does not support nested "
                "SELECT statements"
            )
        quote = self.collation.quote_identifier
        inner_ids = (
            [cid for cid, __ in flat.select_items]
            if flat.select_items is not None
            else list(flat.column_sql)
        )
        # a column id may appear twice in the select list (SELECT a, a);
        # the derived table must expose it once or references to its
        # alias become ambiguous when the remote side re-binds
        inner_ids = list(dict.fromkeys(inner_ids))
        sql = self._render(flat, inner_ids)
        self._derived_counter += 1
        alias = f"d{self._derived_counter}"
        out = _FlatQuery()
        out.tables = list(flat.tables)
        out.from_items.append(f"({sql}) AS {quote(alias)}")
        for cid in inner_ids:
            out.column_sql[cid] = f"{quote(alias)}.{quote(self._col_name(cid))}"
        return out

    def _render(self, flat: _FlatQuery, output_ids: Sequence[ColumnId]) -> str:
        quote = self.collation.quote_identifier
        if flat.select_items is not None:
            chosen = {cid: text for cid, text in flat.select_items}
        else:
            chosen = flat.column_sql
        items = []
        for cid in output_ids:
            text = chosen.get(cid) or flat.column_sql.get(cid)
            if text is None:
                raise DecoderError(f"output column #{cid} not decodable")
            items.append(f"{text} AS {quote(self._col_name(cid))}")
        return self._render_with_items(flat, items)

    def _render_with_items(self, flat: _FlatQuery, items: list[str]) -> str:
        parts = ["SELECT"]
        if flat.top is not None:
            parts.append(f"TOP {flat.top}")
        parts.append(", ".join(items))
        if flat.from_items:
            parts.append("FROM " + ", ".join(flat.from_items))
        if flat.where:
            parts.append(
                "WHERE " + " AND ".join(f"({w})" for w in flat.where)
            )
        if flat.group_by:
            parts.append("GROUP BY " + ", ".join(flat.group_by))
        if flat.order_by:
            parts.append("ORDER BY " + ", ".join(flat.order_by))
        return " ".join(parts)

    def _order_key(
        self, cid: ColumnId, ascending: bool, flat: _FlatQuery
    ) -> str:
        # keys that are select items order by their output alias (the
        # receiving SQL front end resolves aliases, not arbitrary
        # expressions, after grouping)
        if flat.select_items is not None and any(
            item_cid == cid for item_cid, __ in flat.select_items
        ):
            text = self.collation.quote_identifier(self._col_name(cid))
        else:
            text = flat.column_sql.get(cid)
        if text is None:
            raise DecoderError(f"order key #{cid} not in scope")
        return text if ascending else f"{text} DESC"

    # ==================================================================
    # scalar expressions
    # ==================================================================
    def _require(self, operation: Operation, label: str) -> None:
        if not self.capabilities.can_remote(operation):
            raise DecoderError(
                f"provider on {self.server_name} cannot remote {label} "
                f"(level {self.capabilities.sql_support.name})"
            )

    def _expr(self, expr: ScalarExpr, column_sql: Dict[ColumnId, str]) -> str:
        if isinstance(expr, Literal):
            return self._literal(expr)
        if isinstance(expr, ColumnRef):
            text = column_sql.get(expr.cid)
            if text is None:
                raise DecoderError(
                    f"column {expr.display} (#{expr.cid}) not available on "
                    f"server {self.server_name}"
                )
            return text
        if isinstance(expr, Parameter):
            self._params.append(expr)
            return "?"
        if isinstance(expr, BinaryOp):
            left = self._expr(expr.left, column_sql)
            right = self._expr(expr.right, column_sql)
            return f"({left} {expr.op} {right})"
        if isinstance(expr, NotOp):
            return f"(NOT {self._expr(expr.operand, column_sql)})"
        if isinstance(expr, IsNullOp):
            middle = "IS NOT NULL" if expr.negated else "IS NULL"
            return f"({self._expr(expr.operand, column_sql)} {middle})"
        if isinstance(expr, InListOp):
            items = ", ".join(self._expr(i, column_sql) for i in expr.items)
            middle = "NOT IN" if expr.negated else "IN"
            return f"({self._expr(expr.operand, column_sql)} {middle} ({items}))"
        if isinstance(expr, LikeOp):
            middle = "NOT LIKE" if expr.negated else "LIKE"
            return (
                f"({self._expr(expr.operand, column_sql)} {middle} "
                f"{self._expr(expr.pattern, column_sql)})"
            )
        if isinstance(expr, FuncCall):
            return self._function(expr, column_sql)
        if isinstance(expr, (ContainsPredicate, DomainTest, ScalarSubquery)):
            raise DecoderError(
                f"{type(expr).__name__} cannot be decoded into remote SQL"
            )
        raise DecoderError(f"cannot decode expression {type(expr).__name__}")

    def _function(self, expr: FuncCall, column_sql: Dict[ColumnId, str]) -> str:
        args = [self._expr(a, column_sql) for a in expr.args]
        translations = {
            "upper": "UPPER",
            "lower": "LOWER",
            "abs": "ABS",
            "len": "LEN",
            "year": "YEAR",
        }
        if expr.name in translations:
            return f"{translations[expr.name]}({', '.join(args)})"
        raise DecoderError(f"function {expr.name}() has no remote SQL form")

    def _aggregate(
        self, aggregate: AggregateCall, column_sql: Dict[ColumnId, str]
    ) -> str:
        name = aggregate.func.upper()
        if aggregate.argument is None:
            inner = "*"
        else:
            inner = self._expr(aggregate.argument, column_sql)
        distinct = "DISTINCT " if aggregate.distinct else ""
        return f"{name}({distinct}{inner})"

    def _literal(self, literal: Literal) -> str:
        import datetime as _dt

        value = literal.value
        if value is None:
            return "NULL"
        if isinstance(value, (_dt.date, _dt.datetime)):
            iso = (
                value.isoformat(sep=" ")
                if isinstance(value, _dt.datetime)
                else value.isoformat()
            )
            if self.capabilities.date_literal_format == "odbc":
                marker = "ts" if isinstance(value, _dt.datetime) else "d"
                return f"{{{marker} '{iso}'}}"
            return f"'{iso}'"
        return literal.type.render_literal(value)
