"""The constraint property framework (Section 4.1.5).

"Constraint properties leverage ... [the] optimization property
framework to support tracking the domain of all scalar expressions.
Domain restrictions track possible values for scalar expressions at
each point in the query tree."

This module derives :class:`~repro.types.intervals.IntervalSet` domains
from predicates, implements the compile-time contradiction test behind
*static pruning* ("Since there is no overlap between [20,20] and
(50,+inf], the predicate can be reduced to a constant false value"),
and builds the *startup filter* predicates used for runtime pruning
when the domain involves parameters.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.algebra.expressions import (
    BinaryOp,
    ColumnId,
    ColumnRef,
    Compiled,
    InListOp,
    IsNullOp,
    Layout,
    Literal,
    NotOp,
    Parameter,
    ScalarExpr,
    conjuncts,
    COMPARISON_OPS,
)
from repro.types.intervals import IntervalSet


class DomainTest(ScalarExpr):
    """A startup-filter predicate: can ``probe <op> column`` be true for
    any column value in ``domain``?

    ``probe`` must reference no columns (parameters and literals only),
    so the test is evaluable before the input subtree runs — the
    defining property of a startup filter.
    """

    from repro.types.datatypes import BOOL as _BOOL

    type = _BOOL

    def __init__(self, probe: ScalarExpr, op: str, domain: IntervalSet):
        if probe.references():
            raise ValueError("DomainTest probe must not reference columns")
        self.probe = probe
        self.op = op  # the original comparison: column <op> probe
        self.domain = domain

    def children(self) -> tuple[ScalarExpr, ...]:
        return (self.probe,)

    def references(self) -> frozenset[ColumnId]:
        return frozenset()

    def compile(self, layout: Layout) -> Compiled:
        probe = self.probe.compile(layout)
        op = self.op
        domain = self.domain

        def evaluate(row: Sequence[Any], params: Dict[str, Any]) -> Any:
            value = probe(row, params)
            if value is None:
                return None
            requested = IntervalSet.from_comparison(op, value)
            return not requested.disjoint_from(domain)

        return evaluate

    def substitute(self, mapping: Dict[ColumnId, ScalarExpr]) -> ScalarExpr:
        return self

    def sql_key(self) -> tuple:
        return ("domain_test", self.op, self.probe.sql_key(), self.domain)

    def __repr__(self) -> str:
        return f"STARTUP({self.probe!r} {self.op} domain {self.domain!r})"


def comparison_domain(conjunct: ScalarExpr) -> Optional[tuple[ColumnId, IntervalSet]]:
    """The (column, domain) a *constant* comparison conjunct implies.

    Handles ``col <op> literal`` (either orientation), ``col IN
    (literals)``, ``col BETWEEN`` (already desugared to AND), and
    ``col IS NULL``/``IS NOT NULL`` (mapped to empty/full since domains
    track non-NULL values).  Returns None for conjuncts that imply no
    constant domain (parameters, column-to-column comparisons, ORs).
    """
    if isinstance(conjunct, BinaryOp) and conjunct.op in COMPARISON_OPS:
        left, right = conjunct.left, conjunct.right
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            return left.cid, IntervalSet.from_comparison(conjunct.op, right.value)
        if isinstance(right, ColumnRef) and isinstance(left, Literal):
            flipped = conjunct.flipped()
            return right.cid, IntervalSet.from_comparison(
                flipped.op, left.value
            )
        return None
    if isinstance(conjunct, InListOp) and not conjunct.negated:
        if isinstance(conjunct.operand, ColumnRef) and all(
            isinstance(item, Literal) for item in conjunct.items
        ):
            values = [item.value for item in conjunct.items if item.value is not None]
            return conjunct.operand.cid, IntervalSet.points(values)
        return None
    if isinstance(conjunct, IsNullOp):
        # domains track non-NULL values only; IS [NOT] NULL constrains
        # nothing expressible here (IS NULL rows are invisible to the
        # domain, so returning empty would wrongly prune them)
        return None
    if isinstance(conjunct, BinaryOp) and conjunct.op == "OR":
        # OR of domains over the same column unions (the paper's
        # "CustomerId IN (1, 5) OR CustomerId BETWEEN 50 AND 100")
        left = _domain_of_boolean(conjunct.left)
        right = _domain_of_boolean(conjunct.right)
        if left is not None and right is not None and left[0] == right[0]:
            return left[0], left[1].union(right[1])
        return None
    return None


def _domain_of_boolean(expr: ScalarExpr) -> Optional[tuple[ColumnId, IntervalSet]]:
    """Domain of an arbitrary boolean expr over one column (AND
    intersects, OR unions); None when mixed columns or opaque."""
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        left = _domain_of_boolean(expr.left)
        right = _domain_of_boolean(expr.right)
        if left is None or right is None or left[0] != right[0]:
            return None
        return left[0], left[1].intersect(right[1])
    if isinstance(expr, BinaryOp) and expr.op == "OR":
        left = _domain_of_boolean(expr.left)
        right = _domain_of_boolean(expr.right)
        if left is None or right is None or left[0] != right[0]:
            return None
        return left[0], left[1].union(right[1])
    return comparison_domain(expr)


def derive_domains(predicate: Optional[ScalarExpr]) -> Dict[ColumnId, IntervalSet]:
    """Column domains implied by a predicate's constant conjuncts.

    Multiple conjuncts on the same column intersect ("Each relational
    operation can modify the valid domain for a scalar expression").
    """
    domains: Dict[ColumnId, IntervalSet] = {}
    for conjunct in conjuncts(predicate):
        implied = comparison_domain(conjunct)
        if implied is None:
            continue
        cid, domain = implied
        existing = domains.get(cid)
        domains[cid] = domain if existing is None else existing.intersect(domain)
    return domains


def contradicts(
    predicate_domains: Dict[ColumnId, IntervalSet],
    base_domains: Dict[ColumnId, IntervalSet],
) -> bool:
    """Static pruning test: is some column's requested domain disjoint
    from its base (CHECK-constraint) domain?"""
    for cid, requested in predicate_domains.items():
        if requested.is_empty():
            return True
        base = base_domains.get(cid)
        if base is not None and requested.disjoint_from(base):
            return True
    return False


def parameter_comparisons(
    predicate: Optional[ScalarExpr],
) -> list[tuple[ColumnId, str, ScalarExpr]]:
    """Conjuncts of shape ``col <op> param-expr`` (no column refs on the
    probe side) — the raw material for startup filters."""
    out: list[tuple[ColumnId, str, ScalarExpr]] = []
    for conjunct in conjuncts(predicate):
        if not (
            isinstance(conjunct, BinaryOp) and conjunct.op in COMPARISON_OPS
        ):
            continue
        left, right = conjunct.left, conjunct.right
        if isinstance(left, ColumnRef) and not right.references() and right.parameters():
            out.append((left.cid, conjunct.op, right))
        elif (
            isinstance(right, ColumnRef)
            and not left.references()
            and left.parameters()
        ):
            flipped = conjunct.flipped()
            out.append((right.cid, flipped.op, flipped.right))
    return out


def startup_conjuncts(predicate: Optional[ScalarExpr]) -> tuple[
    list[ScalarExpr], list[ScalarExpr]
]:
    """Split a predicate into (startup, residual) conjunct lists.

    Startup conjuncts reference no columns ("A startup filter predicate
    can not contain any references to columns or values in its input
    tree") — DomainTests and pure parameter/constant comparisons.
    """
    startup: list[ScalarExpr] = []
    residual: list[ScalarExpr] = []
    for conjunct in conjuncts(predicate):
        if not conjunct.references():
            startup.append(conjunct)
        else:
            residual.append(conjunct)
    return startup, residual
