"""The DHQP core: the paper's primary contribution.

* :mod:`linked_server` — linked servers (Section 2.1): named bindings
  of OLE DB data sources, with capability, schema, statistics, and
  check-constraint discovery through the provider interfaces.
* :mod:`memo` — the Cascades memo: groups of equivalent alternatives.
* :mod:`properties` — group (logical) properties: output columns, keys,
  cardinality, and constraint (domain) properties.
* :mod:`constraints` — the constraint property framework: deriving
  interval-set domains from predicates, static pruning, startup-filter
  extraction (Section 4.1.5).
* :mod:`physical` — physical operators, local and remote.
* :mod:`cost` — the cost model, including the remote cost model based
  on output cardinality (Section 4.1.3).
* :mod:`decoder` — logical trees back into dialect-compliant SQL text.
* :mod:`rules` — simplification / exploration / implementation /
  enforcer rules, local and remote (Sections 4.1.1–4.1.2).
* :mod:`optimizer` — the phased search driver (transaction processing,
  quick plan, full optimization).
"""

from repro.core.linked_server import LinkedServer, RemoteTableInfo
from repro.core.memo import Memo, Group, GroupExpression
from repro.core.optimizer import Optimizer, OptimizationResult, OptimizerOptions
from repro.core.physical import PhysicalOp
from repro.core.cost import Cost, CostModel

__all__ = [
    "LinkedServer",
    "RemoteTableInfo",
    "Memo",
    "Group",
    "GroupExpression",
    "Optimizer",
    "OptimizationResult",
    "OptimizerOptions",
    "PhysicalOp",
    "Cost",
    "CostModel",
]
