"""Physical operators.

Implementation rules turn logical alternatives into these; the executor
(:mod:`repro.execution`) interprets them.  Each node is a concrete plan
fragment: children are physical nodes, and every node carries its cost
estimate, row estimate, and the sort order it *provides* (the physical
plan property of Section 4.1.1).

Remote access paths mirror Section 4.1.2's implementation rules:
``RemoteQuery`` (build remote query), ``RemoteScan`` / ``RemoteRange``
/ ``RemoteFetch`` (remote table access via scan / index / bookmark),
and ``Spool`` ("spool over remote operation").
"""

from __future__ import annotations

import zlib
from typing import Any, Optional, Sequence

from repro.algebra.expressions import (
    AggregateCall,
    ColumnDef,
    ColumnId,
    ScalarExpr,
)
from repro.algebra.logical import SortKeySpec, TableRef


class PhysicalOp:
    """Base physical plan node."""

    def __init__(self, children: Sequence["PhysicalOp"] = ()):
        self.children = list(children)
        #: filled by the optimizer
        self.cost: float = 0.0
        self.est_rows: float = 0.0
        #: filled by the resource governor before execution (KB of
        #: workspace memory this operator is estimated to materialize)
        self.est_memory_kb: float = 0.0

    def output_ids(self) -> tuple[ColumnId, ...]:
        raise NotImplementedError

    def provided_sort(self) -> tuple[tuple[ColumnId, bool], ...]:
        """(cid, ascending) keys this operator's output is ordered by."""
        return ()

    def fingerprint_atoms(self) -> tuple:
        """Identity attributes for plan fingerprinting.

        Subclasses expose what determines *where and how* the operator
        runs — table names, index names, server names, pushed SQL text,
        join kinds — and nothing volatile: no costs, no row estimates,
        no column ids (the optimizer mints fresh cids per compile, so a
        fingerprint that included them would never match across
        executions of the same statement).
        """
        return ()

    def fingerprint_name(self) -> str:
        """Operator name used in plan fingerprints.

        Defaults to the class name; parallel exchange operators report
        their *serial* shape (``Gather`` → ``Concat``) so fingerprints
        ignore the degree of parallelism — toggling ``PARALLEL_DOP``
        must not read as a plan regression in the Query Store.
        """
        return type(self).__name__

    @property
    def rescan_cost(self) -> float:
        """Cost of producing the rows again (re-open).  Spools override."""
        return self.cost

    def tree_repr(self, indent: int = 0) -> str:
        lines = ["  " * indent + repr(self)]
        for child in self.children:
            lines.append(child.tree_repr(indent + 1))
        return "\n".join(lines)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(rows={self.est_rows:.1f}, "
            f"cost={self.cost:.3f})"
        )


# ----------------------------------------------------------------------
# leaf access paths
# ----------------------------------------------------------------------

class TableScan(PhysicalOp):
    """Sequential scan of a local table."""

    def __init__(self, table: TableRef):
        super().__init__()
        self.table = table

    def output_ids(self) -> tuple[ColumnId, ...]:
        return self.table.column_ids()

    def fingerprint_atoms(self) -> tuple:
        return (self.table.qualified_name,)

    def __repr__(self) -> str:
        return f"TableScan({self.table.qualified_name}, rows={self.est_rows:.1f}, cost={self.cost:.3f})"


class IndexRange(PhysicalOp):
    """Local index seek/range + bookmark fetch; provides key order.

    ``dynamic_probe`` supports parameterized seeks: a (comparison op,
    column-free expression) pair whose value narrows the domain at open
    time, so ``WHERE id = @p`` seeks instead of scanning.
    """

    def __init__(
        self,
        table: TableRef,
        index_name: str,
        key_cid: ColumnId,
        domain: Any,  # IntervalSet
        residual: Optional[ScalarExpr] = None,
        dynamic_probe: Optional[tuple[str, ScalarExpr]] = None,
    ):
        super().__init__()
        self.table = table
        self.index_name = index_name
        self.key_cid = key_cid
        self.domain = domain
        self.residual = residual
        self.dynamic_probe = dynamic_probe

    def output_ids(self) -> tuple[ColumnId, ...]:
        return self.table.column_ids()

    def provided_sort(self) -> tuple[tuple[ColumnId, bool], ...]:
        return ((self.key_cid, True),)

    def fingerprint_atoms(self) -> tuple:
        return (
            self.table.qualified_name,
            self.index_name,
            self.dynamic_probe is not None,
        )

    def __repr__(self) -> str:
        return (
            f"IndexRange({self.table.qualified_name}.{self.index_name}, "
            f"{self.domain!r}, rows={self.est_rows:.1f}, cost={self.cost:.3f})"
        )


class RemoteScan(PhysicalOp):
    """Full scan of a remote table through IOpenRowset ("remote scan is
    simply a sequential scan on remote table")."""

    def __init__(self, table: TableRef):
        super().__init__()
        self.table = table

    def output_ids(self) -> tuple[ColumnId, ...]:
        return self.table.column_ids()

    def fingerprint_atoms(self) -> tuple:
        return (self.table.server, self.table.qualified_name)

    def __repr__(self) -> str:
        return f"RemoteScan({self.table.qualified_name}, rows={self.est_rows:.1f}, cost={self.cost:.3f})"


class RemoteRange(PhysicalOp):
    """Remote index access: IRowsetIndex set-range + IRowsetLocate
    bookmark fetch ("remote range accesses a remote table via indexes,
    and remote fetch accesses a remote table via bookmark")."""

    def __init__(
        self,
        table: TableRef,
        index_name: str,
        key_cid: ColumnId,
        domain: Any,  # IntervalSet
        residual: Optional[ScalarExpr] = None,
    ):
        super().__init__()
        self.table = table
        self.index_name = index_name
        self.key_cid = key_cid
        self.domain = domain
        self.residual = residual

    def output_ids(self) -> tuple[ColumnId, ...]:
        return self.table.column_ids()

    def provided_sort(self) -> tuple[tuple[ColumnId, bool], ...]:
        return ((self.key_cid, True),)

    def fingerprint_atoms(self) -> tuple:
        return (self.table.server, self.table.qualified_name, self.index_name)

    def __repr__(self) -> str:
        return (
            f"RemoteRange({self.table.qualified_name}.{self.index_name}, "
            f"{self.domain!r}, rows={self.est_rows:.1f}, cost={self.cost:.3f})"
        )


class RemoteQuery(PhysicalOp):
    """A SQL statement pushed to a linked server (the "build remote
    query" rule): executes ``sql_text`` via ICommand and consumes the
    rowset.  ``param_exprs`` fill ``?`` markers at open time — for plain
    parameters from the query's parameter bag, for parameterized
    remote joins from the current outer row."""

    def __init__(
        self,
        server: Any,  # LinkedServer
        sql_text: str,
        out_ids: Sequence[ColumnId],
        param_exprs: Sequence[ScalarExpr] = (),
        tables_referenced: Sequence[str] = (),
    ):
        super().__init__()
        self.server = server
        self.sql_text = sql_text
        self.out_ids = tuple(out_ids)
        self.param_exprs = tuple(param_exprs)
        #: remote table names, for delayed schema validation
        self.tables_referenced = tuple(tables_referenced)

    def output_ids(self) -> tuple[ColumnId, ...]:
        return self.out_ids

    def fingerprint_atoms(self) -> tuple:
        return (self.server.name, self.sql_text, len(self.param_exprs))

    def __repr__(self) -> str:
        return (
            f"RemoteQuery({self.server.name}: {self.sql_text!r}, "
            f"rows={self.est_rows:.1f}, cost={self.cost:.3f})"
        )


class ProviderRowsetScan(PhysicalOp):
    """Execute an opaque provider rowset (OPENROWSET / OPENQUERY /
    MakeTable)."""

    def __init__(self, node: Any):  # algebra.logical.ProviderRowset
        super().__init__()
        self.node = node

    def output_ids(self) -> tuple[ColumnId, ...]:
        return self.node.output_ids()

    def fingerprint_atoms(self) -> tuple:
        return (self.node.label,)

    def __repr__(self) -> str:
        return f"ProviderRowsetScan({self.node.label}, rows={self.est_rows:.1f}, cost={self.cost:.3f})"


class ConstScan(PhysicalOp):
    """Constant rows (VALUES) or the empty table."""

    def __init__(
        self,
        rows: Sequence[Sequence[ScalarExpr]],
        column_defs: Sequence[ColumnDef],
    ):
        super().__init__()
        self.rows = [tuple(r) for r in rows]
        self.column_defs = tuple(column_defs)

    def output_ids(self) -> tuple[ColumnId, ...]:
        return tuple(d.cid for d in self.column_defs)

    def __repr__(self) -> str:
        return f"ConstScan({len(self.rows)} rows)"


class FullTextKeyLookup(PhysicalOp):
    """The external search-service lookup of Figure 2: evaluates a
    CONTAINS query against a relational full-text catalog and returns
    (KEY, RANK) rows keyed by ``key_cid``/``rank_cid``."""

    def __init__(self, binding: Any, query_text: str, key_cid: ColumnId, rank_cid: ColumnId):
        super().__init__()
        self.binding = binding
        self.query_text = query_text
        self.key_cid = key_cid
        self.rank_cid = rank_cid

    def output_ids(self) -> tuple[ColumnId, ...]:
        return (self.key_cid, self.rank_cid)

    def fingerprint_atoms(self) -> tuple:
        return (self.query_text,)

    def __repr__(self) -> str:
        return f"FullTextKeyLookup({self.query_text!r}, rows={self.est_rows:.1f})"


# ----------------------------------------------------------------------
# unary operators
# ----------------------------------------------------------------------

class Filter(PhysicalOp):
    def __init__(self, child: PhysicalOp, predicate: ScalarExpr):
        super().__init__([child])
        self.predicate = predicate

    @property
    def child(self) -> PhysicalOp:
        return self.children[0]

    def output_ids(self) -> tuple[ColumnId, ...]:
        return self.child.output_ids()

    def provided_sort(self) -> tuple[tuple[ColumnId, bool], ...]:
        return self.child.provided_sort()

    def __repr__(self) -> str:
        return f"Filter({self.predicate!r}, rows={self.est_rows:.1f}, cost={self.cost:.3f})"


class StartupFilter(PhysicalOp):
    """Runtime pruning (Section 4.1.5): evaluate a column-free predicate
    *before* opening the child; skip the whole subtree when false."""

    def __init__(self, child: PhysicalOp, predicate: ScalarExpr):
        super().__init__([child])
        self.predicate = predicate

    @property
    def child(self) -> PhysicalOp:
        return self.children[0]

    def output_ids(self) -> tuple[ColumnId, ...]:
        return self.child.output_ids()

    def provided_sort(self) -> tuple[tuple[ColumnId, bool], ...]:
        return self.child.provided_sort()

    def __repr__(self) -> str:
        return f"StartupFilter({self.predicate!r}, cost={self.cost:.3f})"


class ComputeProject(PhysicalOp):
    def __init__(
        self,
        child: PhysicalOp,
        outputs: Sequence[tuple[ColumnId, ScalarExpr]],
    ):
        super().__init__([child])
        self.outputs = tuple(outputs)

    @property
    def child(self) -> PhysicalOp:
        return self.children[0]

    def output_ids(self) -> tuple[ColumnId, ...]:
        return tuple(cid for cid, __ in self.outputs)

    def provided_sort(self) -> tuple[tuple[ColumnId, bool], ...]:
        # order survives projection for pass-through columns
        passthrough = {
            expr.cid: cid
            for cid, expr in self.outputs
            if hasattr(expr, "cid")
        }
        out = []
        for cid, ascending in self.child.provided_sort():
            if cid in passthrough:
                out.append((passthrough[cid], ascending))
            elif cid in self.output_ids():
                out.append((cid, ascending))
            else:
                break
        return tuple(out)

    def __repr__(self) -> str:
        return f"ComputeProject({len(self.outputs)} cols, rows={self.est_rows:.1f}, cost={self.cost:.3f})"


class PhysicalSort(PhysicalOp):
    """The sort enforcer's output."""

    def __init__(self, child: PhysicalOp, keys: Sequence[SortKeySpec]):
        super().__init__([child])
        self.keys = tuple(keys)

    @property
    def child(self) -> PhysicalOp:
        return self.children[0]

    def output_ids(self) -> tuple[ColumnId, ...]:
        return self.child.output_ids()

    def provided_sort(self) -> tuple[tuple[ColumnId, bool], ...]:
        return tuple((k.cid, k.ascending) for k in self.keys)

    def fingerprint_atoms(self) -> tuple:
        return tuple(k.ascending for k in self.keys)

    def __repr__(self) -> str:
        return f"Sort({list(self.keys)!r}, rows={self.est_rows:.1f}, cost={self.cost:.3f})"


class PhysicalTop(PhysicalOp):
    def __init__(self, child: PhysicalOp, count: int):
        super().__init__([child])
        self.count = count

    @property
    def child(self) -> PhysicalOp:
        return self.children[0]

    def output_ids(self) -> tuple[ColumnId, ...]:
        return self.child.output_ids()

    def provided_sort(self) -> tuple[tuple[ColumnId, bool], ...]:
        return self.child.provided_sort()

    def fingerprint_atoms(self) -> tuple:
        return (self.count,)

    def __repr__(self) -> str:
        return f"Top({self.count})"


class Spool(PhysicalOp):
    """Materialize once; cheap rescans (Section 4.1.4: "It is often
    beneficial to spool results from a remote source if multiple scans
    of the data are expected").  Also used for Halloween protection in
    update plans."""

    def __init__(self, child: PhysicalOp, reason: str = "rescan"):
        super().__init__([child])
        self.reason = reason
        #: set by the cost model at implementation time
        self.rescan_cost_value: float = 0.0

    @property
    def child(self) -> PhysicalOp:
        return self.children[0]

    def output_ids(self) -> tuple[ColumnId, ...]:
        return self.child.output_ids()

    @property
    def rescan_cost(self) -> float:
        return self.rescan_cost_value

    def cache_key(self):
        """Identity of the spooled data, stable across re-optimization.

        Remote children key on (server, query text / table) so a replan
        after a mid-query failure can reuse rows already spooled from a
        member that has since gone down.  Anything else keys on object
        identity, which never matches across plans — a safe default.
        """
        child = self.child
        if isinstance(child, RemoteQuery):
            return ("spool", child.server.name, child.sql_text)
        if isinstance(child, RemoteScan):
            return ("spool-scan", child.table.server, child.table.qualified_name)
        return id(self)

    def fingerprint_atoms(self) -> tuple:
        return (self.reason,)

    def __repr__(self) -> str:
        return f"Spool[{self.reason}](rows={self.est_rows:.1f}, cost={self.cost:.3f})"


class HashAggregate(PhysicalOp):
    def __init__(
        self,
        child: PhysicalOp,
        group_by: Sequence[ColumnId],
        aggregates: Sequence[AggregateCall],
    ):
        super().__init__([child])
        self.group_by = tuple(group_by)
        self.aggregates = tuple(aggregates)

    @property
    def child(self) -> PhysicalOp:
        return self.children[0]

    def output_ids(self) -> tuple[ColumnId, ...]:
        return self.group_by + tuple(a.output_cid for a in self.aggregates)

    def fingerprint_atoms(self) -> tuple:
        return (len(self.group_by), len(self.aggregates))

    def __repr__(self) -> str:
        return f"HashAggregate(by={self.group_by}, rows={self.est_rows:.1f}, cost={self.cost:.3f})"


class StreamAggregate(PhysicalOp):
    """Aggregation over input sorted by the group keys."""

    def __init__(
        self,
        child: PhysicalOp,
        group_by: Sequence[ColumnId],
        aggregates: Sequence[AggregateCall],
    ):
        super().__init__([child])
        self.group_by = tuple(group_by)
        self.aggregates = tuple(aggregates)

    @property
    def child(self) -> PhysicalOp:
        return self.children[0]

    def output_ids(self) -> tuple[ColumnId, ...]:
        return self.group_by + tuple(a.output_cid for a in self.aggregates)

    def provided_sort(self) -> tuple[tuple[ColumnId, bool], ...]:
        return tuple((cid, True) for cid in self.group_by)

    def fingerprint_atoms(self) -> tuple:
        return (len(self.group_by), len(self.aggregates))

    def __repr__(self) -> str:
        return f"StreamAggregate(by={self.group_by}, rows={self.est_rows:.1f}, cost={self.cost:.3f})"


# ----------------------------------------------------------------------
# joins
# ----------------------------------------------------------------------

class HashJoin(PhysicalOp):
    """Equi-join; right input builds, left probes.  ``kind`` covers
    inner / left_outer / semi / anti_semi."""

    def __init__(
        self,
        left: PhysicalOp,
        right: PhysicalOp,
        kind: str,
        left_keys: Sequence[ScalarExpr],
        right_keys: Sequence[ScalarExpr],
        residual: Optional[ScalarExpr] = None,
    ):
        super().__init__([left, right])
        self.kind = kind
        self.left_keys = tuple(left_keys)
        self.right_keys = tuple(right_keys)
        self.residual = residual

    @property
    def left(self) -> PhysicalOp:
        return self.children[0]

    @property
    def right(self) -> PhysicalOp:
        return self.children[1]

    def output_ids(self) -> tuple[ColumnId, ...]:
        if self.kind in ("semi", "anti_semi"):
            return self.left.output_ids()
        return self.left.output_ids() + self.right.output_ids()

    def provided_sort(self) -> tuple[tuple[ColumnId, bool], ...]:
        return self.left.provided_sort()

    def fingerprint_atoms(self) -> tuple:
        return (self.kind,)

    def __repr__(self) -> str:
        return f"HashJoin[{self.kind}](rows={self.est_rows:.1f}, cost={self.cost:.3f})"


class NLJoin(PhysicalOp):
    """Nested loops; re-opens the inner per outer row (hence the value
    of spooled inners over remote sources)."""

    def __init__(
        self,
        left: PhysicalOp,
        right: PhysicalOp,
        kind: str,
        condition: Optional[ScalarExpr] = None,
    ):
        super().__init__([left, right])
        self.kind = kind
        self.condition = condition

    @property
    def left(self) -> PhysicalOp:
        return self.children[0]

    @property
    def right(self) -> PhysicalOp:
        return self.children[1]

    def output_ids(self) -> tuple[ColumnId, ...]:
        if self.kind in ("semi", "anti_semi"):
            return self.left.output_ids()
        return self.left.output_ids() + self.right.output_ids()

    def provided_sort(self) -> tuple[tuple[ColumnId, bool], ...]:
        return self.left.provided_sort()

    def fingerprint_atoms(self) -> tuple:
        return (self.kind,)

    def __repr__(self) -> str:
        return f"NLJoin[{self.kind}](rows={self.est_rows:.1f}, cost={self.cost:.3f})"


class ParameterizedRemoteJoin(PhysicalOp):
    """The remote parameterization rule (Section 4.1.2): for each outer
    row, execute a parameterized query on the remote source, binding
    outer column values into the ``?`` markers of ``inner_query``."""

    def __init__(
        self,
        left: PhysicalOp,
        inner_query: RemoteQuery,
        kind: str,
        residual: Optional[ScalarExpr] = None,
    ):
        super().__init__([left, inner_query])
        self.kind = kind
        self.residual = residual

    @property
    def left(self) -> PhysicalOp:
        return self.children[0]

    @property
    def inner_query(self) -> RemoteQuery:
        return self.children[1]

    def output_ids(self) -> tuple[ColumnId, ...]:
        if self.kind in ("semi", "anti_semi"):
            return self.left.output_ids()
        return self.left.output_ids() + self.inner_query.output_ids()

    def provided_sort(self) -> tuple[tuple[ColumnId, bool], ...]:
        return self.left.provided_sort()

    def fingerprint_atoms(self) -> tuple:
        return (self.kind,)

    def __repr__(self) -> str:
        return (
            f"ParameterizedRemoteJoin[{self.kind}]("
            f"{self.inner_query.sql_text!r}, rows={self.est_rows:.1f}, cost={self.cost:.3f})"
        )


class MergeJoin(PhysicalOp):
    """Equi-join over inputs sorted on the join keys (single-key)."""

    def __init__(
        self,
        left: PhysicalOp,
        right: PhysicalOp,
        kind: str,
        left_key: ColumnId,
        right_key: ColumnId,
        residual: Optional[ScalarExpr] = None,
    ):
        super().__init__([left, right])
        self.kind = kind
        self.left_key = left_key
        self.right_key = right_key
        self.residual = residual

    @property
    def left(self) -> PhysicalOp:
        return self.children[0]

    @property
    def right(self) -> PhysicalOp:
        return self.children[1]

    def output_ids(self) -> tuple[ColumnId, ...]:
        if self.kind in ("semi", "anti_semi"):
            return self.left.output_ids()
        return self.left.output_ids() + self.right.output_ids()

    def provided_sort(self) -> tuple[tuple[ColumnId, bool], ...]:
        return ((self.left_key, True),)

    def fingerprint_atoms(self) -> tuple:
        return (self.kind,)

    def __repr__(self) -> str:
        return f"MergeJoin[{self.kind}](rows={self.est_rows:.1f}, cost={self.cost:.3f})"


class Concat(PhysicalOp):
    """UNION ALL: concatenate children, remapping each branch's columns
    to the union's output ids."""

    def __init__(
        self,
        children: Sequence[PhysicalOp],
        output_defs: Sequence[ColumnDef],
        branch_maps: Sequence[dict[ColumnId, ColumnId]],
    ):
        super().__init__(children)
        self.output_defs = tuple(output_defs)
        self.branch_maps = [dict(m) for m in branch_maps]

    def output_ids(self) -> tuple[ColumnId, ...]:
        return tuple(d.cid for d in self.output_defs)

    def fingerprint_atoms(self) -> tuple:
        return (len(self.children),)

    def __repr__(self) -> str:
        return f"Concat({len(self.children)} branches, rows={self.est_rows:.1f}, cost={self.cost:.3f})"


class Gather(Concat):
    """Parallel UNION ALL (the Volcano exchange operator): branches run
    concurrently on a worker pool of degree ``dop`` and rows surface in
    arrival order.  Row semantics are identical to :class:`Concat`, and
    so is the fingerprint — parallelism is an execution detail, not a
    plan identity."""

    def __init__(
        self,
        children: Sequence[PhysicalOp],
        output_defs: Sequence[ColumnDef],
        branch_maps: Sequence[dict[ColumnId, ColumnId]],
        dop: int,
    ):
        super().__init__(children, output_defs, branch_maps)
        self.dop = int(dop)

    def fingerprint_name(self) -> str:
        return "Concat"

    def __repr__(self) -> str:
        return (
            f"Gather(dop={self.dop}, {len(self.children)} branches, "
            f"rows={self.est_rows:.1f}, cost={self.cost:.3f})"
        )


class GatherMerge(Concat):
    """Order-preserving parallel UNION ALL: each branch arrives sorted
    on ``keys`` and a k-way merge keeps the global order without a full
    blocking sort.  The merge strategy is part of the plan's identity
    (its atoms carry the key directions, mirroring ``PhysicalSort``)
    but the degree of parallelism is not."""

    def __init__(
        self,
        children: Sequence[PhysicalOp],
        output_defs: Sequence[ColumnDef],
        branch_maps: Sequence[dict[ColumnId, ColumnId]],
        keys: Sequence[SortKeySpec],
        dop: int,
    ):
        super().__init__(children, output_defs, branch_maps)
        self.keys = tuple(keys)
        self.dop = int(dop)

    def provided_sort(self) -> tuple[tuple[ColumnId, bool], ...]:
        return tuple((k.cid, k.ascending) for k in self.keys)

    def fingerprint_atoms(self) -> tuple:
        return (len(self.children),) + tuple(k.ascending for k in self.keys)

    def __repr__(self) -> str:
        return (
            f"GatherMerge(dop={self.dop}, {len(self.children)} branches, "
            f"{len(self.keys)} keys, rows={self.est_rows:.1f}, "
            f"cost={self.cost:.3f})"
        )


# ----------------------------------------------------------------------
# plan fingerprinting (Query Store hook)
# ----------------------------------------------------------------------

def plan_shape(plan: PhysicalOp) -> str:
    """A normalized s-expression for a physical plan's *shape*.

    Built from operator class names plus each node's
    :meth:`PhysicalOp.fingerprint_atoms` — never costs, row estimates,
    or column ids — so two compilations of the same statement that pick
    the same physical strategy produce the *same* shape, while a plan
    flip (deep pushdown vs fetch-and-filter, hash vs merge, a different
    member) produces a different one.
    """
    atoms = "".join(f" {atom!r}" for atom in plan.fingerprint_atoms())
    inner = "".join(f" {plan_shape(child)}" for child in plan.children)
    return f"({plan.fingerprint_name()}{atoms}{inner})"


def plan_fingerprint(plan: PhysicalOp) -> str:
    """Stable 8-hex-digit fingerprint of a plan's normalized shape —
    the Query Store's plan identity (``sys.query_store_plan``)."""
    shape = plan_shape(plan)
    return format(zlib.crc32(shape.encode("utf-8")) & 0xFFFFFFFF, "08x")
