"""Group (logical) properties (Section 4.1.1).

"Group Properties ... represent information about all of the
alternatives within a group": output columns, cardinality estimate, and
constraint (domain) properties.  We additionally track *locality* — the
set of servers a subtree touches — which powers the remote rules
("grouping joins based on locality") and the build-remote-query
implementation rule.

Properties are derived once per memo group from any of its logical
expressions (alternatives in a group are logically equivalent, so any
representative works).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.algebra.expressions import (
    BinaryOp,
    ColumnId,
    ColumnRef,
    ContainsPredicate,
    InListOp,
    Literal,
    ScalarExpr,
    conjuncts,
    COMPARISON_OPS,
)
from repro.algebra.logical import (
    Aggregate,
    EmptyTable,
    Get,
    Join,
    JoinKind,
    LogicalOp,
    Project,
    ProviderRowset,
    Select,
    Sort,
    Top,
    UnionAll,
    Values,
)
from repro.core.constraints import derive_domains
from repro.stats.estimator import (
    DEFAULT_EQUALITY_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    estimate_comparison_selectivity,
    estimate_join_selectivity,
)
from repro.stats.table_stats import ColumnStatistics
from repro.types.intervals import IntervalSet

#: marker for the local server in locality sets
LOCAL = "<local>"


class GroupProperties:
    """Logical properties shared by every alternative in a group."""

    __slots__ = (
        "output_ids",
        "cardinality",
        "row_width",
        "servers",
        "column_stats",
        "domains",
    )

    def __init__(
        self,
        output_ids: tuple[ColumnId, ...],
        cardinality: float,
        row_width: float,
        servers: frozenset[str],
        column_stats: Dict[ColumnId, Optional[ColumnStatistics]],
        domains: Dict[ColumnId, IntervalSet],
    ):
        self.output_ids = output_ids
        self.cardinality = max(0.0, cardinality)
        self.row_width = max(1.0, row_width)
        self.servers = servers
        self.column_stats = column_stats
        self.domains = domains

    @property
    def single_server(self) -> Optional[str]:
        """The lone server this subtree touches, or None if mixed/local."""
        if len(self.servers) == 1:
            (server,) = self.servers
            if server != LOCAL:
                return server
        return None

    @property
    def bytes_estimate(self) -> float:
        return self.cardinality * self.row_width

    def __repr__(self) -> str:
        return (
            f"GroupProperties(card={self.cardinality:.1f}, "
            f"width={self.row_width:.0f}, servers={sorted(self.servers)})"
        )


def derive_properties(
    op: LogicalOp, children: list[GroupProperties]
) -> GroupProperties:
    """Derive a group's properties from one logical expression whose
    children's properties are already known."""
    # note: ops built by rules have placeholder inputs — output ids of
    # pass-through operators come from the *child group's* properties
    if isinstance(op, Get):
        return _get_properties(op)
    if isinstance(op, Select):
        return _select_properties(op, children[0])
    if isinstance(op, Project):
        return _project_properties(op, children[0])
    if isinstance(op, Join):
        return _join_properties(op, children[0], children[1])
    if isinstance(op, Aggregate):
        return _aggregate_properties(op, children[0])
    if isinstance(op, (Sort,)):
        child = children[0]
        return GroupProperties(
            child.output_ids,
            child.cardinality,
            child.row_width,
            child.servers,
            child.column_stats,
            child.domains,
        )
    if isinstance(op, Top):
        child = children[0]
        return GroupProperties(
            child.output_ids,
            min(float(op.count), child.cardinality),
            child.row_width,
            child.servers,
            child.column_stats,
            child.domains,
        )
    if isinstance(op, UnionAll):
        return _union_properties(op, children)
    if isinstance(op, Values):
        width = 8.0 * max(1, len(op.column_defs))
        return GroupProperties(
            op.output_ids(), float(len(op.rows)), width, frozenset({LOCAL}), {}, {}
        )
    if isinstance(op, EmptyTable):
        return GroupProperties(
            op.output_ids(), 0.0, 1.0, frozenset({LOCAL}), {}, {}
        )
    if isinstance(op, ProviderRowset):
        width = sum(d.type.byte_width() for d in op.column_defs) or 16.0
        return GroupProperties(
            op.output_ids(),
            op.cardinality_hint,
            width,
            frozenset({f"<provider:{op.label}>"}),
            {},
            {},
        )
    raise TypeError(f"no property derivation for {type(op).__name__}")


# ----------------------------------------------------------------------


def _get_properties(op: Get) -> GroupProperties:
    table = op.table
    column_stats: Dict[ColumnId, Optional[ColumnStatistics]] = {}
    domains: Dict[ColumnId, IntervalSet] = {}
    name_to_cid = {d.name.lower(): d.cid for d in table.columns}
    if table.local_table is not None:
        stats = table.local_table.statistics
        cardinality = float(table.local_table.row_count)
        row_width = stats.avg_row_width
        for definition in table.columns:
            column_stats[definition.cid] = stats.column(definition.name)
    elif table.remote_info is not None:
        info = table.remote_info
        cardinality = info.cardinality
        row_width = info.avg_row_width
        server = table.provider
        for definition in table.columns:
            if server is not None and server.capabilities.supports_statistics:
                column_stats[definition.cid] = server.column_statistics(
                    info.table_name, definition.name, table.database
                )
            else:
                column_stats[definition.cid] = None
    else:
        cardinality = 1000.0
        row_width = 64.0
    for column_name, domain in table.check_domains.items():
        cid = name_to_cid.get(column_name.lower())
        if cid is not None and domain is not None:
            domains[cid] = domain
    servers = frozenset({table.server if table.server else LOCAL})
    return GroupProperties(
        op.output_ids(), cardinality, row_width, servers, column_stats, domains
    )


def predicate_selectivity(
    predicate: Optional[ScalarExpr], props: GroupProperties
) -> float:
    """Selectivity of a predicate against a child's properties.

    Conjuncts multiply (independence assumption); each conjunct uses
    the histogram when the referenced column has one (Section 3.2.4's
    payoff), else the System-R defaults.
    """
    selectivity = 1.0
    for conjunct in conjuncts(predicate):
        selectivity *= _conjunct_selectivity(conjunct, props)
    return max(1e-7, min(1.0, selectivity))


def _conjunct_selectivity(conjunct: ScalarExpr, props: GroupProperties) -> float:
    if isinstance(conjunct, BinaryOp) and conjunct.op in COMPARISON_OPS:
        left, right = conjunct.left, conjunct.right
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            stats = props.column_stats.get(left.cid)
            return estimate_comparison_selectivity(
                conjunct.op, right.value, stats, props.cardinality
            )
        if isinstance(right, ColumnRef) and isinstance(left, Literal):
            flipped = conjunct.flipped()
            stats = props.column_stats.get(right.cid)
            return estimate_comparison_selectivity(
                flipped.op, flipped.right.value, stats, props.cardinality
            )
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            return estimate_join_selectivity(
                props.column_stats.get(left.cid),
                props.column_stats.get(right.cid),
            )
        if conjunct.op == "=":
            return DEFAULT_EQUALITY_SELECTIVITY
        return DEFAULT_RANGE_SELECTIVITY
    if isinstance(conjunct, BinaryOp) and conjunct.op == "OR":
        left = _conjunct_selectivity(conjunct.left, props)
        right = _conjunct_selectivity(conjunct.right, props)
        return min(1.0, left + right - left * right)
    if isinstance(conjunct, InListOp) and not conjunct.negated:
        if isinstance(conjunct.operand, ColumnRef):
            stats = props.column_stats.get(conjunct.operand.cid)
            total = 0.0
            for item in conjunct.items:
                if isinstance(item, Literal):
                    total += estimate_comparison_selectivity(
                        "=", item.value, stats, props.cardinality
                    )
                else:
                    total += DEFAULT_EQUALITY_SELECTIVITY
            return min(1.0, total)
        return DEFAULT_RANGE_SELECTIVITY
    if isinstance(conjunct, ContainsPredicate):
        return DEFAULT_EQUALITY_SELECTIVITY
    return DEFAULT_RANGE_SELECTIVITY


def _select_properties(op: Select, child: GroupProperties) -> GroupProperties:
    selectivity = predicate_selectivity(op.predicate, child)
    domains = dict(child.domains)
    for cid, domain in derive_domains(op.predicate).items():
        existing = domains.get(cid)
        domains[cid] = domain if existing is None else existing.intersect(domain)
    return GroupProperties(
        child.output_ids,
        child.cardinality * selectivity,
        child.row_width,
        child.servers,
        child.column_stats,
        domains,
    )


def _project_properties(op: Project, child: GroupProperties) -> GroupProperties:
    column_stats: Dict[ColumnId, Optional[ColumnStatistics]] = {}
    domains: Dict[ColumnId, IntervalSet] = {}
    width = 0.0
    for cid, expr in op.outputs:
        if isinstance(expr, ColumnRef):
            column_stats[cid] = child.column_stats.get(expr.cid)
            if expr.cid in child.domains:
                domains[cid] = child.domains[expr.cid]
        width += expr.type.byte_width() if hasattr(expr.type, "byte_width") else 8.0
    return GroupProperties(
        op.output_ids(),
        child.cardinality,
        max(8.0, width),
        child.servers,
        column_stats,
        domains,
    )


def join_condition_selectivity(
    condition: Optional[ScalarExpr],
    left: GroupProperties,
    right: GroupProperties,
) -> float:
    """Selectivity of a join condition over the cross product."""
    if condition is None:
        return 1.0
    merged = GroupProperties(
        left.output_ids + right.output_ids,
        left.cardinality * right.cardinality,
        left.row_width + right.row_width,
        left.servers | right.servers,
        {**left.column_stats, **right.column_stats},
        {**left.domains, **right.domains},
    )
    return predicate_selectivity(condition, merged)


def _join_properties(
    op: Join, left: GroupProperties, right: GroupProperties
) -> GroupProperties:
    selectivity = join_condition_selectivity(op.condition, left, right)
    cross = left.cardinality * right.cardinality
    if op.kind in (JoinKind.INNER, JoinKind.CROSS):
        output_ids = left.output_ids + right.output_ids
        cardinality = cross * selectivity
        column_stats = {**left.column_stats, **right.column_stats}
        domains = {**left.domains, **right.domains}
        width = left.row_width + right.row_width
    elif op.kind == JoinKind.LEFT_OUTER:
        output_ids = left.output_ids + right.output_ids
        cardinality = max(left.cardinality, cross * selectivity)
        column_stats = {**left.column_stats, **right.column_stats}
        domains = dict(left.domains)
        width = left.row_width + right.row_width
    elif op.kind == JoinKind.SEMI:
        output_ids = left.output_ids
        match_fraction = min(1.0, right.cardinality * selectivity)
        cardinality = left.cardinality * max(
            DEFAULT_EQUALITY_SELECTIVITY, min(1.0, match_fraction)
        )
        column_stats = dict(left.column_stats)
        domains = dict(left.domains)
        width = left.row_width
    else:  # ANTI_SEMI
        output_ids = left.output_ids
        match_fraction = min(1.0, right.cardinality * selectivity)
        cardinality = left.cardinality * max(
            0.1, 1.0 - min(0.9, match_fraction)
        )
        column_stats = dict(left.column_stats)
        domains = dict(left.domains)
        width = left.row_width
    return GroupProperties(
        output_ids,
        cardinality,
        width,
        left.servers | right.servers,
        column_stats,
        domains,
    )


def _aggregate_properties(op: Aggregate, child: GroupProperties) -> GroupProperties:
    if not op.group_by:
        cardinality = 1.0
    else:
        distinct_product = 1.0
        known = False
        for cid in op.group_by:
            stats = child.column_stats.get(cid)
            if stats is not None:
                distinct_product *= max(1.0, stats.distinct_count)
                known = True
        if known:
            cardinality = min(child.cardinality, distinct_product)
        else:
            cardinality = max(1.0, child.cardinality * 0.1)
    column_stats = {
        cid: child.column_stats.get(cid) for cid in op.group_by
    }
    domains = {
        cid: child.domains[cid] for cid in op.group_by if cid in child.domains
    }
    width = child.row_width + 8.0 * len(op.aggregates)
    return GroupProperties(
        op.output_ids(), cardinality, width, child.servers, column_stats, domains
    )


def _union_properties(
    op: UnionAll, children: list[GroupProperties]
) -> GroupProperties:
    cardinality = sum(c.cardinality for c in children)
    width = max((c.row_width for c in children), default=8.0)
    servers = frozenset().union(*(c.servers for c in children)) if children else frozenset({LOCAL})
    # a union output column's domain is the union of branch domains
    domains: Dict[ColumnId, IntervalSet] = {}
    column_stats: Dict[ColumnId, Optional[ColumnStatistics]] = {}
    for out_cid in op.output_ids():
        branch_domains = []
        for branch_map, child in zip(op.branch_maps, children):
            branch_cid = branch_map.get(out_cid)
            if branch_cid is None or branch_cid not in child.domains:
                branch_domains = None
                break
            branch_domains.append(child.domains[branch_cid])
        if branch_domains:
            merged = branch_domains[0]
            for domain in branch_domains[1:]:
                merged = merged.union(domain)
            domains[out_cid] = merged
        column_stats[out_cid] = None
    return GroupProperties(
        op.output_ids(), cardinality, width, servers, column_stats, domains
    )
