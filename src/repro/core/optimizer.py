"""The phased Cascades search driver (Section 4.1.1).

"Rules are split into different optimization phases consisting of a
round of exploration rules followed by implementation rules.  Early
phases have a restricted set of rules enabled to attempt to find a good
plan quickly.  If the cost of the best solution found after a phase is
acceptable, the solution is returned. ... Currently, SQL Server has
three possible phases — transaction processing, quick plan and full
optimization."

Phase 0 (transaction processing): no join reordering, no remote-query
construction — scans, index paths, hash/NL joins.
Phase 1 (quick plan): + join commutation, locality grouping, predicate
split, build-remote-query, parameterized remote joins, remote spools.
Phase 2 (full optimization): + join associativity, merge joins, stream
aggregates.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Dict, Optional

from repro.algebra.expressions import (
    BinaryOp,
    ColumnRef,
    ContainsPredicate,
    Parameter,
    ScalarExpr,
    conjoin,
    conjuncts,
)
from repro.algebra.logical import (
    Aggregate,
    EmptyTable,
    Get,
    Join,
    JoinKind,
    LogicalOp,
    Project,
    ProviderRowset,
    Select,
    Sort,
    SortKeySpec,
    Top,
    UnionAll,
    Values,
)
from repro.core import physical as P
from repro.core.constraints import startup_conjuncts
from repro.core.cost import CostModel
from repro.core.decoder import Decoder
from repro.core.memo import Group, GroupExpression, Memo
from repro.core.properties import GroupProperties
from repro.core.rules.base import RuleContext, guidance_index
from repro.core.rules.exploration import default_exploration_rules
from repro.core.rules.normalization import NormalizeOptions, normalize
from repro.errors import DecoderError, OptimizerError
from repro.oledb.interfaces import IDB_CREATE_COMMAND
from repro.oledb.properties import Operation
from repro.types.intervals import IntervalSet

#: a required physical property: ordered (cid, ascending) keys
RequiredSort = tuple[tuple[int, bool], ...]


class OptimizerOptions:
    """Feature switches and phase thresholds (ablation experiments and
    E9/E10 flip these)."""

    def __init__(
        self,
        enable_remote_query: bool = True,
        enable_locality_grouping: bool = True,
        enable_parameterization: bool = True,
        enable_predicate_split: bool = True,
        enable_spool: bool = True,
        enable_merge_join: bool = True,
        enable_index_paths: bool = True,
        enable_fulltext_paths: bool = True,
        enable_static_pruning: bool = True,
        enable_startup_filters: bool = True,
        enable_partial_aggregation: bool = True,
        prefer_largest_remote_subtree: bool = False,
        max_phase: int = 2,
        phase_thresholds: Optional[Dict[int, float]] = None,
    ):
        self.enable_remote_query = enable_remote_query
        self.enable_locality_grouping = enable_locality_grouping
        self.enable_parameterization = enable_parameterization
        self.enable_predicate_split = enable_predicate_split
        self.enable_spool = enable_spool
        self.enable_merge_join = enable_merge_join
        self.enable_index_paths = enable_index_paths
        self.enable_fulltext_paths = enable_fulltext_paths
        self.enable_static_pruning = enable_static_pruning
        self.enable_startup_filters = enable_startup_filters
        #: local-global aggregation over partitioned views
        self.enable_partial_aggregation = enable_partial_aggregation
        #: ablation: take any buildable remote query unconditionally —
        #: the push-the-largest-subtree heuristic the paper explicitly
        #: rejects in favor of cost ("Our optimizer does not simply rely
        #: on the heuristics of pushing the largest sub-tree")
        self.prefer_largest_remote_subtree = prefer_largest_remote_subtree
        self.max_phase = max_phase
        #: after finishing phase p, stop if best cost <= thresholds[p]
        #: (phase 0 exits only for OLTP-cheap plans; phase 1 for plans
        #: already dominated by fixed remote latency)
        self.phase_thresholds = phase_thresholds or {0: 0.1, 1: 5.0}


class PhaseStats:
    """Search-effort counters for one phase (experiment E9)."""

    __slots__ = ("phase", "rules_fired", "expressions_added", "groups_optimized",
                 "best_cost", "rule_counts")

    def __init__(self, phase: int):
        self.phase = phase
        self.rules_fired = 0
        self.expressions_added = 0
        self.groups_optimized = 0
        self.best_cost = float("inf")
        #: per-rule-name firing counts for this phase
        self.rule_counts: Dict[str, int] = {}

    def as_dict(self) -> Dict[str, float]:
        return {
            "phase": self.phase,
            "rules_fired": self.rules_fired,
            "expressions_added": self.expressions_added,
            "groups_optimized": self.groups_optimized,
            "best_cost": self.best_cost,
            "rule_counts": dict(self.rule_counts),
        }


class OptimizationResult:
    """The chosen plan plus search telemetry."""

    def __init__(
        self,
        plan: P.PhysicalOp,
        cost: float,
        memo: Memo,
        phase_stats: list[PhaseStats],
        elapsed_seconds: float,
    ):
        self.plan = plan
        self.cost = cost
        self.memo = memo
        self.phase_stats = phase_stats
        self.elapsed_seconds = elapsed_seconds

    @property
    def final_phase(self) -> int:
        return self.phase_stats[-1].phase if self.phase_stats else -1

    def explain(self, verbose: bool = False) -> str:
        """The plan tree; with ``verbose``, followed by memo statistics
        (group/expression totals, per-phase search effort and per-rule
        firing counts) in stable text form."""
        if not verbose:
            return self.plan.tree_repr()
        lines = [self.plan.tree_repr(), "-- memo --"]
        lines.append(
            f"memo: groups={self.memo.group_count} "
            f"expressions={self.memo.expression_count}"
        )
        for stats in self.phase_stats:
            lines.append(
                f"phase {stats.phase}: rules_fired={stats.rules_fired} "
                f"expressions_added={stats.expressions_added} "
                f"groups_optimized={stats.groups_optimized} "
                f"best_cost={stats.best_cost:.3f}"
            )
            for rule_name in sorted(stats.rule_counts):
                lines.append(
                    f"  rule {rule_name}: fired={stats.rule_counts[rule_name]}"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"OptimizationResult(cost={self.cost:.3f}, "
            f"phases={len(self.phase_stats)})"
        )


class Optimizer:
    """One optimizer instance per engine; thread-unsafe by design."""

    def __init__(
        self,
        linked_servers: Optional[Dict[str, Any]] = None,
        cost_model: Optional[CostModel] = None,
        options: Optional[OptimizerOptions] = None,
    ):
        self._linked_servers = dict(linked_servers or {})
        self.cost_model = cost_model or CostModel()
        self.options = options or OptimizerOptions()
        self._rules = default_exploration_rules()
        self._guidance = guidance_index(self._rules)
        self._cid_counter = itertools.count(1_000_000)
        #: optional QueryTrace receiving rule_fired events; the engine
        #: sets this around optimize() when tracing is enabled
        self.trace: Optional[Any] = None
        #: optional HealthRegistry consulted during costing; an open
        #: breaker disqualifies deep pushdown and penalizes remote
        #: access so plans route around unhealthy members
        self.health: Optional[Any] = None
        #: optional plan-pin source (the engine's Query Store):
        #: ``plan_pins(query_key) -> Optional[PhysicalOp]``.  Consulted
        #: before exploration when optimize() is given a query key; a
        #: pinned plan short-circuits the whole search.
        self.plan_pins: Optional[Any] = None
        #: session degree of parallelism (``SET PARALLEL_DOP n``); at 1
        #: no exchange operators are ever considered, at >1 UNION ALL
        #: branches that touch remote servers may be implemented as a
        #: Gather/GatherMerge exchange whose cost credits latency hiding
        self.parallel_dop: int = 1

    def normalize_options(self) -> NormalizeOptions:
        """The normalization configuration this optimizer runs under —
        also used by the engine to pre-normalize a tree (so static
        pruning fires) before partial-results branch dropping."""
        return NormalizeOptions(
            static_pruning=self.options.enable_static_pruning,
            startup_filters=self.options.enable_startup_filters,
            partial_aggregation=self.options.enable_partial_aggregation,
        )

    def _health_state(self, server_name: Optional[str]) -> str:
        if self.health is None or server_name is None:
            return "closed"
        return self.health.state_of(server_name)

    def _health_penalty(self, server_name: Optional[str]) -> float:
        return self.cost_model.health_penalty(self._health_state(server_name))

    def linked_server(self, name: str) -> Optional[Any]:
        return self._linked_servers.get(name.lower())

    def register_linked_server(self, server: Any) -> None:
        self._linked_servers[server.name.lower()] = server

    # ==================================================================
    # entry point
    # ==================================================================
    def optimize(
        self, root: LogicalOp, query_key: Optional[str] = None
    ) -> OptimizationResult:
        started = time.perf_counter()
        forced = self._consult_plan_pin(root, query_key)
        if forced is not None:
            stats = PhaseStats(-1)
            stats.best_cost = forced.cost
            return OptimizationResult(
                forced, forced.cost, Memo(), [stats],
                time.perf_counter() - started,
            )
        root = normalize(root, self.normalize_options())
        memo = Memo()
        root_group = memo.insert_tree(root)
        context = RuleContext(memo, self)
        phase_stats: list[PhaseStats] = []
        best: Optional[P.PhysicalOp] = None
        for phase in range(self.options.max_phase + 1):
            self.phase = phase
            self._stats = PhaseStats(phase)
            self._explore_group(root_group, context)
            best = self._optimize_group(root_group, ())
            self._stats.best_cost = best.cost
            phase_stats.append(self._stats)
            threshold = self.options.phase_thresholds.get(phase)
            if (
                phase < self.options.max_phase
                and threshold is not None
                and best.cost <= threshold
            ):
                break
        if best is None:
            raise OptimizerError("optimization produced no plan")
        elapsed = time.perf_counter() - started
        return OptimizationResult(best, best.cost, memo, phase_stats, elapsed)

    def _consult_plan_pin(
        self, root: LogicalOp, query_key: Optional[str]
    ) -> Optional[P.PhysicalOp]:
        """A pinned plan for this statement, validated against the bound
        tree, or None.

        The Query Store keeps the captured plan *object*; because the
        binder mints column ids deterministically for identical text,
        the pin is only honored when the pinned plan still produces
        every column the fresh bind asks for — a stale pin (schema
        change, different parameter shape) silently falls back to a
        normal search rather than producing wrong columns.
        """
        if query_key is None or self.plan_pins is None:
            return None
        pinned = self.plan_pins(query_key)
        if pinned is None:
            return None
        if not set(root.output_ids()) <= set(pinned.output_ids()):
            if self.trace is not None:
                self.trace.event("plan_force_mismatch")
            return None
        if self.trace is not None:
            self.trace.event(
                "plan_forced", fingerprint=P.plan_fingerprint(pinned)
            )
        return pinned

    # ==================================================================
    # exploration
    # ==================================================================
    def _explore_group(self, group: Group, context: RuleContext) -> None:
        if group.explored_in_phase >= self.phase:
            return
        group.explored_in_phase = self.phase
        changed = True
        while changed:
            changed = False
            for expr in list(group.expressions):
                for child in expr.children:
                    self._explore_group(child, context)
                for rule in self._guidance.get(type(expr.op).__name__, ()):
                    if rule.min_phase > self.phase:
                        continue
                    if rule.name in expr.applied_rules:
                        continue
                    if not rule.matches(expr):
                        continue
                    expr.applied_rules.add(rule.name)
                    added = rule.apply(expr, context)
                    self._stats.rules_fired += 1
                    self._stats.expressions_added += added
                    self._stats.rule_counts[rule.name] = (
                        self._stats.rule_counts.get(rule.name, 0) + 1
                    )
                    if self.trace is not None:
                        self.trace.rule_fired(
                            rule.name, self.phase, group.gid, added
                        )
                    if added:
                        changed = True

    # ==================================================================
    # implementation
    # ==================================================================
    def _optimize_group(
        self, group: Group, required: RequiredSort
    ) -> P.PhysicalOp:
        key = (self.phase, required)
        cached = group.winners.get(key)
        if cached is not None:
            return cached
        self._stats.groups_optimized += 1
        alternatives: list[P.PhysicalOp] = []
        for expr in list(group.expressions):
            alternatives.extend(self._implement_expression(expr, group))
        remote = self._try_remote_query(group)
        if remote is not None:
            if self.options.prefer_largest_remote_subtree and not required:
                # heuristic mode: any remotable subtree goes remote,
                # cost notwithstanding (Figure 4(a)'s plan family)
                group.winners[key] = remote
                return remote
            alternatives.append(remote)
        if not alternatives:
            raise OptimizerError(
                f"no physical implementation for group g{group.gid} "
                f"({group.expressions[0].op!r})"
            )
        best = min(alternatives, key=lambda plan: plan.cost)
        winner = best
        if required:
            # order-preserving operators may satisfy the requirement by
            # requesting ordered children (required-property pushdown)
            for expr in list(group.expressions):
                pushed = self._implement_with_pushed_sort(expr, required, group)
                if pushed is not None:
                    alternatives.append(pushed)
            ordered = [
                plan
                for plan in alternatives
                if _sort_satisfies(plan.provided_sort(), required)
            ]
            best_ordered = min(ordered, key=lambda p: p.cost) if ordered else None
            enforced = self._enforce_sort(best, required, group)
            if best_ordered is None or enforced.cost < best_ordered.cost:
                winner = enforced
            else:
                winner = best_ordered
        group.winners[key] = winner
        return winner

    def _implement_with_pushed_sort(
        self, expr: GroupExpression, required: RequiredSort, group: Group
    ) -> Optional[P.PhysicalOp]:
        """Build an ordered variant of an order-preserving unary op by
        requiring the sort from its child."""
        op = expr.op
        props = group.properties
        if isinstance(op, Select):
            child = self._optimize_group(expr.children[0], required)
            startup, residual = startup_conjuncts(op.predicate)
            plan: P.PhysicalOp = child
            if residual:
                node = P.Filter(plan, conjoin(residual))
                node.est_rows = props.cardinality
                node.cost = plan.cost + self.cost_model.filter(
                    expr.children[0].properties.cardinality, len(residual)
                )
                plan = node
            return self._wrap_startup(plan, startup, props)
        if isinstance(op, Project):
            # the requirement is over output ids; map through pass-through
            # columns to child ids
            mapping = {
                cid: e.cid
                for cid, e in op.outputs
                if isinstance(e, ColumnRef)
            }
            child_required = []
            for cid, ascending in required:
                if cid not in mapping:
                    return None
                child_required.append((mapping[cid], ascending))
            child = self._optimize_group(
                expr.children[0], tuple(child_required)
            )
            node = P.ComputeProject(child, op.outputs)
            node.est_rows = props.cardinality
            node.cost = child.cost + self.cost_model.project(
                props.cardinality, len(op.outputs)
            )
            return node
        if isinstance(op, Top):
            child = self._optimize_group(expr.children[0], required)
            node = P.PhysicalTop(child, op.count)
            node.est_rows = min(float(op.count), child.est_rows)
            node.cost = child.cost + node.est_rows * self.cost_model.cpu_row_ms
            return node
        if isinstance(op, UnionAll) and self.parallel_dop > 1:
            # ordered parallel union: require the sort from every branch
            # (mapped through its branch map) and merge on the consumer
            children: list[P.PhysicalOp] = []
            for child_group, branch_map in zip(expr.children, op.branch_maps):
                child_required = []
                for cid, ascending in required:
                    mapped = branch_map.get(cid)
                    if mapped is None:
                        return None
                    child_required.append((mapped, ascending))
                children.append(
                    self._optimize_group(child_group, tuple(child_required))
                )
            if len(children) < 2:
                return None
            if sum(1 for c in children if _contains_remote(c)) < 2:
                return None
            keys = [SortKeySpec(cid, ascending) for cid, ascending in required]
            node = P.GatherMerge(
                children, op.output_defs, op.branch_maps, keys,
                self.parallel_dop,
            )
            node.est_rows = props.cardinality
            node.cost = (
                self.cost_model.parallel_union(
                    [c.cost for c in children], self.parallel_dop
                )
                + self.cost_model.project(props.cardinality, 1)
                + props.cardinality * self.cost_model.cpu_row_ms
            )
            return node
        return None

    def _enforce_sort(
        self, plan: P.PhysicalOp, required: RequiredSort, group: Group
    ) -> P.PhysicalOp:
        """The sort enforcer rule: "for sort, an enforcer can insert a
        physical sort operation to introduce order when needed"."""
        keys = [SortKeySpec(cid, ascending) for cid, ascending in required]
        node = P.PhysicalSort(plan, keys)
        node.est_rows = plan.est_rows
        node.cost = plan.cost + self.cost_model.sort(plan.est_rows)
        return node

    # ------------------------------------------------------------------
    def _implement_expression(
        self, expr: GroupExpression, group: Group
    ) -> list[P.PhysicalOp]:
        op = expr.op
        props = group.properties
        if isinstance(op, Get):
            return self._implement_get(op, props)
        if isinstance(op, Select):
            return self._implement_select(op, expr, props)
        if isinstance(op, Project):
            return self._implement_project(op, expr, props)
        if isinstance(op, Join):
            return self._implement_join(op, expr, props)
        if isinstance(op, Aggregate):
            return self._implement_aggregate(op, expr, props)
        if isinstance(op, Sort):
            required = tuple((k.cid, k.ascending) for k in op.keys)
            return [self._optimize_group(expr.children[0], required)]
        if isinstance(op, Top):
            child = self._optimize_group(expr.children[0], ())
            node = P.PhysicalTop(child, op.count)
            node.est_rows = min(float(op.count), child.est_rows)
            node.cost = child.cost + node.est_rows * self.cost_model.cpu_row_ms
            return [node]
        if isinstance(op, UnionAll):
            children = [self._optimize_group(c, ()) for c in expr.children]
            node = P.Concat(children, op.output_defs, op.branch_maps)
            node.est_rows = props.cardinality
            node.cost = sum(c.cost for c in children) + self.cost_model.project(
                props.cardinality, 1
            )
            alternatives = [node]
            if (
                self.parallel_dop > 1
                and len(children) >= 2
                and sum(1 for c in children if _contains_remote(c)) >= 2
            ):
                gather = P.Gather(
                    children, op.output_defs, op.branch_maps,
                    self.parallel_dop,
                )
                gather.est_rows = props.cardinality
                gather.cost = self.cost_model.parallel_union(
                    [c.cost for c in children], self.parallel_dop
                ) + self.cost_model.project(props.cardinality, 1)
                alternatives.append(gather)
            return alternatives
        if isinstance(op, Values):
            node = P.ConstScan(op.rows, op.column_defs)
            node.est_rows = float(len(op.rows))
            node.cost = 0.001 * len(op.rows)
            return [node]
        if isinstance(op, EmptyTable):
            node = P.ConstScan([], op.column_defs)
            node.est_rows = 0.0
            node.cost = 0.0
            return [node]
        if isinstance(op, ProviderRowset):
            node = P.ProviderRowsetScan(op)
            node.est_rows = props.cardinality
            channel = getattr(op.datasource, "channel", None)
            node.cost = self.cost_model.remote_transfer(
                channel, props.cardinality, props.row_width
            )
            return [node]
        raise OptimizerError(f"cannot implement {type(op).__name__}")

    # ------------------------------------------------------------------
    def _implement_get(
        self, op: Get, props: GroupProperties
    ) -> list[P.PhysicalOp]:
        table = op.table
        out: list[P.PhysicalOp] = []
        if table.local_table is not None:
            scan = P.TableScan(table)
            scan.est_rows = props.cardinality
            scan.cost = self.cost_model.scan(props.cardinality)
            out.append(scan)
            if self.options.enable_index_paths:
                for index in table.local_table.indexes.values():
                    key_cid = self._cid_for_column(
                        table, index.metadata.key_columns[0]
                    )
                    if key_cid is None:
                        continue
                    node = P.IndexRange(
                        table, index.metadata.name, key_cid, IntervalSet.full()
                    )
                    node.est_rows = props.cardinality
                    node.cost = self.cost_model.index_range(
                        props.cardinality, props.cardinality
                    )
                    out.append(node)
        else:
            server = table.provider
            scan = P.RemoteScan(table)
            scan.est_rows = props.cardinality
            channel = server.channel if server is not None else None
            scan.cost = (
                self.cost_model.remote_transfer(
                    channel, props.cardinality, props.row_width
                )
                + self.cost_model.scan(props.cardinality)
                * self.cost_model.remote_cpu_discount
                + self._health_penalty(table.server)
            )
            out.append(scan)
        return out

    def _implement_select(
        self, op: Select, expr: GroupExpression, props: GroupProperties
    ) -> list[P.PhysicalOp]:
        child_group = expr.children[0]
        out: list[P.PhysicalOp] = []
        startup, residual = startup_conjuncts(op.predicate)
        # base: filter over the best child plan
        child_plan = self._optimize_group(child_group, ())
        plan: P.PhysicalOp = child_plan
        if residual:
            node = P.Filter(plan, conjoin(residual))
            node.est_rows = props.cardinality
            node.cost = plan.cost + self.cost_model.filter(
                child_group.properties.cardinality,
                _conjunct_weight(residual),
            )
            plan = node
        plan = self._wrap_startup(plan, startup, props)
        out.append(plan)
        # index access paths
        if self.options.enable_index_paths:
            out.extend(
                self._index_paths(op, child_group, props, startup, residual)
            )
        # full-text access path (Figure 2)
        if self.options.enable_fulltext_paths:
            out.extend(
                self._fulltext_paths(op, child_group, props, startup, residual)
            )
        return out

    def _wrap_startup(
        self,
        plan: P.PhysicalOp,
        startup: list[ScalarExpr],
        props: GroupProperties,
    ) -> P.PhysicalOp:
        if not startup:
            return plan
        node = P.StartupFilter(plan, conjoin(startup))
        node.est_rows = plan.est_rows
        # the startup test itself is ~free; it *saves* the child cost
        # with some probability — model a modest expected saving
        node.cost = plan.cost * 0.9 + 0.001
        return node

    def _index_paths(
        self,
        op: Select,
        child_group: Group,
        props: GroupProperties,
        startup: list[ScalarExpr],
        residual: list[ScalarExpr],
    ) -> list[P.PhysicalOp]:
        from repro.core.constraints import derive_domains, parameter_comparisons

        out: list[P.PhysicalOp] = []
        get = _find_get(child_group)
        if get is None:
            return out
        table = get.table
        residual_pred_all = conjoin(residual) if residual else None
        domains = derive_domains(residual_pred_all)
        param_probes = parameter_comparisons(residual_pred_all)
        if not domains and not param_probes:
            return out
        cid_by_name = {d.name.lower(): d.cid for d in table.columns}
        if table.local_table is not None:
            indexes = list(table.local_table.indexes.values())
            index_metas = [ix.metadata for ix in indexes]
            remote = False
        elif (
            table.remote_info is not None
            and table.provider is not None
            and table.provider.capabilities.is_index_provider
        ):
            index_metas = table.remote_info.indexes
            remote = True
        else:
            return out
        probes_by_cid = {cid: (op_, probe) for cid, op_, probe in param_probes}
        for meta in index_metas:
            first_key = meta.key_columns[0].lower()
            key_cid = cid_by_name.get(first_key)
            if key_cid is None:
                continue
            has_domain = key_cid in domains
            has_probe = not remote and key_cid in probes_by_cid
            if not has_domain and not has_probe:
                continue
            # residual keeps every conjunct except the ones the domain
            # fully captures (conservative: keep all, correctness first)
            residual_pred = conjoin(residual) if residual else None
            table_rows = child_group.properties.cardinality
            selected = props.cardinality
            if remote:
                domain = domains[key_cid]
                node: P.PhysicalOp = P.RemoteRange(
                    table, meta.name, key_cid, domain, residual_pred
                )
                channel = table.provider.channel
                node.est_rows = selected
                node.cost = (
                    self.cost_model.remote_transfer(
                        channel, selected, props.row_width + 8
                    )
                    + channel.latency_ms  # separate bookmark-fetch trip
                    + self._health_penalty(table.server)
                )
            else:
                from repro.types.intervals import IntervalSet

                domain = domains.get(key_cid, IntervalSet.full())
                probe = probes_by_cid.get(key_cid) if has_probe else None
                node = P.IndexRange(
                    table, meta.name, key_cid, domain, residual_pred,
                    dynamic_probe=probe,
                )
                if probe is not None and not has_domain:
                    # parameterized seek: estimate from key distincts
                    key_stats = child_group.properties.column_stats.get(
                        key_cid
                    )
                    if probe[0] == "=" and key_stats is not None:
                        selected = min(
                            selected,
                            table_rows / max(1.0, key_stats.distinct_count),
                        )
                node.est_rows = selected
                node.cost = self.cost_model.index_range(table_rows, selected)
            out.append(self._wrap_startup(node, startup, props))
        return out

    def _fulltext_paths(
        self,
        op: Select,
        child_group: Group,
        props: GroupProperties,
        startup: list[ScalarExpr],
        residual: list[ScalarExpr],
    ) -> list[P.PhysicalOp]:
        out: list[P.PhysicalOp] = []
        contains = [c for c in residual if isinstance(c, ContainsPredicate)]
        if not contains:
            return out
        get = _find_get(child_group)
        if get is None or get.table.fulltext is None:
            return out
        binding = get.table.fulltext
        cid_by_name = {d.name.lower(): d.cid for d in get.table.columns}
        key_cid = cid_by_name.get(binding.key_column.lower())
        text_cid = cid_by_name.get(binding.text_column.lower())
        if key_cid is None:
            return out
        predicate = contains[0]
        if text_cid is not None and predicate.column.cid != text_cid:
            return out  # CONTAINS over a different column than the index
        lookup_key = next(self._cid_counter)
        lookup_rank = next(self._cid_counter)
        lookup = P.FullTextKeyLookup(
            binding, predicate.query_text, lookup_key, lookup_rank
        )
        catalog = binding.service.catalog(binding.catalog_name)
        match_estimate = max(1.0, catalog.index.document_count * 0.05)
        lookup.est_rows = match_estimate
        lookup.cost = self.cost_model.fulltext_lookup(match_estimate)
        child_plan = self._optimize_group(child_group, ())
        join = P.HashJoin(
            child_plan,
            lookup,
            "semi",
            [ColumnRef(key_cid, "key")],
            [ColumnRef(lookup_key, "KEY")],
        )
        join.est_rows = min(child_plan.est_rows, match_estimate)
        join.cost = (
            child_plan.cost
            + lookup.cost
            + self.cost_model.hash_join(match_estimate, child_plan.est_rows)
        )
        plan: P.PhysicalOp = join
        others = [c for c in residual if c is not predicate]
        if others:
            node = P.Filter(plan, conjoin(others))
            node.est_rows = props.cardinality
            node.cost = plan.cost + self.cost_model.filter(
                join.est_rows, len(others)
            )
            plan = node
        out.append(self._wrap_startup(plan, startup, props))
        return out

    def _implement_project(
        self, op: Project, expr: GroupExpression, props: GroupProperties
    ) -> list[P.PhysicalOp]:
        child = self._optimize_group(expr.children[0], ())
        node = P.ComputeProject(child, op.outputs)
        node.est_rows = props.cardinality
        node.cost = child.cost + self.cost_model.project(
            props.cardinality, len(op.outputs)
        )
        return [node]

    # ------------------------------------------------------------------
    def _implement_join(
        self, op: Join, expr: GroupExpression, props: GroupProperties
    ) -> list[P.PhysicalOp]:
        left_group, right_group = expr.children
        kind = op.kind.value
        equi, residual = _split_equi(
            op.condition,
            frozenset(left_group.properties.output_ids),
            frozenset(right_group.properties.output_ids),
        )
        out: list[P.PhysicalOp] = []
        left_plan = self._optimize_group(left_group, ())
        right_plan = self._optimize_group(right_group, ())
        left_rows = left_group.properties.cardinality
        right_rows = right_group.properties.cardinality
        # hash join on equi keys
        if equi and op.kind != JoinKind.CROSS:
            node = P.HashJoin(
                left_plan,
                right_plan,
                kind,
                [l for l, __ in equi],
                [r for __, r in equi],
                conjoin(residual) if residual else None,
            )
            node.est_rows = props.cardinality
            node.cost = (
                left_plan.cost
                + right_plan.cost
                + self.cost_model.hash_join(right_rows, left_rows)
            )
            out.append(node)
        # nested loops (with optional spooled inner)
        inner_variants: list[P.PhysicalOp] = [right_plan]
        if self.options.enable_spool and self.phase >= 1 and left_rows > 1:
            spool = P.Spool(right_plan, reason="rescan")
            spool.est_rows = right_plan.est_rows
            spool.cost = right_plan.cost + self.cost_model.spool_build(
                right_plan.est_rows
            )
            spool.rescan_cost_value = self.cost_model.spool_rescan(
                right_plan.est_rows
            )
            inner_variants.append(spool)
        for inner in inner_variants:
            node = P.NLJoin(left_plan, inner, kind, op.condition)
            node.est_rows = props.cardinality
            node.cost = left_plan.cost + self.cost_model.nl_join(
                left_rows, inner.cost, inner.rescan_cost
            ) + self.cost_model.filter(left_rows * max(1.0, right_rows), 1)
            out.append(node)
        # merge join (phase 2): single equi key
        if (
            self.options.enable_merge_join
            and self.phase >= 2
            and len(equi) == 1
            and op.kind in (JoinKind.INNER, JoinKind.SEMI, JoinKind.ANTI_SEMI)
        ):
            (lref, rref) = equi[0]
            left_sorted = self._optimize_group(
                left_group, ((lref.cid, True),)
            )
            right_sorted = self._optimize_group(
                right_group, ((rref.cid, True),)
            )
            node = P.MergeJoin(
                left_sorted,
                right_sorted,
                kind,
                lref.cid,
                rref.cid,
                conjoin(residual) if residual else None,
            )
            node.est_rows = props.cardinality
            node.cost = (
                left_sorted.cost
                + right_sorted.cost
                + self.cost_model.merge_join(left_rows, right_rows)
            )
            out.append(node)
        # parameterized remote join (Section 4.1.2)
        if (
            self.options.enable_parameterization
            and self.phase >= 1
            and equi
            and op.kind in (JoinKind.INNER, JoinKind.SEMI)
        ):
            param_plan = self._parameterized_remote_join(
                op, left_plan, left_group, right_group, equi, residual, props
            )
            if param_plan is not None:
                out.append(param_plan)
        return out

    def _parameterized_remote_join(
        self,
        op: Join,
        left_plan: P.PhysicalOp,
        left_group: Group,
        right_group: Group,
        equi: list[tuple[ColumnRef, ColumnRef]],
        residual: list[ScalarExpr],
        props: GroupProperties,
    ) -> Optional[P.PhysicalOp]:
        server_name = right_group.properties.single_server
        if server_name is None:
            return None
        server = self.linked_server(server_name)
        if (
            server is None
            or not server.capabilities.is_sql_provider
            or not server.capabilities.can_remote(Operation.PARAMETER)
        ):
            return None
        # an open breaker means every probe would fast-fail: don't even
        # offer the parameterized alternative
        if self._health_state(server_name) == "open":
            return None
        try:
            right_tree = extract_logical_tree(right_group)
            probe_conjuncts: list[ScalarExpr] = []
            for index, (__, rref) in enumerate(equi):
                probe_conjuncts.append(
                    BinaryOp("=", rref, Parameter(f"__probe{index}"))
                )
            probed = Select(right_tree, conjoin(probe_conjuncts))
            decoder = Decoder(server.capabilities, server_name)
            decoded = decoder.decode_tree(probed)
        except DecoderError:
            return None
        # map probe parameters back to outer column refs
        param_exprs: list[ScalarExpr] = []
        for param in decoded.params:
            if isinstance(param, Parameter) and param.name.startswith("__probe"):
                index = int(param.name[len("__probe"):])
                param_exprs.append(equi[index][0])
            else:
                param_exprs.append(param)
        inner = P.RemoteQuery(
            server,
            decoded.sql_text,
            decoded.column_order,
            param_exprs,
            decoded.tables,
        )
        right_rows = right_group.properties.cardinality
        key_stats = right_group.properties.column_stats.get(equi[0][1].cid)
        per_probe = (
            right_rows / max(1.0, key_stats.distinct_count)
            if key_stats is not None
            else max(1.0, right_rows * 0.01)
        )
        inner.est_rows = per_probe
        inner.cost = self.cost_model.parameterized_remote_probe(
            server.channel, per_probe, right_group.properties.row_width
        )
        node = P.ParameterizedRemoteJoin(
            left_plan,
            inner,
            op.kind.value,
            conjoin(residual) if residual else None,
        )
        left_rows = left_group.properties.cardinality
        # the executor caches probe results per distinct parameter
        # vector, so duplicate outer keys cost one round trip
        left_key_stats = left_group.properties.column_stats.get(
            equi[0][0].cid
        )
        if left_key_stats is not None:
            probe_count = min(
                left_rows, max(1.0, left_key_stats.distinct_count)
            )
        else:
            probe_count = left_rows
        node.est_rows = props.cardinality
        node.cost = (
            left_plan.cost
            + probe_count * inner.cost
            + self._health_penalty(server_name)
        )
        return node

    def _implement_aggregate(
        self, op: Aggregate, expr: GroupExpression, props: GroupProperties
    ) -> list[P.PhysicalOp]:
        child_group = expr.children[0]
        child = self._optimize_group(child_group, ())
        out: list[P.PhysicalOp] = []
        node = P.HashAggregate(child, op.group_by, op.aggregates)
        node.est_rows = props.cardinality
        node.cost = child.cost + self.cost_model.aggregate(
            child_group.properties.cardinality, props.cardinality
        )
        out.append(node)
        if op.group_by and self.options.enable_merge_join and self.phase >= 2:
            required = tuple((cid, True) for cid in op.group_by)
            sorted_child = self._optimize_group(child_group, required)
            stream = P.StreamAggregate(sorted_child, op.group_by, op.aggregates)
            stream.est_rows = props.cardinality
            stream.cost = sorted_child.cost + (
                child_group.properties.cardinality * self.cost_model.cpu_row_ms
            )
            out.append(stream)
        return out

    # ------------------------------------------------------------------
    def _try_remote_query(self, group: Group) -> Optional[P.PhysicalOp]:
        """The "build remote query" implementation rule, applied at the
        group level so the decoder may pick any remotable alternative."""
        if not self.options.enable_remote_query or self.phase < 1:
            return None
        server_name = group.properties.single_server
        if server_name is None:
            return None
        server = self.linked_server(server_name)
        if server is None:
            return None
        capabilities = server.capabilities
        if not capabilities.is_sql_provider:
            return None
        if not server.datasource.supports_interface(IDB_CREATE_COMMAND):
            return None
        # trivial Gets gain nothing from a remote query over a RemoteScan
        if len(group.expressions) == 1 and isinstance(group.expressions[0].op, Get):
            return None
        # open breaker: disqualify deep pushdown entirely — the engine
        # degrades to fetch-and-filter (RemoteScan + local operators),
        # which survives a replan or partial-results pruning
        if self._health_state(server_name) == "open":
            if self.trace is not None:
                self.trace.event(
                    "health_pushdown_disqualified", server=server_name
                )
            return None
        try:
            decoded = Decoder(capabilities, server_name).decode_group(group)
        except DecoderError:
            return None
        node = P.RemoteQuery(
            server,
            decoded.sql_text,
            decoded.column_order,
            decoded.params,
            decoded.tables,
        )
        node.est_rows = group.properties.cardinality
        remote_work = group.properties.cardinality * self.cost_model.cpu_row_ms * 3
        node.cost = self.cost_model.remote_query(
            server.channel,
            group.properties.cardinality,
            group.properties.row_width,
            remote_work,
        ) + self._health_penalty(server_name)
        return node

    # ------------------------------------------------------------------
    @staticmethod
    def _cid_for_column(table: Any, column_name: str) -> Optional[int]:
        for definition in table.columns:
            if definition.name.lower() == column_name.lower():
                return definition.cid
        return None


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def _conjunct_weight(residual: list[ScalarExpr]) -> int:
    """Relative evaluation cost of a conjunct list.

    A CONTAINS predicate evaluated row-at-a-time re-tokenizes the text
    (the fallback path); it is orders of magnitude dearer than a simple
    comparison, which is why the external-index join of Figure 2 wins
    at scale.
    """
    weight = 0
    for conjunct in residual:
        if isinstance(conjunct, ContainsPredicate):
            weight += 100
        else:
            weight += 1
    return max(1, weight)


def _sort_satisfies(
    provided: tuple[tuple[int, bool], ...], required: RequiredSort
) -> bool:
    return provided[: len(required)] == tuple(required)


def _contains_remote(plan: P.PhysicalOp) -> bool:
    """True when any operator in ``plan`` talks to a linked server —
    only such branches have network latency an exchange can hide."""
    return any(
        isinstance(
            node,
            (P.RemoteScan, P.RemoteRange, P.RemoteQuery,
             P.ParameterizedRemoteJoin),
        )
        for node in plan.walk()
    )


def _split_equi(
    condition: Optional[ScalarExpr],
    left_ids: frozenset[int],
    right_ids: frozenset[int],
) -> tuple[list[tuple[ColumnRef, ColumnRef]], list[ScalarExpr]]:
    """Extract equi-join pairs (left_ref, right_ref) from a condition."""
    equi: list[tuple[ColumnRef, ColumnRef]] = []
    residual: list[ScalarExpr] = []
    for conjunct in conjuncts(condition):
        if (
            isinstance(conjunct, BinaryOp)
            and conjunct.op == "="
            and isinstance(conjunct.left, ColumnRef)
            and isinstance(conjunct.right, ColumnRef)
        ):
            lref, rref = conjunct.left, conjunct.right
            if lref.cid in left_ids and rref.cid in right_ids:
                equi.append((lref, rref))
                continue
            if rref.cid in left_ids and lref.cid in right_ids:
                equi.append((rref, lref))
                continue
        residual.append(conjunct)
    return equi, residual


def _find_get(group: Group) -> Optional[Get]:
    for expr in group.expressions:
        if isinstance(expr.op, Get):
            return expr.op
    return None


def extract_logical_tree(group: Group) -> LogicalOp:
    """Materialize one logical tree from a memo group (first
    alternative), for decode_tree-style consumers."""
    expr = group.expressions[0]
    children = [extract_logical_tree(child) for child in expr.children]
    return expr.op.with_inputs(children)
