"""Exploration rules: equivalent logical alternatives (Section 4.1.1).

Local rules (join commutation/association) "are also directly
applicable to distributed queries"; the remote-specific exploration
rules of Section 4.1.2 — grouping joins based on locality and
splitting/merging predicates based on remotability — ride on the same
framework.
"""

from __future__ import annotations

from repro.algebra.expressions import ScalarExpr, conjoin, conjuncts
from repro.algebra.logical import Join, JoinKind, Select
from repro.core.memo import Group, GroupExpression
from repro.core.rules.base import ExplorationRule, RuleContext

_REORDERABLE = (JoinKind.INNER, JoinKind.CROSS)


class JoinCommute(ExplorationRule):
    """A JOIN B ≡ B JOIN A (inner/cross only)."""

    name = "join_commute"
    op_types = ("Join",)
    promise = 2.0
    min_phase = 1

    def matches(self, expr: GroupExpression) -> bool:
        return isinstance(expr.op, Join) and expr.op.kind in _REORDERABLE

    def apply(self, expr: GroupExpression, context: RuleContext) -> int:
        join: Join = expr.op
        flipped = Join(None, None, join.kind, join.condition)
        new_expr, __ = context.memo.insert_expression(
            flipped, (expr.children[1], expr.children[0]), target=expr.group
        )
        # prevent commuting straight back
        new_expr.applied_rules.add(self.name)
        return 1 if new_expr.op is flipped else 0


class JoinAssociate(ExplorationRule):
    """(A ⋈ B) ⋈ C → A ⋈ (B ⋈ C), redistributing condition conjuncts."""

    name = "join_associate"
    op_types = ("Join",)
    promise = 1.5
    min_phase = 2

    def matches(self, expr: GroupExpression) -> bool:
        if not (isinstance(expr.op, Join) and expr.op.kind in _REORDERABLE):
            return False
        left_group = expr.children[0]
        return any(
            isinstance(e.op, Join) and e.op.kind in _REORDERABLE
            for e in left_group.expressions
        )

    def apply(self, expr: GroupExpression, context: RuleContext) -> int:
        top: Join = expr.op
        left_group, c_group = expr.children
        inserted = 0
        for left_expr in list(left_group.expressions):
            if not (
                isinstance(left_expr.op, Join)
                and left_expr.op.kind in _REORDERABLE
            ):
                continue
            a_group, b_group = left_expr.children
            inserted += _associate(
                context,
                expr.group,
                a_group,
                b_group,
                c_group,
                left_expr.op.condition,
                top.condition,
            )
        return inserted


def _associate(
    context: RuleContext,
    target: Group,
    a_group: Group,
    b_group: Group,
    c_group: Group,
    inner_condition,
    top_condition,
) -> int:
    """Build A ⋈ (B ⋈ C) in ``target`` from the given pieces."""
    b_ids = frozenset(b_group.properties.output_ids)
    c_ids = frozenset(c_group.properties.output_ids)
    bc_ids = b_ids | c_ids
    all_conjuncts: list[ScalarExpr] = []
    if inner_condition is not None:
        all_conjuncts.extend(conjuncts(inner_condition))
    if top_condition is not None:
        all_conjuncts.extend(conjuncts(top_condition))
    bc_parts = [c for c in all_conjuncts if c.references() and c.references() <= bc_ids]
    top_parts = [c for c in all_conjuncts if c not in bc_parts]
    bc_kind = JoinKind.INNER if bc_parts else JoinKind.CROSS
    bc_join = Join(None, None, bc_kind, conjoin(bc_parts))
    __, bc_group = context.memo.insert_expression(bc_join, (b_group, c_group))
    top_kind = JoinKind.INNER if top_parts else JoinKind.CROSS
    new_top = Join(None, None, top_kind, conjoin(top_parts))
    new_expr, group = context.memo.insert_expression(
        new_top, (a_group, bc_group), target=target
    )
    return 1 if group is target and new_expr.op is new_top else 0


class LocalityGrouping(ExplorationRule):
    """Reorder joins so same-server operands join first (Section 4.1.2:
    "grouping joins based on locality ... to find solutions of pushing
    the largest possible sub-tree to the remote source").

    Matches (A ⋈ B) ⋈ C where A and C live on the same single remote
    server but B does not, producing (A ⋈ C) ⋈ B.
    """

    name = "locality_grouping"
    op_types = ("Join",)
    promise = 3.0  # high promise: cheap test, large payoff
    min_phase = 1

    def matches(self, expr: GroupExpression) -> bool:
        if not (isinstance(expr.op, Join) and expr.op.kind in _REORDERABLE):
            return False
        left_group = expr.children[0]
        return any(
            isinstance(e.op, Join) and e.op.kind in _REORDERABLE
            for e in left_group.expressions
        )

    def apply(self, expr: GroupExpression, context: RuleContext) -> int:
        if not context.options.enable_locality_grouping:
            return 0
        top: Join = expr.op
        left_group, c_group = expr.children
        c_server = c_group.properties.single_server
        if c_server is None:
            return 0
        inserted = 0
        for left_expr in list(left_group.expressions):
            if not (
                isinstance(left_expr.op, Join)
                and left_expr.op.kind in _REORDERABLE
            ):
                continue
            a_group, b_group = left_expr.children
            a_server = a_group.properties.single_server
            b_server = b_group.properties.single_server
            if a_server == c_server and b_server != c_server:
                inserted += self._regroup(
                    context, expr.group, a_group, b_group, c_group,
                    left_expr.op.condition, top.condition,
                )
            elif b_server == c_server and a_server != c_server:
                inserted += self._regroup(
                    context, expr.group, b_group, a_group, c_group,
                    left_expr.op.condition, top.condition,
                )
        return inserted

    @staticmethod
    def _regroup(
        context: RuleContext,
        target: Group,
        same_group: Group,
        other_group: Group,
        c_group: Group,
        inner_condition,
        top_condition,
    ) -> int:
        """Build (same ⋈ C) ⋈ other in ``target``."""
        same_ids = frozenset(same_group.properties.output_ids)
        c_ids = frozenset(c_group.properties.output_ids)
        sc_ids = same_ids | c_ids
        all_conjuncts: list[ScalarExpr] = []
        if inner_condition is not None:
            all_conjuncts.extend(conjuncts(inner_condition))
        if top_condition is not None:
            all_conjuncts.extend(conjuncts(top_condition))
        sc_parts = [
            c for c in all_conjuncts if c.references() and c.references() <= sc_ids
        ]
        rest = [c for c in all_conjuncts if c not in sc_parts]
        sc_kind = JoinKind.INNER if sc_parts else JoinKind.CROSS
        sc_join = Join(None, None, sc_kind, conjoin(sc_parts))
        __, sc_group = context.memo.insert_expression(
            sc_join, (same_group, c_group)
        )
        top_kind = JoinKind.INNER if rest else JoinKind.CROSS
        new_top = Join(None, None, top_kind, conjoin(rest))
        new_expr, group = context.memo.insert_expression(
            new_top, (sc_group, other_group), target=target
        )
        return 1 if new_expr.op is new_top else 0


class PredicateSplitByRemotability(ExplorationRule):
    """Split a Select's conjuncts into a remotable part (pushable to the
    child's single server) and a non-remotable residue (Section 4.1.2:
    "splitting and merging selection predicates based on predicate
    remotability").

    Produces Select(nonremote, Select(remote, child)) so the inner
    Select can fuse into a remote query.
    """

    name = "predicate_split"
    op_types = ("Select",)
    promise = 2.5
    min_phase = 1

    def matches(self, expr: GroupExpression) -> bool:
        return isinstance(expr.op, Select)

    def apply(self, expr: GroupExpression, context: RuleContext) -> int:
        if not context.options.enable_predicate_split:
            return 0
        select: Select = expr.op
        child_group = expr.children[0]
        server_name = child_group.properties.single_server
        if server_name is None:
            return 0
        server = context.optimizer.linked_server(server_name)
        if server is None or not server.capabilities.is_sql_provider:
            return 0
        from repro.core.decoder import Decoder

        decoder = Decoder(server.capabilities, server_name)
        remotable: list[ScalarExpr] = []
        residual: list[ScalarExpr] = []
        probe_columns = {
            cid: f"x{cid}" for cid in child_group.properties.output_ids
        }
        for conjunct in conjuncts(select.predicate):
            try:
                decoder._expr(conjunct, probe_columns)
                remotable.append(conjunct)
            except Exception:
                residual.append(conjunct)
        if not remotable or not residual:
            return 0
        inner = Select(None, conjoin(remotable))
        __, inner_group = context.memo.insert_expression(
            inner, (child_group,)
        )
        outer = Select(None, conjoin(residual))
        new_expr, __g = context.memo.insert_expression(
            outer, (inner_group,), target=expr.group
        )
        return 1 if new_expr.op is outer else 0


def default_exploration_rules() -> list[ExplorationRule]:
    return [
        LocalityGrouping(),
        PredicateSplitByRemotability(),
        JoinCommute(),
        JoinAssociate(),
    ]
