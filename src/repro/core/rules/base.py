"""Rule framework plumbing.

Every rule carries a *promise* ("a Promise routine exists on each rule
to define how valuable this particular rule could be") and declares the
operator types it can match — the per-operator *guidance* lists are
built from these declarations ("each operator contains a routine called
Guidance that enumerates rules that could match it").  Rules also name
the earliest optimization phase that enables them (Section 4.1.1's
restricted early phases).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.core.memo import GroupExpression, Memo

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.optimizer import Optimizer


class RuleContext:
    """What a firing rule may touch."""

    def __init__(self, memo: Memo, optimizer: "Optimizer"):
        self.memo = memo
        self.optimizer = optimizer

    @property
    def options(self):
        return self.optimizer.options


class ExplorationRule:
    """Generates equivalent logical alternatives within a group."""

    #: rule identifier (also the re-application guard key)
    name: str = "exploration"
    #: operator class names this rule can match (guidance)
    op_types: tuple[str, ...] = ()
    #: how valuable the rule is; higher fires first
    promise: float = 1.0
    #: earliest phase (0 = transaction processing, 1 = quick plan,
    #: 2 = full optimization)
    min_phase: int = 0

    def matches(self, expr: GroupExpression) -> bool:
        return True

    def apply(self, expr: GroupExpression, context: RuleContext) -> int:
        """Fire on ``expr``; insert alternatives into ``expr.group``.
        Returns the number of new expressions inserted."""
        raise NotImplementedError


def guidance_index(
    rules: Iterable[ExplorationRule],
) -> dict[str, list[ExplorationRule]]:
    """Build the per-operator guidance lists, promise-ordered."""
    index: dict[str, list[ExplorationRule]] = {}
    for rule in rules:
        for op_type in rule.op_types:
            index.setdefault(op_type, []).append(rule)
    for bucket in index.values():
        bucket.sort(key=lambda r: -r.promise)
    return index
