"""Simplification rules: heuristic tree rewrites (Section 4.1.1).

"Simplification Rules perform heuristic tree rewrites, generally early
in the optimization process.  In this phase, logical trees are
rewritten into simpler logical trees."  We run them as a bottom-up
rewrite pass to fixpoint before memo insertion: predicate
merge/pushdown, cross-to-inner join conversion, pushdown into UNION ALL
branches (the gateway to partitioned-view pruning), constant folding,
**static pruning** via the constraint property framework, and
**startup-filter derivation** for parameterized predicates
(Section 4.1.5).
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.expressions import (
    BinaryOp,
    ColumnRef,
    Literal,
    NotOp,
    ScalarExpr,
    conjoin,
    conjuncts,
)
from repro.algebra.logical import (
    Aggregate,
    EmptyTable,
    Get,
    Join,
    JoinKind,
    LogicalOp,
    Project,
    Select,
    Sort,
    Top,
    UnionAll,
)
from repro.core.constraints import (
    DomainTest,
    contradicts,
    derive_domains,
    parameter_comparisons,
)


class NormalizeOptions:
    """Feature switches (ablation experiments flip these)."""

    def __init__(
        self,
        static_pruning: bool = True,
        startup_filters: bool = True,
        push_into_union: bool = True,
        partial_aggregation: bool = True,
    ):
        self.static_pruning = static_pruning
        self.startup_filters = startup_filters
        self.push_into_union = push_into_union
        self.partial_aggregation = partial_aggregation


def normalize(
    root: LogicalOp, options: Optional[NormalizeOptions] = None, max_passes: int = 10
) -> LogicalOp:
    """Rewrite to fixpoint (bounded), then prune unused columns."""
    options = options or NormalizeOptions()
    for __ in range(max_passes):
        rewritten, changed = _rewrite(root, options)
        root = rewritten
        if not changed:
            break
    root = prune_columns(root)
    # pruning may expose further local rewrites (e.g. select/project swaps)
    for __ in range(max_passes):
        rewritten, changed = _rewrite(root, options)
        root = rewritten
        if not changed:
            break
    return root


# ----------------------------------------------------------------------
# column pruning
# ----------------------------------------------------------------------

def prune_columns(root: LogicalOp) -> LogicalOp:
    """Top-down column pruning: remote Gets that feed only a subset of
    their columns upward get a projection, so the build-remote-query
    rule ships narrower rows (the remote cost model is byte-driven —
    Section 4.1.3)."""
    return _prune(root, frozenset(root.output_ids()))


def _prune(op: LogicalOp, required: frozenset) -> LogicalOp:
    from repro.algebra.expressions import ColumnRef as _ColumnRef
    from repro.algebra.logical import Get as _Get

    if isinstance(op, _Get):
        keep = [d for d in op.table.columns if d.cid in required]
        if op.table.is_remote and 0 < len(keep) < len(op.table.columns):
            outputs = [
                (d.cid, _ColumnRef(d.cid, d.name, d.type, d.nullable))
                for d in keep
            ]
            return Project(op, outputs, keep)
        return op
    if isinstance(op, Select):
        child_required = required | op.predicate.references()
        return Select(_prune(op.child, child_required), op.predicate)
    if isinstance(op, Project):
        child_required = frozenset()
        for __, expr in op.outputs:
            child_required |= expr.references()
        return Project(
            _prune(op.child, child_required), op.outputs, op.column_defs
        )
    if isinstance(op, Join):
        condition_refs = (
            op.condition.references() if op.condition is not None else frozenset()
        )
        left_ids = frozenset(op.left.output_ids())
        right_ids = frozenset(op.right.output_ids())
        wanted = required | condition_refs
        left = _prune(op.left, wanted & left_ids)
        right = _prune(op.right, wanted & right_ids)
        return Join(left, right, op.kind, op.condition)
    if isinstance(op, Aggregate):
        child_required = frozenset(op.group_by)
        for aggregate in op.aggregates:
            child_required |= aggregate.references()
        return Aggregate(
            _prune(op.child, child_required), op.group_by, op.aggregates
        )
    if isinstance(op, Sort):
        child_required = required | frozenset(k.cid for k in op.keys)
        return Sort(_prune(op.child, child_required), op.keys)
    if isinstance(op, Top):
        return Top(_prune(op.child, required), op.count)
    if isinstance(op, UnionAll):
        kept_defs = [d for d in op.output_defs if d.cid in required]
        if not kept_defs:
            kept_defs = list(op.output_defs)
        kept_maps = [
            {d.cid: branch_map[d.cid] for d in kept_defs}
            for branch_map in op.branch_maps
        ]
        branches = []
        for branch, branch_map in zip(op.inputs, kept_maps):
            branch_required = frozenset(branch_map.values())
            branches.append(_prune(branch, branch_required))
        return UnionAll(branches, kept_defs, kept_maps)
    return op


def _rewrite(op: LogicalOp, options: NormalizeOptions) -> tuple[LogicalOp, bool]:
    changed = False
    new_inputs = []
    for child in op.inputs:
        new_child, child_changed = _rewrite(child, options)
        new_inputs.append(new_child)
        changed |= child_changed
    if changed:
        op = op.with_inputs(new_inputs)
    rewritten = _rewrite_node(op, options)
    if rewritten is not None:
        return rewritten, True
    return op, changed


def _rewrite_node(op: LogicalOp, options: NormalizeOptions) -> Optional[LogicalOp]:
    """One local rewrite, or None when nothing applies."""
    if isinstance(op, Select):
        return _rewrite_select(op, options)
    if isinstance(op, Join):
        return _rewrite_join(op)
    if isinstance(op, UnionAll):
        return _rewrite_union(op, options)
    if isinstance(op, Project):
        return _rewrite_project(op)
    if isinstance(op, (Sort, Top)) and isinstance(op.inputs[0], EmptyTable):
        return EmptyTable(_defs_for(op))
    if isinstance(op, Aggregate) and isinstance(op.inputs[0], EmptyTable):
        if op.group_by:
            return EmptyTable(_defs_for(op))
        return None  # scalar aggregate over empty input still yields a row
    if (
        isinstance(op, Aggregate)
        and options.partial_aggregation
        and isinstance(op.inputs[0], UnionAll)
    ):
        return _push_partial_aggregates(op, op.inputs[0])
    return None


# module-level cid counter for rewrite-minted columns; starts far above
# any binder-assigned id so compilations never collide
import itertools as _itertools

_REWRITE_CIDS = _itertools.count(2_000_000)

#: partial/combine function per decomposable aggregate
_DECOMPOSABLE = {
    "count": "sum",
    "sum": "sum",
    "min": "min",
    "max": "max",
}


def _push_partial_aggregates(op: Aggregate, union: UnionAll) -> Optional[LogicalOp]:
    """Local-global aggregation over a partitioned view: each member
    aggregates its own rows; the union ships one row per group per
    member; a global aggregate recombines.  COUNT recombines via SUM;
    SUM/MIN/MAX via themselves; AVG and DISTINCT are not decomposable
    and leave the aggregate where it is.
    """
    from repro.algebra.expressions import AggregateCall, ColumnDef, ColumnRef

    if any(
        agg.func not in _DECOMPOSABLE or agg.distinct
        for agg in op.aggregates
    ):
        return None
    # guard against re-application: branches already aggregated
    if any(isinstance(branch, Aggregate) for branch in union.inputs):
        return None
    group_defs = [d for d in union.output_defs if d.cid in op.group_by]
    if len(group_defs) != len(op.group_by):
        return None  # a group key is not a plain union output column
    new_branches = []
    new_maps = []
    partial_out_defs: Optional[list] = None
    for branch, branch_map in zip(union.inputs, union.branch_maps):
        partial_group = [branch_map[cid] for cid in op.group_by]
        partial_aggs = []
        for aggregate in op.aggregates:
            argument = (
                aggregate.argument.remap(branch_map)
                if aggregate.argument is not None
                else None
            )
            partial_aggs.append(
                AggregateCall(
                    aggregate.func,
                    argument,
                    next(_REWRITE_CIDS),
                    f"partial_{aggregate.output_name}",
                )
            )
        new_branches.append(Aggregate(branch, partial_group, partial_aggs))
        if partial_out_defs is None:
            partial_out_defs = [
                ColumnDef(next(_REWRITE_CIDS), call.output_name, call.type)
                for call in partial_aggs
            ]
        branch_out_map = {
            d.cid: branch_map[d.cid] for d in group_defs
        }
        for out_def, call in zip(partial_out_defs, partial_aggs):
            branch_out_map[out_def.cid] = call.output_cid
        new_maps.append(branch_out_map)
    assert partial_out_defs is not None
    new_union = UnionAll(
        new_branches, list(group_defs) + partial_out_defs, new_maps
    )
    global_aggs = []
    for aggregate, partial_def in zip(op.aggregates, partial_out_defs):
        global_aggs.append(
            AggregateCall(
                _DECOMPOSABLE[aggregate.func],
                ColumnRef(partial_def.cid, partial_def.name, partial_def.type),
                aggregate.output_cid,
                aggregate.output_name,
            )
        )
    return Aggregate(new_union, op.group_by, global_aggs)


# ----------------------------------------------------------------------
# Select rewrites
# ----------------------------------------------------------------------

def _rewrite_select(op: Select, options: NormalizeOptions) -> Optional[LogicalOp]:
    child = op.child
    # constant-fold the predicate
    folded = _fold(op.predicate)
    if folded is not op.predicate:
        if isinstance(folded, Literal):
            if folded.value is True:
                return child
            return EmptyTable(_defs_for(op))
        return Select(child, folded)
    # merge stacked selects
    if isinstance(child, Select):
        return Select(
            child.child, BinaryOp("AND", child.predicate, op.predicate)
        )
    # static pruning: predicate domains vs child base domains
    if options.static_pruning:
        predicate_domains = derive_domains(op.predicate)
        base_domains = _base_domains(child)
        if contradicts(predicate_domains, base_domains):
            return EmptyTable(_defs_for(op))
    # empty child
    if isinstance(child, EmptyTable):
        return child
    # push through project
    if isinstance(child, Project):
        mapping = {cid: expr for cid, expr in child.outputs}
        refs = op.predicate.references()
        if all(cid in mapping for cid in refs):
            pushed = op.predicate.substitute(mapping)
            return Project(
                Select(child.child, pushed), child.outputs, child.column_defs
            )
    # push into join
    if isinstance(child, Join):
        return _push_select_into_join(op, child)
    # push into union branches (partitioned views)
    if options.push_into_union and isinstance(child, UnionAll):
        branches = []
        for branch, branch_map in zip(child.inputs, child.branch_maps):
            remapped = op.predicate.remap(branch_map)
            branches.append(Select(branch, remapped))
        return UnionAll(branches, child.output_defs, child.branch_maps)
    # startup-filter derivation over a Get with CHECK domains
    if options.startup_filters and isinstance(child, Get):
        derived = _derive_startup_tests(op, child)
        if derived is not None:
            return derived
    return None


def _push_select_into_join(op: Select, join: Join) -> Optional[LogicalOp]:
    left_ids = frozenset(join.left.output_ids())
    right_ids = frozenset(join.right.output_ids())
    push_left: list[ScalarExpr] = []
    push_right: list[ScalarExpr] = []
    to_condition: list[ScalarExpr] = []
    keep: list[ScalarExpr] = []
    for conjunct in conjuncts(op.predicate):
        refs = conjunct.references()
        if not refs:
            # column-free (startup) conjuncts stay above the join so the
            # whole subtree can be skipped at run time
            keep.append(conjunct)
        elif refs <= left_ids:
            push_left.append(conjunct)
        elif refs and refs <= right_ids:
            if join.kind in (JoinKind.INNER, JoinKind.CROSS, JoinKind.SEMI,
                             JoinKind.ANTI_SEMI):
                push_right.append(conjunct)
            else:
                keep.append(conjunct)  # right side of LEFT OUTER: stay above
        elif join.kind in (JoinKind.INNER, JoinKind.CROSS):
            to_condition.append(conjunct)
        else:
            keep.append(conjunct)
    if not (push_left or push_right or to_condition):
        return None
    left = join.left
    right = join.right
    if push_left:
        left = Select(left, conjoin(push_left))
    if push_right:
        right = Select(right, conjoin(push_right))
    kind = join.kind
    condition = join.condition
    if to_condition:
        merged = conjoin(
            ([condition] if condition is not None else []) + to_condition
        )
        condition = merged
        if kind == JoinKind.CROSS:
            kind = JoinKind.INNER
    new_join = Join(left, right, kind, condition)
    if keep:
        return Select(new_join, conjoin(keep))
    return new_join


def _derive_startup_tests(op: Select, get: Get) -> Optional[LogicalOp]:
    """Add DomainTest conjuncts for ``col <op> @param`` over constrained
    columns — the runtime-pruning setup of Section 4.1.5."""
    if not get.table.check_domains:
        return None
    cid_to_domain = {}
    name_by_cid = {d.cid: d.name.lower() for d in get.table.columns}
    for definition in get.table.columns:
        domain = get.table.check_domains.get(definition.name.lower())
        if domain is not None:
            cid_to_domain[definition.cid] = domain
    existing = {
        conjunct.sql_key() for conjunct in conjuncts(op.predicate)
    }
    additions: list[ScalarExpr] = []
    for cid, comparison_op, probe in parameter_comparisons(op.predicate):
        domain = cid_to_domain.get(cid)
        if domain is None:
            continue
        test = DomainTest(probe, comparison_op, domain)
        if test.sql_key() not in existing:
            additions.append(test)
    if not additions:
        return None
    return Select(op.child, conjoin([op.predicate] + additions))


# ----------------------------------------------------------------------
# other rewrites
# ----------------------------------------------------------------------

def _rewrite_join(op: Join) -> Optional[LogicalOp]:
    left_empty = isinstance(op.left, EmptyTable)
    right_empty = isinstance(op.right, EmptyTable)
    if op.kind in (JoinKind.INNER, JoinKind.CROSS) and (left_empty or right_empty):
        return EmptyTable(_defs_for(op))
    if op.kind in (JoinKind.SEMI,) and (left_empty or right_empty):
        return EmptyTable(_defs_for(op))
    if op.kind == JoinKind.ANTI_SEMI and left_empty:
        return EmptyTable(_defs_for(op))
    if op.kind == JoinKind.ANTI_SEMI and right_empty:
        return op.left  # NOT EXISTS over empty inner keeps every row
    if op.kind == JoinKind.LEFT_OUTER and left_empty:
        return EmptyTable(_defs_for(op))
    return None


def _rewrite_union(op: UnionAll, options: NormalizeOptions) -> Optional[LogicalOp]:
    if not options.static_pruning:
        return None
    live = [
        (branch, branch_map)
        for branch, branch_map in zip(op.inputs, op.branch_maps)
        if not isinstance(branch, EmptyTable)
    ]
    if len(live) == len(op.inputs):
        return None
    if not live:
        return EmptyTable(op.output_defs)
    if len(live) == 1:
        # single surviving branch: project its columns onto the union ids
        branch, branch_map = live[0]
        outputs = []
        for definition in op.output_defs:
            branch_cid = branch_map[definition.cid]
            outputs.append(
                (definition.cid, ColumnRef(branch_cid, definition.name, definition.type))
            )
        return Project(branch, outputs, op.output_defs)
    return UnionAll(
        [b for b, __ in live], op.output_defs, [m for __, m in live]
    )


def _rewrite_project(op: Project) -> Optional[LogicalOp]:
    child = op.child
    if isinstance(child, EmptyTable):
        return EmptyTable(op.column_defs)
    # identity projection
    if tuple(op.output_ids()) == tuple(child.output_ids()) and all(
        isinstance(expr, ColumnRef) and expr.cid == cid
        for cid, expr in op.outputs
    ):
        return child
    # collapse stacked projects
    if isinstance(child, Project):
        mapping = {cid: expr for cid, expr in child.outputs}
        if all(
            cid in mapping or not expr.references()
            for __, expr in op.outputs
            for cid in expr.references()
        ):
            merged = [
                (cid, expr.substitute(mapping)) for cid, expr in op.outputs
            ]
            return Project(child.child, merged, op.column_defs)
    return None


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def _defs_for(op: LogicalOp):
    """ColumnDefs describing ``op``'s output (for EmptyTable)."""
    from repro.algebra.expressions import ColumnDef
    from repro.types.datatypes import varchar

    defs = []
    for cid in op.output_ids():
        defs.append(ColumnDef(cid, f"c{cid}", varchar()))
    return defs


def _base_domains(op: LogicalOp) -> dict:
    """CHECK-constraint domains visible at ``op`` (Gets and unions)."""
    if isinstance(op, Get):
        out = {}
        for definition in op.table.columns:
            domain = op.table.check_domains.get(definition.name.lower())
            if domain is not None:
                out[definition.cid] = domain
        return out
    if isinstance(op, Select):
        # constraint domains narrow through selects
        inner = _base_domains(op.child)
        for cid, domain in derive_domains(op.predicate).items():
            existing = inner.get(cid)
            inner[cid] = domain if existing is None else existing.intersect(domain)
        return inner
    if isinstance(op, Project):
        inner = _base_domains(op.child)
        out = {}
        for cid, expr in op.outputs:
            if isinstance(expr, ColumnRef) and expr.cid in inner:
                out[cid] = inner[expr.cid]
        return out
    if isinstance(op, Join):
        out = dict(_base_domains(op.left))
        if op.kind not in (JoinKind.SEMI, JoinKind.ANTI_SEMI):
            out.update(_base_domains(op.right))
        return out
    return {}


def _fold(expr: ScalarExpr) -> ScalarExpr:
    """Shallow constant folding over literals."""
    if isinstance(expr, BinaryOp):
        left = _fold(expr.left)
        right = _fold(expr.right)
        if isinstance(left, Literal) and isinstance(right, Literal):
            compiled = BinaryOp(expr.op, left, right).compile({})
            try:
                return Literal(compiled((), {}), expr.type)
            except Exception:
                return expr
        if expr.op == "AND":
            if isinstance(left, Literal) and left.value is True:
                return right
            if isinstance(right, Literal) and right.value is True:
                return left
            if (isinstance(left, Literal) and left.value is False) or (
                isinstance(right, Literal) and right.value is False
            ):
                return Literal(False)
        if expr.op == "OR":
            if isinstance(left, Literal) and left.value is False:
                return right
            if isinstance(right, Literal) and right.value is False:
                return left
            if (isinstance(left, Literal) and left.value is True) or (
                isinstance(right, Literal) and right.value is True
            ):
                return Literal(True)
        if left is not expr.left or right is not expr.right:
            return BinaryOp(expr.op, left, right)
        return expr
    if isinstance(expr, NotOp):
        inner = _fold(expr.operand)
        if isinstance(inner, Literal) and isinstance(inner.value, bool):
            return Literal(not inner.value)
        if inner is not expr.operand:
            return NotOp(inner)
        return expr
    return expr
