"""Optimizer rules.

"Rules are ... subdivided into different categories based on their
function": :mod:`normalization` holds the Simplification Rules
(heuristic tree rewrites, run early), :mod:`exploration` the
Exploration Rules (equivalent logical alternatives, local *and* remote
per Section 4.1.2), and :mod:`implementation` the Implementation Rules
(physical alternatives, local and remote).  Enforcers (sort, remote
spool) live in the optimizer's property machinery.
"""

from repro.core.rules.base import ExplorationRule, RuleContext
from repro.core.rules.normalization import normalize
from repro.core.rules.exploration import (
    JoinCommute,
    JoinAssociate,
    LocalityGrouping,
    PredicateSplitByRemotability,
    default_exploration_rules,
)

__all__ = [
    "ExplorationRule",
    "RuleContext",
    "normalize",
    "JoinCommute",
    "JoinAssociate",
    "LocalityGrouping",
    "PredicateSplitByRemotability",
    "default_exploration_rules",
]
