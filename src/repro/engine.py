"""The engine: a SQL Server instance with a built-in DHQP.

:class:`ServerInstance` is a complete mini SQL Server: catalog, SQL
front end, Cascades optimizer, execution engine, DML, linked servers,
and (optionally) an attached full-text service.  The same class serves
as the *local* engine of Figure 1 and as each simulated *remote* server
— a remote instance is simply another ServerInstance reachable only
through its OLE DB provider over a simulated network channel.

Typical use::

    engine = ServerInstance("local")
    engine.execute("CREATE TABLE t (id int PRIMARY KEY, name varchar(50))")
    engine.execute("INSERT INTO t VALUES (1, 'one')")
    remote = ServerInstance("remote0")
    engine.add_linked_server("remote0", remote,
                             NetworkChannel("wan", latency_ms=5))
    result = engine.execute(
        "SELECT * FROM remote0.master.dbo.customer c WHERE c.id = 3")
"""

from __future__ import annotations

import itertools
import json
import threading
import time
import weakref
from contextlib import nullcontext
from typing import Any, Callable, Dict, Optional, Sequence

from repro.algebra.logical import LogicalOp
from repro.core.cost import CostModel
from repro.core.linked_server import LinkedServer
from repro.core.optimizer import OptimizationResult, Optimizer, OptimizerOptions
from repro.core.physical import PhysicalOp, plan_fingerprint
from repro.core.rules.normalization import normalize
from repro.dtc.coordinator import TransactionCoordinator
from repro.errors import (
    BindError,
    ExecutionError,
    ServerUnavailableError,
    SqlError,
    UnknownSetOptionError,
)
from repro.execution.context import ExecutionContext
from repro.execution.executor import execute_plan
from repro.execution.plancache import (
    PlanCache,
    PlanCacheEntry,
    plan_references,
)
from repro.fulltext.service import FullTextService
from repro.governor import ResourceGovernor
from repro.network.channel import (
    NetworkChannel,
    attach_statement_scope,
    current_statement_scope,
    restore_statement_scope,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.profile import PlanProfiler, render_analyze
from repro.observability.querystore import (
    QueryStore,
    normalize_query_text,
    query_hash,
)
from repro.observability.trace import QueryTrace
from repro.observability.views import QueryStatsEntry, system_view
from repro.oledb.datasource import DataSource
from repro.oledb.rowset import MaterializedRowset, Rowset
from repro.providers.sqlserver import SqlServerDataSource
from repro.resilience.degrade import (
    PartialResultsInfo,
    SkippedPartition,
    prune_unavailable_branches,
    pv_member_tables,
)
from repro.resilience.health import CLOSED, HealthRegistry
from repro.resilience.retry import QueryBudget, RetryPolicy
from repro.session import Session
from repro.sql import ast
from repro.sql.binder import Binder, BoundQuery, FullTextBinding
from repro.sql.parser import parse_sql
from repro.storage.catalog import Catalog, Database, DEFAULT_SCHEMA
from repro.storage.constraints import CheckConstraint, UniqueConstraint
from repro.storage.table import Table
from repro.storage.transactions import LocalTransaction
from repro.types.datatypes import SqlType
from repro.types.schema import Column, Schema


class QueryResult:
    """Result of one statement: rows + metadata + telemetry."""

    def __init__(
        self,
        rows: list[tuple],
        columns: list[str],
        plan: Optional[PhysicalOp] = None,
        optimization: Optional[OptimizationResult] = None,
        context: Optional[ExecutionContext] = None,
        rowcount: Optional[int] = None,
    ):
        self.rows = rows
        self.columns = columns
        self.plan = plan
        self.optimization = optimization
        self.context = context
        #: affected-row count for DML statements
        self.rowcount = rowcount if rowcount is not None else len(rows)
        #: per-operator runtime profile (PlanProfiler) when profiling ran
        self.profile: Optional[PlanProfiler] = None
        #: structured trace (QueryTrace) when tracing was enabled
        self.trace: Optional[QueryTrace] = None
        #: per-linked-server network attribution for this statement:
        #: {server_name: {bytes_sent, bytes_received, round_trips,
        #: simulated_ms, retries, backoff_ms, breaker_trips,
        #: breaker_fast_fails}} — only servers with activity appear
        self.network: Dict[str, Dict[str, float]] = {}
        #: wall-clock time for the whole statement
        self.elapsed_ms: float = 0.0
        #: incomplete-result metadata when PARTIAL_RESULTS degraded the
        #: answer; None means the result is complete
        self.partial: Optional[PartialResultsInfo] = None
        #: bounded mid-query re-optimizations taken after a member died
        self.replans: int = 0
        #: simulated network ms hidden by parallel exchanges (0.0 when
        #: the plan had none); elapsed simulated time for a statement is
        #: sum(network simulated_ms) - parallel_saved_ms
        self.parallel_saved_ms: float = 0.0
        #: highest exchange degree of parallelism the plan actually used
        self.dop: int = 1
        #: "hit" when the plan came from the shared plan cache, "miss"
        #: when it was compiled (and possibly cached) by this
        #: statement, None when the statement was uncacheable
        self.plan_cache_status: Optional[str] = None
        #: the cache key (normalized text, settings fingerprint) the
        #: statement looked up, when cacheable
        self.plan_cache_key: Optional[tuple] = None
        #: id of the session the statement ran under
        self.session_id: Optional[int] = None
        #: workload group the statement was classified into (resource
        #: governor); None for statements that bypassed classification
        self.workload_group: Optional[str] = None
        #: memory the governor leased for this statement's plan (KB);
        #: 0.0 for streaming plans that needed no grant
        self.memory_grant_kb: float = 0.0
        #: simulated ms spent waiting for the memory grant
        self.grant_wait_ms: float = 0.0
        #: simulated ms spent waiting in the admission queue
        self.admission_wait_ms: float = 0.0

    @property
    def is_partial(self) -> bool:
        return self.partial is not None and self.partial.is_partial

    def scalar(self) -> Any:
        """First column of the first row (aggregate shortcuts)."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def as_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def to_json(self, indent: Optional[int] = None) -> str:
        """Rows plus whatever telemetry this execution captured."""
        payload: Dict[str, Any] = {
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "rowcount": self.rowcount,
            "elapsed_ms": round(self.elapsed_ms, 3),
        }
        if self.network:
            payload["network"] = self.network
        if self.is_partial:
            payload["partial"] = self.partial.as_dict()
        if self.replans:
            payload["replans"] = self.replans
        if self.dop > 1 or self.parallel_saved_ms:
            payload["dop"] = self.dop
            payload["parallel_saved_ms"] = round(self.parallel_saved_ms, 3)
        if self.workload_group is not None:
            payload["workload_group"] = self.workload_group
        if self.memory_grant_kb:
            payload["memory_grant_kb"] = round(self.memory_grant_kb, 1)
            payload["grant_wait_ms"] = round(self.grant_wait_ms, 3)
        if self.admission_wait_ms:
            payload["admission_wait_ms"] = round(self.admission_wait_ms, 3)
        if self.profile is not None and self.plan is not None:
            payload["profile"] = self.profile.as_rows(self.plan)
        if self.trace is not None:
            payload["trace"] = self.trace.as_dict()
        return json.dumps(payload, indent=indent, default=str)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __repr__(self) -> str:
        return f"QueryResult({len(self.rows)} rows, columns={self.columns})"


class ServerInstance:
    """A complete server: storage + DHQP + execution."""

    def __init__(
        self,
        name: str = "local",
        optimizer_options: Optional[OptimizerOptions] = None,
        cost_model: Optional[CostModel] = None,
        default_database: str = "master",
    ):
        self.name = name
        self.catalog = Catalog(default_database)
        self.linked_servers: Dict[str, LinkedServer] = {}
        self.optimizer = Optimizer(
            {}, cost_model or CostModel(), optimizer_options
        )
        self.fulltext_service: Optional[FullTextService] = None
        self._fulltext_bindings: Dict[tuple, FullTextBinding] = {}
        self._openrowset_providers: Dict[str, Callable[..., DataSource]] = {}
        self._maketable_providers: Dict[str, DataSource] = {}
        #: Halloween protection switch (E14 flips this off to show why
        #: the spool exists)
        self.halloween_protection = True
        #: always-on instrument registry (sys.dm_os_performance_counters)
        self.metrics = MetricsRegistry(name)
        #: structured tracing switch: off by default; when on, every
        #: execute() gets a QueryTrace with parse/bind/optimize/execute
        #: spans, rule firings and network attribution
        self.tracing_enabled = False
        #: per-operator profiling switch (EXPLAIN ANALYZE profiles
        #: regardless of this flag)
        self.profiling_enabled = False
        #: per-statement aggregates (sys.dm_exec_query_stats), bounded
        self.query_stats: Dict[str, QueryStatsEntry] = {}
        #: plan-level runtime history (sys.query_store_* views); off by
        #: default like tracing — when on, every SELECT's execution is
        #: attributed to (query hash, plan fingerprint) and plan pins
        #: are honored by the optimizer
        self.query_store = QueryStore()
        self.query_store_enabled = False
        self.optimizer.plan_pins = self.query_store.forced_plan_for
        #: per-query timeout budget in simulated network ms (None = off);
        #: when set, every statement gets a QueryBudget and remote
        #: traffic beyond it raises RemoteTimeoutError
        self.query_timeout_ms: Optional[float] = None
        #: per-linked-server circuit breakers on a simulated clock; the
        #: clock ticks once per statement so open breakers admit a
        #: half-open probe after a few statements rather than never
        self.health = HealthRegistry(name)
        self.optimizer.health = self.health
        #: the MS DTC role: crash-safe presumed-abort 2PC with a WAL on
        #: the health registry's simulated clock, so coordinator-log
        #: fsyncs and in-doubt ages share the engine's timeline
        self.dtc = TransactionCoordinator(
            name=f"{name}-dtc", clock=self.health.clock, metrics=self.metrics
        )
        #: one bounded re-optimize-and-replan after a mid-query
        #: ServerUnavailableError (the member's breaker has tripped by
        #: then, so the second plan routes around it)
        self.replan_on_failure = True
        #: sessions: every statement runs under exactly one.  The
        #: default session backs the single-user API (``execute``
        #: without an explicit session, plus the legacy
        #: ``engine.partial_results`` / ``engine.parallel_dop``
        #: attributes, which are now views over it).
        self._sessions_lock = threading.RLock()
        self._session_ids = itertools.count(1)
        self._sessions: Dict[int, Session] = {}
        self._default_session = self.create_session("default")
        #: shared compiled-plan cache: optimized SELECT plans keyed by
        #: normalized text × plan-affecting settings, validated against
        #: schema version / stats generation / breaker state at lookup
        self.plan_cache = PlanCache(metrics=self.metrics)
        self.plan_cache_enabled = True
        #: statistics epoch; bumped by refresh_statistics() so plans
        #: costed on stale statistics recompile
        self._stats_generation = 0
        #: serializes bind+optimize — the Cascades memo, the binder's
        #: column registry and the optimizer's per-query attributes are
        #: single-threaded machinery shared by every session
        self._compile_lock = threading.RLock()
        #: serializes local DML/DDL — the storage engine has no row
        #: latching, so writers take turns (readers run latch-free on
        #: materialized snapshots)
        self._write_lock = threading.RLock()
        #: guards the query_stats dict (shared DMV surface)
        self._stats_lock = threading.RLock()
        #: the Resource Governor: workload groups, memory grants and
        #: admission control.  Fresh engines run everything under the
        #: built-in ``default`` group on an unbounded pool, so the
        #: governor is a pass-through until pools/groups are created.
        self.governor = ResourceGovernor(
            self.health.clock, metrics=self.metrics
        )
        #: live exchange schedulers (for close(); workers register via
        #: ExecutionContext.scheduler_registry and are weakly held)
        self._schedulers: "weakref.WeakSet" = weakref.WeakSet()
        #: lifecycle: close() refuses new statements and drains these
        self._closed = False
        self._inflight = 0
        self._inflight_cond = threading.Condition()

    # ==================================================================
    # lifecycle
    # ==================================================================
    def close(self, timeout_s: float = 5.0) -> None:
        """Shut the engine down: refuse new statements, wait for
        in-flight ones to drain (up to ``timeout_s``), stop any
        exchange worker threads still alive, and drop the plan cache.
        Idempotent; execute() after close raises ExecutionError."""
        with self._inflight_cond:
            if self._closed:
                return
            self._closed = True
            deadline = time.monotonic() + timeout_s
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._inflight_cond.wait(timeout=remaining)
        for scheduler in list(self._schedulers):
            try:
                scheduler.shutdown()
            except Exception:
                pass
        self.plan_cache.clear()
        self.metrics.set_gauge("engine.closed", 1.0)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ServerInstance":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _enter_statement(self) -> None:
        with self._inflight_cond:
            if self._closed:
                raise ExecutionError(
                    f"engine {self.name!r} is closed"
                )
            self._inflight += 1

    def _exit_statement(self) -> None:
        with self._inflight_cond:
            self._inflight = max(0, self._inflight - 1)
            self._inflight_cond.notify_all()

    # ==================================================================
    # sessions
    # ==================================================================
    def create_session(self, name: str = "") -> Session:
        """Mint an independent session: its settings (PARALLEL_DOP,
        PARTIAL_RESULTS, collation, active txn) never leak into other
        sessions, so many threads can execute concurrently against
        this one engine (one statement at a time per session)."""
        with self._sessions_lock:
            session_id = next(self._session_ids)
            session = Session(self, session_id, name)
            self._sessions[session_id] = session
        self.metrics.set_gauge("engine.sessions", float(len(self._sessions)))
        return session

    def sessions(self) -> list[Session]:
        with self._sessions_lock:
            return list(self._sessions.values())

    @property
    def partial_results(self) -> bool:
        """Legacy engine-level view of the *default session's*
        PARTIAL_RESULTS setting."""
        return self._default_session.partial_results

    @partial_results.setter
    def partial_results(self, value: bool) -> None:
        self._default_session.partial_results = bool(value)

    @property
    def parallel_dop(self) -> int:
        """Legacy engine-level view of the *default session's*
        PARALLEL_DOP setting."""
        return self._default_session.parallel_dop

    @parallel_dop.setter
    def parallel_dop(self, value: int) -> None:
        self._default_session.parallel_dop = int(value)
        self.optimizer.parallel_dop = int(value)

    # ==================================================================
    # linked servers & providers
    # ==================================================================
    def add_linked_server(
        self,
        name: str,
        target: "ServerInstance | DataSource",
        channel: Optional[NetworkChannel] = None,
        retry_policy: Optional[RetryPolicy] = None,
        **provider_kwargs: Any,
    ) -> LinkedServer:
        """Register a linked server (Section 2.1's sp_addlinkedserver).

        ``target`` may be another :class:`ServerInstance` (wrapped in a
        SQL Server provider) or any pre-built OLE DB DataSource.
        ``retry_policy`` overrides the default retry/backoff applied to
        every remote operation against this server.
        """
        if isinstance(target, ServerInstance):
            datasource: DataSource = SqlServerDataSource(
                target,
                channel=channel or NetworkChannel(name),
                **provider_kwargs,
            )
            datasource.initialize()
        else:
            datasource = target
            if not datasource.initialized:
                datasource.initialize()
        server = LinkedServer(name, datasource, retry_policy=retry_policy)
        # fault/retry/timeout counters from this server's channel land
        # in the engine's registry (sys.dm_os_performance_counters)
        datasource.channel.metrics = self.metrics
        # every remote operation on this server is now gated by the
        # engine's circuit breaker for it
        server.health = self.health
        self.linked_servers[name.lower()] = server
        self.optimizer.register_linked_server(server)
        return server

    def linked_server(self, name: str) -> Optional[LinkedServer]:
        return self.linked_servers.get(name.lower())

    def register_openrowset_provider(
        self, provider_name: str, factory: Callable[..., DataSource]
    ) -> None:
        """factory(datasource, user, password) -> initialized DataSource."""
        self._openrowset_providers[provider_name.lower()] = factory

    def register_maketable_provider(
        self, key: str, datasource: DataSource
    ) -> None:
        """Register a MakeTable() provider (Section 2.4), e.g. 'Mail'."""
        if not datasource.initialized:
            datasource.initialize()
        self._maketable_providers[key.lower()] = datasource

    # ==================================================================
    # full-text integration (Sections 2.2-2.3)
    # ==================================================================
    def attach_fulltext_service(self, service: FullTextService) -> None:
        self.fulltext_service = service
        # OPENROWSET('MSIDXS', <catalog>, '<query>') works out of the box
        from repro.providers.fulltext import FullTextDataSource

        def factory(datasource: str, user: str, password: str) -> DataSource:
            ds = FullTextDataSource(service, datasource)
            ds.initialize()
            return ds

        self.register_openrowset_provider("MSIDXS", factory)

    def create_fulltext_index(
        self,
        table_name: str,
        key_column: str,
        text_column: str,
        catalog_name: Optional[str] = None,
        database: Optional[str] = None,
        schema_name: str = DEFAULT_SCHEMA,
    ) -> None:
        """Create and populate a relational full-text catalog over a
        table's text column (Figure 2's indexing-support half)."""
        if self.fulltext_service is None:
            self.attach_fulltext_service(FullTextService())
        assert self.fulltext_service is not None
        db = self.catalog.database(database)
        table = db.table(table_name, schema_name)
        catalog_name = catalog_name or f"ft_{table_name}"
        catalog = self.fulltext_service.create_catalog(
            catalog_name, "relational"
        )
        key_ordinal = table.schema.ordinal_of(key_column)
        text_ordinal = table.schema.ordinal_of(text_column)
        for row in table.rows():
            catalog.index_row(row[key_ordinal], row[text_ordinal])
        binding = FullTextBinding(
            self.fulltext_service, catalog_name, key_column, text_column
        )
        self._fulltext_bindings[
            (db.name.lower(), schema_name.lower(), table_name.lower())
        ] = binding

    def _maintain_fulltext(
        self, database: Database, schema_name: str, table: Table,
        old_row: Optional[tuple], new_row: Optional[tuple],
    ) -> None:
        binding = self._fulltext_bindings.get(
            (database.name.lower(), schema_name.lower(), table.name.lower())
        )
        if binding is None or self.fulltext_service is None:
            return
        catalog = self.fulltext_service.catalog(binding.catalog_name)
        key_ordinal = table.schema.ordinal_of(binding.key_column)
        text_ordinal = table.schema.ordinal_of(binding.text_column)
        if old_row is not None:
            catalog.remove_row(old_row[key_ordinal])
        if new_row is not None:
            catalog.index_row(new_row[key_ordinal], new_row[text_ordinal])

    # ==================================================================
    # BindContext protocol
    # ==================================================================
    def local_database(self, name: Optional[str]) -> Database:
        return self.catalog.database(name)

    def openrowset_datasource(
        self, provider: str, datasource: str, user: str, password: str
    ) -> DataSource:
        factory = self._openrowset_providers.get(provider.lower())
        if factory is None:
            raise BindError(
                f"no OPENROWSET provider registered as {provider!r}"
            )
        return factory(datasource, user, password)

    def maketable_datasource(self, provider_key: str) -> DataSource:
        ds = self._maketable_providers.get(provider_key.lower())
        if ds is None:
            raise BindError(
                f"no MakeTable provider registered as {provider_key!r}"
            )
        return ds

    def fulltext_binding(
        self, database: str, schema_name: str, table_name: str
    ) -> Optional[FullTextBinding]:
        return self._fulltext_bindings.get(
            (database.lower(), schema_name.lower(), table_name.lower())
        )

    def system_view(self, view_name: str) -> Optional[tuple]:
        """``sys.<view_name>`` DMV snapshot for the binder."""
        return system_view(self, view_name)

    # ==================================================================
    # observability
    # ==================================================================
    def _network_snapshot(self) -> Dict[str, Dict[str, float]]:
        return {
            key: server.channel.stats.snapshot()
            for key, server in self.linked_servers.items()
            if server.channel is not None
        }

    def _network_delta(
        self, before: Dict[str, Dict[str, float]]
    ) -> Dict[str, Dict[str, float]]:
        """Per-server traffic since ``before``, omitting idle servers."""
        out: Dict[str, Dict[str, float]] = {}
        for key, server in self.linked_servers.items():
            channel = server.channel
            if channel is None:
                continue
            base = before.get(key)
            delta = (
                channel.stats.delta(base)
                if base is not None
                else channel.stats.snapshot()
            )
            if any(delta.values()):
                out[server.name] = delta
        return out

    #: bound on distinct statement texts kept in query_stats
    MAX_QUERY_STATS = 256

    def _record_query_stats(
        self,
        sql_text: str,
        result: QueryResult,
        elapsed_ms: float,
        network: Dict[str, Dict[str, float]],
    ) -> None:
        entry = self.query_stats.get(sql_text)
        if entry is None:
            if len(self.query_stats) >= self.MAX_QUERY_STATS:
                self.query_stats.pop(next(iter(self.query_stats)))
            entry = QueryStatsEntry(sql_text)
            self.query_stats[sql_text] = entry
        nbytes = sum(
            int(d["bytes_sent"] + d["bytes_received"])
            for d in network.values()
        )
        trips = sum(int(d["round_trips"]) for d in network.values())
        entry.record(len(result.rows), elapsed_ms, nbytes, trips)

    # ==================================================================
    # SqlBackend protocol (what our own OLE DB provider fronts)
    # ==================================================================
    def execute_sql(self, text: str, txn: Optional[LocalTransaction] = None) -> Rowset:
        result = self.execute(text, txn=txn)
        schema = Schema(
            [Column(name, _infer_result_type(result, i)) for i, name in
             enumerate(result.columns)]
        )
        return MaterializedRowset(schema, result.rows)

    def describe_sql(self, text: str) -> Schema:
        """Bind-only schema discovery (used by command describe)."""
        stmt = parse_sql(text)
        if not isinstance(stmt, ast.SelectStmt):
            raise SqlError("describe_sql expects a SELECT")
        bound = Binder(self).bind_select(stmt)
        return Schema(
            [Column(d.name, d.type, d.nullable) for d in bound.output_defs]
        )

    def begin_transaction(self) -> LocalTransaction:
        return LocalTransaction(f"{self.name}-txn")

    # ==================================================================
    # statement execution
    # ==================================================================
    def execute(
        self,
        sql_text: str,
        params: Optional[Dict[str, Any]] = None,
        txn: Optional[LocalTransaction] = None,
        session: Optional[Session] = None,
    ) -> QueryResult:
        """Parse, plan, and run one SQL statement.

        ``txn`` attaches DML effects to a local transaction branch (the
        path distributed transactions arrive through).  ``session``
        selects whose settings the statement runs under; without one
        the engine's default session is used (the single-user API).

        Every statement is timed and its linked-server traffic is
        attributed by snapshot/diff of the channel counters, so the
        result carries exact ``network`` totals; with
        ``tracing_enabled`` it also carries a structured QueryTrace.
        """
        session = session or self._default_session
        if txn is None:
            txn = session.txn
        trace = QueryTrace(sql_text) if self.tracing_enabled else None
        if trace is not None:
            trace.session_id = session.session_id
        budget = (
            QueryBudget(self.query_timeout_ms)
            if self.query_timeout_ms is not None
            else None
        )
        # -- resource governance: classify, then admit ------------------
        # Admission happens before any work (parse included): an
        # overloaded pool sheds with AdmissionTimeoutError having spent
        # nothing but queue time.
        self._enter_statement()
        group = self.governor.classify(session)
        try:
            ticket = self.governor.admit(group, trace=trace)
        except BaseException:
            self._exit_statement()
            raise
        try:
            started = time.perf_counter()
            before = self._network_snapshot()
            # advance the health clock: open breakers measure their
            # re-probe interval in statements, not wall time
            self.health.tick()
            restore = self._attach_statement_scope(trace, budget)
            try:
                if trace is not None:
                    with trace.span("parse"):
                        stmt = parse_sql(sql_text)
                else:
                    stmt = parse_sql(sql_text)
                result = self._dispatch_statement(
                    stmt, params, txn, trace, sql_text, session, group=group
                )
            finally:
                self._restore_statement_scope(restore)
        finally:
            self.governor.complete(group, ticket)
            self._exit_statement()
        result.workload_group = group.name
        result.admission_wait_ms = ticket.wait_ms
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        network = self._network_delta(before)
        result.network = network
        result.elapsed_ms = elapsed_ms
        result.trace = trace
        result.session_id = session.session_id
        session.statement_count += 1
        if trace is not None:
            for server, delta in network.items():
                trace.network(server, delta)
        with self._stats_lock:
            self._record_query_stats(sql_text, result, elapsed_ms, network)
        if (
            self.query_store_enabled
            and result.plan is not None
            and isinstance(stmt, ast.SelectStmt)
        ):
            self.query_store.record(
                sql_text,
                result.plan,
                len(result.rows),
                elapsed_ms,
                network,
                replans=result.replans,
                partial=result.is_partial,
            )
            self.metrics.increment("query_store.executions")
        self.metrics.increment("engine.statements")
        self.metrics.observe("engine.statement_ms", elapsed_ms)
        return result

    def force_plan(self, query_hash_hex: str, plan_fingerprint: str) -> None:
        """Pin a captured plan for a query (the Query Store's
        ``sp_query_store_force_plan``): the optimizer replays the pinned
        plan on the next execution instead of exploring.  Both arguments
        come from the ``sys.query_store_*`` views."""
        self.query_store.force_plan(query_hash_hex, plan_fingerprint)
        # the pin must win over any already-cached plan for the query
        self.plan_cache.invalidate_query(query_hash_hex, reason="pin")
        self.metrics.increment("query_store.plans_forced")

    def unforce_plan(self, query_hash_hex: str) -> None:
        self.query_store.unforce_plan(query_hash_hex)
        # executions while pinned bypass the cache, but a plan cached
        # *before* the pin existed must not resurface after unpinning
        self.plan_cache.invalidate_query(query_hash_hex, reason="pin")

    def refresh_statistics(self) -> None:
        """Refresh optimizer statistics: remote metadata/cardinality
        caches are dropped and the statistics generation is bumped, so
        every cached plan (costed on the old numbers) recompiles on its
        next execution."""
        for server in self.linked_servers.values():
            server.invalidate_metadata()
        self._stats_generation += 1
        self.plan_cache.invalidate_stale(
            schema_version=self.catalog.schema_version,
            stats_generation=self._stats_generation,
        )
        self.metrics.increment("engine.stats_refreshes")

    def _attach_statement_scope(
        self, trace: Optional[QueryTrace], budget: Optional[QueryBudget]
    ) -> Optional[tuple]:
        """Bind this statement's trace and timeout budget to the
        *calling thread*.  Channels resolve their attribution
        thread-locally (:func:`repro.network.channel.attach_statement_scope`),
        so concurrent sessions streaming through the same shared
        channels never charge each other's trace or budget.  A nested
        execute() that brings nothing new keeps the outer scope; one
        that brings only a trace (or only a budget) inherits the other
        half from the outer statement."""
        if trace is None and budget is None:
            return None
        prior_trace, prior_budget = current_statement_scope()
        return attach_statement_scope(
            trace if trace is not None else prior_trace,
            budget if budget is not None else prior_budget,
        )

    @staticmethod
    def _restore_statement_scope(restore: Optional[tuple]) -> None:
        if restore is not None:
            restore_statement_scope(restore)

    def _dispatch_statement(
        self,
        stmt: ast.Statement,
        params: Optional[Dict[str, Any]],
        txn: Optional[LocalTransaction],
        trace: Optional[QueryTrace],
        sql_text: Optional[str] = None,
        session: Optional[Session] = None,
        group: Optional[Any] = None,
    ) -> QueryResult:
        session = session or self._default_session
        if isinstance(stmt, ast.SelectStmt):
            return self._execute_select(
                stmt, params, trace=trace, sql_text=sql_text,
                session=session, group=group,
            )
        if isinstance(stmt, ast.ExplainStmt):
            return self._execute_explain(
                stmt, params, trace=trace, session=session
            )
        if isinstance(stmt, (ast.InsertStmt, ast.UpdateStmt, ast.DeleteStmt)):
            # the DML statement span: distributed-transaction ``txn``
            # spans (federation/dml.py) parent under it
            verb = type(stmt).__name__[:-4].lower()
            span = (
                trace.span("dml", statement=verb)
                if trace is not None
                else nullcontext()
            )
            with span:
                self._fence_in_doubt_write(stmt.table)
                if isinstance(stmt, ast.InsertStmt):
                    with self._write_lock:
                        result = self._execute_insert(stmt, params, txn)
                elif isinstance(stmt, ast.UpdateStmt):
                    with self._write_lock:
                        result = self._execute_update(stmt, params, txn)
                else:
                    with self._write_lock:
                        result = self._execute_delete(stmt, params, txn)
            self._note_local_write(stmt.table)
            return result
        if isinstance(stmt, ast.CreateTableStmt):
            with self._write_lock:
                result = self._execute_create_table(stmt)
            self._note_ddl()
            return result
        if isinstance(stmt, ast.CreateIndexStmt):
            with self._write_lock:
                result = self._execute_create_index(stmt)
            self._note_ddl()
            return result
        if isinstance(stmt, ast.CreateViewStmt):
            with self._write_lock:
                result = self._execute_create_view(stmt)
            self._note_ddl()
            return result
        if isinstance(stmt, ast.CreateDatabaseStmt):
            with self._write_lock:
                self.catalog.create_database(stmt.name)
            self._note_ddl()
            return QueryResult([], [], rowcount=0)
        if isinstance(stmt, ast.DropTableStmt):
            with self._write_lock:
                database, schema_name, table_name = self._table_target(
                    stmt.table
                )
                database.drop_table(table_name, schema_name)
            self._note_ddl()
            return QueryResult([], [], rowcount=0)
        if isinstance(stmt, ast.SetStmt):
            return self._execute_set(stmt, session)
        raise SqlError(f"unsupported statement {type(stmt).__name__}")

    def _fence_in_doubt_write(self, named: ast.NamedTable) -> None:
        """Refuse a write against a table held by an in-doubt
        distributed transaction — its prepared (undecided) effects are
        visible in storage, so further writes would compound torn state.
        PV DML re-checks per member inside :mod:`repro.federation.dml`.
        """
        if self.dtc.has_in_doubt():
            self.dtc.check_accessible(tables={named.parts[-1]})

    def _note_ddl(self) -> None:
        """A schema change happened: purge every cached plan compiled
        under the previous schema version."""
        self.plan_cache.invalidate_stale(
            schema_version=self.catalog.schema_version,
            stats_generation=self._stats_generation,
        )

    def _note_local_write(self, named: ast.NamedTable) -> None:
        """Row counts changed: plans scanning the written table were
        costed on stale cardinalities, so they recompile."""
        self.plan_cache.invalidate_tables(
            {named.parts[-1].lower()}, reason="stats"
        )

    def _execute_set(
        self, stmt: ast.SetStmt, session: Optional[Session] = None
    ) -> QueryResult:
        """Apply a session setting atomically.

        All validation happens *before* any state mutates, and the
        mutation targets the session — never the engine singleton — so
        a failed ``SET`` (or one racing a concurrent session) can
        neither leave half-applied state behind nor leak into another
        session's statements.
        """
        session = session or self._default_session
        if stmt.option == "partial_results":
            if not isinstance(stmt.value, bool):
                raise SqlError("SET PARTIAL_RESULTS expects ON or OFF")
            session.partial_results = stmt.value
            if session is self._default_session:
                self.metrics.set_gauge(
                    "engine.partial_results", 1.0 if stmt.value else 0.0
                )
            return QueryResult([], [], rowcount=0)
        if stmt.option == "parallel_dop":
            dop = stmt.value
            if isinstance(dop, bool) or not isinstance(dop, int) or dop < 1:
                raise SqlError("SET PARALLEL_DOP expects an integer >= 1")
            session.parallel_dop = dop
            if session is self._default_session:
                self.optimizer.parallel_dop = dop
                self.metrics.set_gauge("engine.parallel_dop", float(dop))
            return QueryResult([], [], rowcount=0)
        if stmt.option == "workload_group":
            if not isinstance(stmt.value, str):
                raise SqlError(
                    "SET WORKLOAD GROUP expects a quoted group name"
                )
            name = stmt.value.lower()
            if name not in self.governor.groups:
                raise SqlError(
                    f"unknown workload group {stmt.value!r}; defined "
                    f"groups are: "
                    f"{', '.join(sorted(self.governor.groups))}"
                )
            session.workload_group = name
            return QueryResult([], [], rowcount=0)
        raise UnknownSetOptionError(
            stmt.option,
            supported=("PARALLEL_DOP", "PARTIAL_RESULTS", "WORKLOAD GROUP"),
        )

    def _execute_explain(
        self,
        stmt: ast.ExplainStmt,
        params: Optional[Dict[str, Any]] = None,
        trace: Optional[QueryTrace] = None,
        session: Optional[Session] = None,
    ) -> QueryResult:
        """EXPLAIN [ANALYZE] [VERBOSE] SELECT ...: one plan-tree line
        per row, plus phase telemetry as trailing rows.

        ANALYZE executes the plan under a profiler and annotates each
        operator with actual rows and open/next/close timings plus the
        statement's per-server network traffic; VERBOSE appends memo
        statistics (groups, expressions, per-rule firing counts).
        EXPLAIN always compiles fresh — it never reads or populates the
        plan cache (its job is to show what compilation would do now).
        """
        session = session or self._default_session
        with self._compile_lock:
            prior_dop = self.optimizer.parallel_dop
            self.optimizer.parallel_dop = session.parallel_dop
            try:
                bound = Binder(self).bind_select(stmt.select)
                optimization = self._optimize_traced(bound.root, trace)
            finally:
                self.optimizer.parallel_dop = prior_dop
        ctx: Optional[ExecutionContext] = None
        profiler: Optional[PlanProfiler] = None
        if stmt.analyze:
            profiler = PlanProfiler()
            # ANALYZE always runs under a trace so remote operators can
            # be annotated from their remote_command child spans, even
            # when engine-wide tracing is off (scoped + restored below)
            run_trace = trace if trace is not None else QueryTrace("explain analyze")
            ctx = ExecutionContext(
                params,
                subquery_executor=self._run_subquery,
                profiler=profiler,
                metrics=self.metrics,
                trace=run_trace,
            )
            restore = (
                self._attach_statement_scope(run_trace, None)
                if trace is None
                else None
            )
            before = self._network_snapshot()
            try:
                execute_plan(optimization.plan, ctx)
            finally:
                self._restore_statement_scope(restore)
            network = self._network_delta(before)
            lines = render_analyze(
                optimization.plan, profiler, network, trace=run_trace
            )
            if stmt.verbose:
                verbose_lines = optimization.explain(verbose=True).splitlines()
                lines.extend(
                    verbose_lines[verbose_lines.index("-- memo --"):]
                )
        else:
            lines = optimization.explain(verbose=stmt.verbose).splitlines()
        lines.append("--")
        for phase in optimization.phase_stats:
            lines.append(
                f"phase {phase.phase}: cost={phase.best_cost:.3f} "
                f"rules={phase.rules_fired} groups={phase.groups_optimized}"
            )
        result = QueryResult(
            [(line,) for line in lines],
            ["plan"],
            optimization.plan,
            optimization,
            ctx,
        )
        result.profile = profiler
        return result

    def _optimize_traced(
        self,
        root: LogicalOp,
        trace: Optional[QueryTrace],
        query_key: Optional[str] = None,
    ) -> OptimizationResult:
        """Optimize with rule-firing events routed to ``trace``.

        ``query_key`` (the statement text, when the Query Store is on)
        lets the optimizer consult plan pins before exploration.
        """
        if trace is None:
            return self.optimizer.optimize(root, query_key=query_key)
        self.optimizer.trace = trace
        try:
            with trace.span("optimize"):
                return self.optimizer.optimize(root, query_key=query_key)
        finally:
            self.optimizer.trace = None

    def plan(
        self, sql_text: str, session: Optional[Session] = None
    ) -> OptimizationResult:
        """Optimize a SELECT without executing it (EXPLAIN).  Always
        compiles fresh, bypassing the plan cache."""
        stmt = parse_sql(sql_text)
        if not isinstance(stmt, ast.SelectStmt):
            raise SqlError("plan() expects a SELECT statement")
        session = session or self._default_session
        with self._compile_lock:
            prior_dop = self.optimizer.parallel_dop
            self.optimizer.parallel_dop = session.parallel_dop
            try:
                bound = Binder(self).bind_select(stmt)
                return self.optimizer.optimize(bound.root)
            finally:
                self.optimizer.parallel_dop = prior_dop

    def _partial_route_around(self, allow_probes: bool):
        """Pruning predicate for partial-results planning.

        The initial plan admits at most ONE probe-due open breaker (so
        half-open probes keep running and a recovered member is folded
        back in), routing around every other open breaker.  The replan
        pass admits none — it must route around everything open, or a
        second synchronized probe window would burn the single replan
        and fail the statement.
        """
        if not allow_probes:
            return self.health.is_open
        probing: list[str] = []

        def route_around(server_name: str) -> bool:
            if self.health.should_route_around(server_name):
                return True
            if self.health.is_open(server_name):  # probe-due
                if probing and server_name not in probing:
                    return True  # one probe per statement
                probing.append(server_name)
            return False

        return route_around

    def _plan_select(
        self,
        stmt: ast.SelectStmt,
        trace: Optional[QueryTrace],
        allow_probes: bool = True,
        sql_text: Optional[str] = None,
        session: Optional[Session] = None,
    ) -> tuple[BoundQuery, OptimizationResult, list[SkippedPartition]]:
        """Bind, optionally prune unreachable PV members, optimize.

        Runs under the compile lock: the Cascades memo and the
        optimizer's per-query attributes (trace, parallel_dop) are
        single-threaded machinery shared by every session, so compiles
        are serialized while executions stay concurrent."""
        session = session or self._default_session
        with self._compile_lock:
            prior_dop = self.optimizer.parallel_dop
            self.optimizer.parallel_dop = session.parallel_dop
            try:
                return self._plan_select_locked(
                    stmt, trace, allow_probes, sql_text, session
                )
            finally:
                self.optimizer.parallel_dop = prior_dop

    def _plan_select_locked(
        self,
        stmt: ast.SelectStmt,
        trace: Optional[QueryTrace],
        allow_probes: bool,
        sql_text: Optional[str],
        session: Session,
    ) -> tuple[BoundQuery, OptimizationResult, list[SkippedPartition]]:
        if trace is not None:
            with trace.span("bind"):
                bound = Binder(self).bind_select(stmt)
        else:
            bound = Binder(self).bind_select(stmt)
        root = bound.root
        skipped: list[SkippedPartition] = []
        if session.partial_results:
            # remember which remote tables are PV members while the
            # unions are still intact, then normalize so static pruning
            # drops branches the predicates contradict — a query routed
            # entirely to live members must not be stamped partial,
            # while one collapsed onto a dead member degrades to empty
            members = pv_member_tables(root)
            root = normalize(root, self.optimizer.normalize_options())
            route_around = self._partial_route_around(allow_probes)
            # members fenced by an in-doubt distributed txn degrade
            # exactly like breaker-open ones, stamped "in_doubt"
            in_doubt = self.dtc.in_doubt_branches()

            def unavailable(server_name: str) -> bool:
                return (
                    server_name.lower() in in_doubt
                    or route_around(server_name)
                )

            def skip_reason(server_name: str) -> str:
                if server_name.lower() in in_doubt:
                    return "in_doubt"
                return "circuit_open"

            root, skipped = prune_unavailable_branches(
                root,
                unavailable,
                pv_members=members,
                reason_for=skip_reason,
            )
            if skipped and trace is not None:
                trace.event(
                    "partial_results_prune",
                    skipped=[s.as_dict() for s in skipped],
                )
        # plan pins are honored on the first plan only: a replan runs
        # because the pinned plan's member just died, so replaying the
        # pin would fail the statement a second time
        query_key = (
            sql_text
            if self.query_store_enabled and sql_text and allow_probes
            else None
        )
        optimization = self._optimize_traced(root, trace, query_key)
        return bound, optimization, skipped

    def _settings_fingerprint(self, session: Session) -> tuple:
        """The plan-affecting settings, and only those, for the cache
        key.  The PARALLEL_DOP *value* is deliberately excluded: plan
        fingerprints are DOP-free and exchanges read the session's
        degree at execution time, so one compiled parallel plan serves
        DOP 2 and DOP 8 alike.  Only parallel *eligibility* (DOP > 1)
        is keyed, because a serial compile contains no exchange at all.
        Optimizer feature switches (remote rules on/off, etc.) are
        included because flipping one legitimately changes the plan."""
        return (
            bool(session.partial_results),
            session.parallel_dop > 1,
            session.collation.name,
            tuple(
                sorted(
                    (key, repr(value))
                    for key, value in vars(self.optimizer.options).items()
                )
            ),
        )

    def _unhealthy_servers(self) -> frozenset:
        """Linked servers whose breaker is not closed right now (open
        or half-open both carry cost penalties and routing changes)."""
        return frozenset(
            breaker.name
            for breaker in self.health.breakers()
            if breaker.state != CLOSED
        )

    def _plan_cache_key(self, sql_text: str, session: Session) -> tuple:
        return (normalize_query_text(sql_text), self._settings_fingerprint(session))

    def _cache_compiled_plan(
        self,
        entry_key: tuple,
        sql_text: str,
        optimization: OptimizationResult,
        output_names: list,
        output_cids: list,
    ) -> None:
        servers, tables = plan_references(optimization.plan)
        self.plan_cache.store(
            PlanCacheEntry(
                key=entry_key,
                query_hash=query_hash(sql_text),
                sql_text=sql_text,
                normalized_text=entry_key[0],
                optimization=optimization,
                output_names=list(output_names),
                output_cids=list(output_cids),
                fingerprint=plan_fingerprint(optimization.plan),
                schema_version=self.catalog.schema_version,
                stats_generation=self._stats_generation,
                unhealthy_servers=self._unhealthy_servers() & servers,
                servers=servers,
                tables=tables,
            )
        )

    def _execute_select(
        self,
        stmt: ast.SelectStmt,
        params: Optional[Dict[str, Any]],
        trace: Optional[QueryTrace] = None,
        sql_text: Optional[str] = None,
        session: Optional[Session] = None,
        group: Optional[Any] = None,
    ) -> QueryResult:
        session = session or self._default_session
        if group is None:
            # nested SELECTs (INSERT..SELECT) arrive without the
            # statement's group; classification is cheap and stable
            group = self.governor.classify(session)
        # -- plan-cache lookup ------------------------------------------
        # Uncacheable: statements without text (nested INSERT..SELECT),
        # partial-results mode (plans depend on this instant's breaker
        # probe schedule), and DMV reads (rows are materialized at bind
        # time, so a cached plan would freeze the snapshot).
        cacheable = (
            self.plan_cache_enabled
            and sql_text is not None
            and not session.partial_results
            and "sys." not in sql_text.lower()
        )
        if cacheable and self.query_store_enabled:
            # a Query Store pin always wins over the cache: pinned
            # queries compile through the pin-replay path every time
            if self.query_store.forced_plan_for(sql_text) is not None:
                cacheable = False
        entry_key: Optional[tuple] = None
        cache_status: Optional[str] = None
        optimization: Optional[OptimizationResult] = None
        output_names: list = []
        output_cids: list = []
        skipped: list[SkippedPartition] = []
        if cacheable:
            entry_key = self._plan_cache_key(sql_text, session)
            entry = self.plan_cache.lookup(
                entry_key,
                schema_version=self.catalog.schema_version,
                stats_generation=self._stats_generation,
                unhealthy_servers=self._unhealthy_servers(),
            )
            if entry is not None:
                cache_status = "hit"
                optimization = entry.optimization
                output_names = entry.output_names
                output_cids = entry.output_cids
                self.metrics.increment("optimizer.explorations_skipped")
                if trace is not None:
                    trace.event(
                        "plan_cache_hit",
                        query_hash=entry.query_hash,
                        fingerprint=entry.fingerprint,
                        hits=entry.hits,
                    )
        if optimization is None:
            if cacheable:
                cache_status = "miss"
            bound, optimization, skipped = self._plan_select(
                stmt, trace, sql_text=sql_text, session=session
            )
            output_names = bound.output_names
            output_cids = [d.cid for d in bound.output_defs]
            # a plan built against pruned PV members is this statement's
            # private degraded plan, never shared
            if cacheable and not skipped:
                assert entry_key is not None
                self._cache_compiled_plan(
                    entry_key, sql_text, optimization,
                    output_names, output_cids,
                )
        # -- in-doubt fence ---------------------------------------------
        # A statement must not observe effects whose commit/abort fate
        # is undecided.  Partial mode already pruned in-doubt PV members
        # from the plan (stamped "in_doubt" in skipped_partitions), so
        # whatever the plan still references is checked here in both
        # modes — in-doubt local tables and non-PV remote reads fail
        # fast with TransactionInDoubtError.
        if self.dtc.has_in_doubt():
            servers, tables = plan_references(optimization.plan)
            self.dtc.check_accessible(servers=servers, tables=tables)
        profiler = PlanProfiler() if self.profiling_enabled else None
        replans = 0
        max_dop = group.max_dop or None
        ctx = ExecutionContext(
            params,
            subquery_executor=self._run_subquery,
            profiler=profiler,
            metrics=self.metrics,
            trace=trace,
            requested_dop=session.parallel_dop,
            max_dop=max_dop,
            scheduler_registry=self._schedulers,
        )
        # -- memory grant -----------------------------------------------
        # Leased before execution, released unconditionally after; a
        # replan releases the old plan's grant and leases the new one.
        grant = self.governor.acquire_grant(
            optimization.plan, group, session,
            self.optimizer.cost_model, trace=trace, sql_text=sql_text,
        )
        grant_kb = grant.granted_kb if grant is not None else 0.0
        grant_wait_ms = grant.wait_ms if grant is not None else 0.0
        try:
            try:
                if trace is not None:
                    with trace.span("execute", session=session.session_id):
                        rows = execute_plan(optimization.plan, ctx)
                else:
                    rows = execute_plan(optimization.plan, ctx)
            except ServerUnavailableError as error:
                if not self.replan_on_failure:
                    raise
                # one bounded replan: the dead member's breaker tripped
                # inside run_with_retry, so re-optimization now routes
                # around it (and partial mode prunes its PV branches);
                # already-spooled remote results carry over via the shared
                # spool cache.  A second failure propagates fail-stop.
                # A cached plan that hit this path is stale by definition
                # (it references a member whose breaker just opened), so it
                # is evicted rather than fast-failing the next caller.
                replans = 1
                self.metrics.increment("engine.replans")
                if entry_key is not None:
                    self.plan_cache.invalidate_key(entry_key, reason="breaker")
                if trace is not None:
                    trace.event(
                        "replan",
                        server=getattr(error, "server_name", None),
                        error=f"{type(error).__name__}: {error}",
                    )
                bound, optimization, skipped = self._plan_select(
                    stmt, trace, allow_probes=False, session=session
                )
                output_names = bound.output_names
                output_cids = [d.cid for d in bound.output_defs]
                ctx = ExecutionContext(
                    params,
                    subquery_executor=self._run_subquery,
                    profiler=profiler,
                    metrics=self.metrics,
                    trace=trace,
                    spool_cache=ctx.spool_cache,
                    requested_dop=session.parallel_dop,
                    max_dop=max_dop,
                    scheduler_registry=self._schedulers,
                )
                # the replacement plan needs its own grant; release the
                # old lease first so the swap cannot deadlock the pool
                if grant is not None:
                    grant.release()
                grant = self.governor.acquire_grant(
                    optimization.plan, group, session,
                    self.optimizer.cost_model, trace=trace,
                    sql_text=sql_text,
                )
                grant_kb = grant.granted_kb if grant is not None else 0.0
                if grant is not None:
                    grant_wait_ms += grant.wait_ms
                if trace is not None:
                    with trace.span("execute", session=session.session_id):
                        rows = execute_plan(optimization.plan, ctx)
                else:
                    rows = execute_plan(optimization.plan, ctx)
        finally:
            if grant is not None:
                grant.release()
        # align plan output order with the bound output defs
        rows = _reorder_output(rows, optimization.plan, output_cids)
        result = QueryResult(
            rows, output_names, optimization.plan, optimization, ctx
        )
        result.profile = profiler
        result.replans = replans
        result.parallel_saved_ms = ctx.parallel_saved_ms
        result.dop = max(1, ctx.max_dop_used)
        result.plan_cache_status = cache_status
        result.plan_cache_key = entry_key
        result.workload_group = group.name
        result.memory_grant_kb = grant_kb
        result.grant_wait_ms = grant_wait_ms
        if skipped:
            result.partial = PartialResultsInfo(skipped)
        return result

    def _run_subquery(self, root: LogicalOp) -> list[tuple]:
        with self._compile_lock:
            optimization = self.optimizer.optimize(root)
        ctx = ExecutionContext(
            subquery_executor=self._run_subquery,
            metrics=self.metrics,
            scheduler_registry=self._schedulers,
        )
        rows = execute_plan(optimization.plan, ctx)
        ids = list(optimization.plan.output_ids())
        wanted = list(root.output_ids())
        if ids != wanted:
            positions = [ids.index(cid) for cid in wanted]
            rows = [tuple(row[p] for p in positions) for row in rows]
        return rows

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def _table_target(
        self, named: ast.NamedTable
    ) -> tuple[Database, str, str]:
        parts = list(named.parts)
        database_name: Optional[str] = None
        schema_name = DEFAULT_SCHEMA
        if len(parts) == 3:
            database_name, schema_name, table_name = parts
        elif len(parts) == 2:
            schema_name, table_name = parts
        elif len(parts) == 1:
            (table_name,) = parts
        else:
            raise SqlError("DML targets must be local objects")
        return self.catalog.database(database_name), schema_name, table_name

    def _remote_dml_target(
        self, named: ast.NamedTable
    ) -> Optional[tuple[LinkedServer, str, str, str]]:
        """(server, database, schema, table) for a four-part DML target,
        or None when the target is local."""
        if len(named.parts) != 4:
            return None
        server_name, database_name, schema_name, table_name = named.parts
        server = self.linked_server(server_name)
        if server is None:
            raise BindError(f"unknown linked server {server_name!r}")
        if not server.capabilities.is_sql_provider:
            raise SqlError(
                f"linked server {server_name!r} does not accept SQL DML"
            )
        return server, database_name, schema_name or DEFAULT_SCHEMA, table_name

    def _execute_remote_dml(
        self,
        server: LinkedServer,
        sql_text: str,
        tables: list[tuple[Optional[str], str]],
    ) -> QueryResult:
        """Ship a DML statement to a linked server (Section 1: "query
        AND update capabilities ... natively built into the query
        processor"), with delayed schema validation first.

        Dispatch runs under the server's retry policy: transient faults
        are raised by the channel *before* the remote side executes, so
        a retried statement never double-applies.  A down server raises
        :class:`~repro.errors.ServerUnavailableError` here, before any
        local state changes.
        """
        for database_name, table_name in tables:
            server.validate_schema_version(table_name, database_name)
        server.execute_command(sql_text)
        server.invalidate_metadata()  # remote cardinalities changed
        return QueryResult([], [], rowcount=-1)

    def _execute_insert(
        self,
        stmt: ast.InsertStmt,
        params: Optional[Dict[str, Any]],
        txn: Optional[LocalTransaction] = None,
    ) -> QueryResult:
        remote = self._remote_dml_target(stmt.table)
        if remote is not None:
            return self._remote_insert(remote, stmt, params)
        database, schema_name, table_name = self._table_target(stmt.table)
        view = database.maybe_view(table_name, schema_name)
        if view is not None:
            from repro.federation.dml import insert_into_partitioned_view

            count = insert_into_partitioned_view(
                self, database, schema_name, view, stmt, params
            )
            return QueryResult([], [], rowcount=count)
        table = database.table(table_name, schema_name)
        if stmt.select is not None:
            source = self._execute_select(stmt.select, params)
            raw_rows = source.rows
        else:
            assert stmt.rows is not None
            raw_rows = [
                tuple(self._eval_standalone(expr, params) for expr in row)
                for row in stmt.rows
            ]
        count = 0
        for raw in raw_rows:
            full_row = self._arrange_insert_row(table, stmt.columns, raw)
            table.insert(full_row, txn=txn)
            self._maintain_fulltext(
                database, schema_name, table, None,
                table.schema.validate_row(full_row),
            )
            count += 1
        return QueryResult([], [], rowcount=count)

    @staticmethod
    def _arrange_insert_row(
        table: Table, columns: Optional[list[str]], raw: tuple
    ) -> tuple:
        if columns is None:
            return raw
        if len(columns) != len(raw):
            raise ExecutionError(
                f"INSERT specifies {len(columns)} columns but {len(raw)} values"
            )
        by_name = {c.lower(): v for c, v in zip(columns, raw)}
        out = []
        for column in table.schema:
            out.append(by_name.get(column.name.lower()))
        return tuple(out)

    def _bind_table_predicate(
        self, table: Table, where: Optional[ast.Expr]
    ) -> Optional[Callable]:
        """Compile a WHERE clause against a table's own schema."""
        if where is None:
            return None
        from repro.sql.binder import ColumnRegistry, Scope

        registry = ColumnRegistry()
        defs = [
            registry.mint(c.name, c.type, c.nullable, table.name)
            for c in table.schema
        ]
        scope = Scope()
        scope.add(table.name, defs)
        binder = Binder(self)
        binder.registry = registry
        bound = binder._bind_expr(where, scope)
        layout = {d.cid: i for i, d in enumerate(defs)}
        return bound.compile(layout)

    def _execute_update(
        self,
        stmt: ast.UpdateStmt,
        params: Optional[Dict[str, Any]],
        txn: Optional[LocalTransaction] = None,
    ) -> QueryResult:
        remote = self._remote_dml_target(stmt.table)
        if remote is not None:
            return self._remote_update(remote, stmt, params)
        database, schema_name, table_name = self._table_target(stmt.table)
        view = database.maybe_view(table_name, schema_name)
        if view is not None:
            from repro.federation.dml import update_partitioned_view

            count = update_partitioned_view(
                self, database, schema_name, view, stmt, params
            )
            return QueryResult([], [], rowcount=count)
        table = database.table(table_name, schema_name)
        predicate = self._bind_table_predicate(table, stmt.where)
        assignments = []
        for column_name, expr in stmt.assignments:
            ordinal = table.schema.ordinal_of(column_name)
            assignments.append((ordinal, expr))
        matching = self._collect_matching(table, predicate, params)
        count = 0
        for rid, row in matching:
            new_row = list(row)
            for ordinal, expr in assignments:
                new_row[ordinal] = self._eval_row_expr(
                    table, expr, row, params
                )
            old = table.update(rid, tuple(new_row), txn=txn)
            self._maintain_fulltext(
                database, schema_name, table, old,
                table.schema.validate_row(tuple(new_row)),
            )
            count += 1
        return QueryResult([], [], rowcount=count)

    def _execute_delete(
        self,
        stmt: ast.DeleteStmt,
        params: Optional[Dict[str, Any]],
        txn: Optional[LocalTransaction] = None,
    ) -> QueryResult:
        remote = self._remote_dml_target(stmt.table)
        if remote is not None:
            return self._remote_delete(remote, stmt, params)
        database, schema_name, table_name = self._table_target(stmt.table)
        view = database.maybe_view(table_name, schema_name)
        if view is not None:
            from repro.federation.dml import delete_from_partitioned_view

            count = delete_from_partitioned_view(
                self, database, schema_name, view, stmt, params
            )
            return QueryResult([], [], rowcount=count)
        table = database.table(table_name, schema_name)
        predicate = self._bind_table_predicate(table, stmt.where)
        matching = self._collect_matching(table, predicate, params)
        count = 0
        for rid, row in matching:
            old = table.delete(rid, txn=txn)
            self._maintain_fulltext(
                database, schema_name, table, old, None
            )
            count += 1
        return QueryResult([], [], rowcount=count)

    def _remote_insert(
        self,
        target: tuple[LinkedServer, str, str, str],
        stmt: ast.InsertStmt,
        params: Optional[Dict[str, Any]],
    ) -> QueryResult:
        from repro.federation.dml import _render_value

        server, database_name, schema_name, table_name = target
        if stmt.select is not None:
            source = self._execute_select(stmt.select, params)
            raw_rows = source.rows
        else:
            assert stmt.rows is not None
            raw_rows = [
                tuple(self._eval_standalone(expr, params) for expr in row)
                for row in stmt.rows
            ]
        columns_sql = (
            f" ({', '.join(stmt.columns)})" if stmt.columns else ""
        )
        values_sql = ", ".join(
            "(" + ", ".join(_render_value(v) for v in row) + ")"
            for row in raw_rows
        )
        sql_text = (
            f"INSERT INTO {database_name}.{schema_name}.{table_name}"
            f"{columns_sql} VALUES {values_sql}"
        )
        result = self._execute_remote_dml(
            server, sql_text, [(database_name, table_name)]
        )
        result.rowcount = len(raw_rows)
        return result

    def _remote_update(
        self,
        target: tuple[LinkedServer, str, str, str],
        stmt: ast.UpdateStmt,
        params: Optional[Dict[str, Any]],
    ) -> QueryResult:
        from repro.federation.dml import _render_predicate

        server, database_name, schema_name, table_name = target
        set_sql = ", ".join(
            f"{name} = {_render_predicate(self, expr, params)}"
            for name, expr in stmt.assignments
        )
        where_sql = (
            f" WHERE {_render_predicate(self, stmt.where, params)}"
            if stmt.where is not None
            else ""
        )
        sql_text = (
            f"UPDATE {database_name}.{schema_name}.{table_name} "
            f"SET {set_sql}{where_sql}"
        )
        return self._execute_remote_dml(
            server, sql_text, [(database_name, table_name)]
        )

    def _remote_delete(
        self,
        target: tuple[LinkedServer, str, str, str],
        stmt: ast.DeleteStmt,
        params: Optional[Dict[str, Any]],
    ) -> QueryResult:
        from repro.federation.dml import _render_predicate

        server, database_name, schema_name, table_name = target
        where_sql = (
            f" WHERE {_render_predicate(self, stmt.where, params)}"
            if stmt.where is not None
            else ""
        )
        sql_text = (
            f"DELETE FROM {database_name}.{schema_name}.{table_name}"
            f"{where_sql}"
        )
        return self._execute_remote_dml(
            server, sql_text, [(database_name, table_name)]
        )

    def _collect_matching(
        self,
        table: Table,
        predicate: Optional[Callable],
        params: Optional[Dict[str, Any]],
    ) -> list[tuple[int, tuple]]:
        """Rows a DML statement touches.

        With Halloween protection on (the default), the scan result is
        spooled (materialized) before any modification — Section 4.1.4
        notes the framework must manage such protective spools.
        """
        params = params or {}
        scan = (
            (rid, row)
            for rid, row in table.scan()
            if predicate is None or predicate(row, params) is True
        )
        if self.halloween_protection:
            return list(scan)
        return scan  # type: ignore[return-value]

    def _eval_row_expr(
        self,
        table: Table,
        expr: ast.Expr,
        row: tuple,
        params: Optional[Dict[str, Any]],
    ) -> Any:
        from repro.sql.binder import ColumnRegistry, Scope

        registry = ColumnRegistry()
        defs = [
            registry.mint(c.name, c.type, c.nullable, table.name)
            for c in table.schema
        ]
        scope = Scope()
        scope.add(table.name, defs)
        binder = Binder(self)
        binder.registry = registry
        bound = binder._bind_expr(expr, scope)
        layout = {d.cid: i for i, d in enumerate(defs)}
        return bound.compile(layout)(row, params or {})

    def _eval_standalone(
        self, expr: ast.Expr, params: Optional[Dict[str, Any]]
    ) -> Any:
        binder = Binder(self)
        from repro.sql.binder import Scope

        bound = binder._bind_expr(expr, Scope())
        return bound.compile({})((), params or {})

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def _execute_create_table(self, stmt: ast.CreateTableStmt) -> QueryResult:
        database, schema_name, table_name = self._table_target(stmt.table)
        columns = []
        for definition in stmt.columns:
            columns.append(
                Column(
                    definition.name,
                    _type_from_syntax(definition.type_name, definition.type_arg),
                    nullable=not (definition.not_null or definition.primary_key),
                )
            )
        schema = Schema(columns)
        table = database.create_table(table_name, schema, schema_name)
        for definition in stmt.columns:
            if definition.primary_key:
                table.add_constraint(
                    UniqueConstraint([definition.name], primary_key=True)
                )
            if definition.check is not None:
                table.add_constraint(
                    self._build_check(
                        f"ck_{table_name}_{definition.name}",
                        definition.check,
                        schema,
                    )
                )
        for index, (constraint_name, check_expr) in enumerate(stmt.table_checks):
            table.add_constraint(
                self._build_check(
                    constraint_name or f"ck_{table_name}_{index}",
                    check_expr,
                    schema,
                )
            )
        return QueryResult([], [], rowcount=0)

    def _build_check(
        self, name: str, expr: ast.Expr, schema: Schema
    ) -> CheckConstraint:
        """Bind a CHECK body and derive its symbolic domain when the
        expression constrains a single column with constants."""
        from repro.core.constraints import derive_domains, _domain_of_boolean
        from repro.sql.binder import ColumnRegistry, Scope

        registry = ColumnRegistry()
        defs = [
            registry.mint(c.name, c.type, c.nullable, None) for c in schema
        ]
        scope = Scope()
        scope.add("__check__", defs)
        binder = Binder(self)
        binder.registry = registry
        bound = binder._bind_expr(expr, scope)
        layout = {d.cid: i for i, d in enumerate(defs)}
        compiled = bound.compile(layout)

        def predicate(row: Sequence[Any], table_schema: Schema):
            return compiled(row, {})

        column_name: Optional[str] = None
        domain = None
        implied = _domain_of_boolean(bound)
        if implied is not None:
            cid, domain = implied
            definition = next(d for d in defs if d.cid == cid)
            column_name = definition.name
            # normalize endpoint literals to the column's type so
            # routing/pruning compare like with like
            try:
                domain = domain.map_endpoints(definition.type.validate)
            except Exception:
                pass
        return CheckConstraint(name, predicate, column_name, domain)

    def _execute_create_index(self, stmt: ast.CreateIndexStmt) -> QueryResult:
        database, schema_name, table_name = self._table_target(stmt.table)
        table = database.table(table_name, schema_name)
        table.create_index(stmt.index_name, stmt.columns, stmt.unique)
        # create_index mutates the Table directly; bump the version so
        # cached plans compiled without the index recompile
        database.bump_schema_version()
        return QueryResult([], [], rowcount=0)

    def _execute_create_view(self, stmt: ast.CreateViewStmt) -> QueryResult:
        database, schema_name, view_name = self._table_target(stmt.view)
        parsed = parse_sql(stmt.select_sql)
        is_partitioned = (
            isinstance(parsed, ast.SelectStmt) and bool(parsed.union_all)
        )
        database.create_view(
            view_name, stmt.select_sql, schema_name, is_partitioned
        )
        return QueryResult([], [], rowcount=0)

    def __repr__(self) -> str:
        return f"ServerInstance({self.name})"


# convenient alias: the local engine IS the public entry point
Engine = ServerInstance


def _type_from_syntax(type_name: str, type_arg: Optional[int]) -> SqlType:
    from repro.core.linked_server import type_from_name

    if type_arg is not None:
        return type_from_name(f"{type_name}({type_arg})")
    return type_from_name(type_name)


def _infer_result_type(result: QueryResult, ordinal: int) -> SqlType:
    from repro.types.datatypes import infer_type, varchar

    for row in result.rows:
        if row[ordinal] is not None:
            return infer_type(row[ordinal])
    return varchar()


def _reorder_output(
    rows: list[tuple], plan: PhysicalOp, wanted: list
) -> list[tuple]:
    """Plans may emit columns in a different id order than the query's
    output list (``wanted`` column ids); realign by column id."""
    plan_ids = list(plan.output_ids())
    if plan_ids == list(wanted):
        return rows
    positions = [plan_ids.index(cid) for cid in wanted]
    return [tuple(row[p] for p in positions) for row in rows]
