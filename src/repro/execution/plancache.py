"""Shared compiled-plan cache for multi-session engines.

One optimized physical plan is expensive to produce (binding, Cascades
exploration, costing) and cheap to re-execute, so the engine keeps the
result of every cacheable ``SELECT`` compilation in a process-wide
:class:`PlanCache`.  The cache is keyed by *normalized query text* ×
*the plan-affecting settings fingerprint* — and only those.  DOP is
deliberately **not** part of the key: plan fingerprints are DOP-free
(PR 6) and exchange insertion happens during optimization, so a plan
compiled at one DOP is re-optimized only when the settings that can
change the plan *shape* change.

Staleness is validated at lookup time rather than baked into the key:

* ``schema_version`` — the catalog bump counter; any DDL makes every
  plan compiled before it unusable (``invalidations_ddl``).
* ``stats_generation`` — bumped by statistics refreshes and remote
  writes; plans costed on stale statistics recompile
  (``invalidations_stats``).
* ``unhealthy_servers`` — the set of linked servers whose circuit
  breaker was *not closed* at compile time.  A plan compiled while a
  member was dark routes around it; once the breaker recovers (or a
  healthy-compile plan later sees an open breaker) the cached plan no
  longer matches reality and must recompile rather than fast-fail
  (``invalidations_breaker``).
* Query Store pinning — ``force_plan``/``unforce_plan`` evict the
  pinned query so the pin (or its removal) always wins over a stale
  cached plan (``invalidations_pin``).

Thread-safety: every public method takes the internal ``RLock``; the
cache is shared by all sessions of one engine.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

__all__ = [
    "PlanCacheEntry",
    "PlanCache",
    "plan_references",
]


def plan_references(plan: Any) -> tuple[frozenset, frozenset]:
    """Walk a physical plan and collect ``(servers, tables)`` it touches.

    ``servers`` holds linked-server names (local reads contribute
    nothing); ``tables`` holds lower-cased unqualified table names so
    DML-driven invalidation can match ``INSERT INTO orders`` against a
    plan scanning ``dbo.orders`` on any member.
    """
    servers: set[str] = set()
    tables: set[str] = set()

    def note_table(qualified: Any) -> None:
        # referenced tables appear as "db.schema.name" strings or as
        # (database, name) tuples depending on the node
        if isinstance(qualified, tuple):
            qualified = qualified[-1]
        tables.add(str(qualified).split(".")[-1].lower())

    for node in plan.walk():
        table = getattr(node, "table", None)
        if table is not None and hasattr(table, "qualified_name"):
            note_table(table.qualified_name)
            server = getattr(table, "server", None)
            if server:
                servers.add(server)
        server_obj = getattr(node, "server", None)
        if server_obj is not None and hasattr(server_obj, "name"):
            servers.add(server_obj.name)
        for referenced in getattr(node, "tables_referenced", ()) or ():
            note_table(referenced)
    return frozenset(servers), frozenset(tables)


@dataclass
class PlanCacheEntry:
    """One compiled plan plus everything needed to validate freshness."""

    key: tuple
    query_hash: str
    sql_text: str
    normalized_text: str
    optimization: Any
    output_names: list
    output_cids: list
    fingerprint: str
    schema_version: int
    stats_generation: int
    unhealthy_servers: frozenset = frozenset()
    servers: frozenset = frozenset()
    tables: frozenset = frozenset()
    hits: int = 0

    @property
    def plan(self) -> Any:
        return self.optimization.plan


class PlanCache:
    """Bounded LRU of :class:`PlanCacheEntry`, shared across sessions."""

    def __init__(self, capacity: int = 128, metrics: Any = None):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self.metrics = metrics
        self._lock = threading.RLock()
        self._entries: "OrderedDict[tuple, PlanCacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.invalidations_by_reason: dict[str, int] = {}

    # -- metrics ------------------------------------------------------------
    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.increment(name, amount)

    def _gauge_size(self) -> None:
        if self.metrics is not None:
            self.metrics.set_gauge("plan_cache.size", float(len(self._entries)))

    def _note_invalidation(self, reason: str, count: int = 1) -> None:
        if count <= 0:
            return
        self.invalidations += count
        self.invalidations_by_reason[reason] = (
            self.invalidations_by_reason.get(reason, 0) + count
        )
        self._count("plan_cache.invalidations", count)
        self._count(f"plan_cache.invalidations_{reason}", count)

    # -- core ---------------------------------------------------------------
    def lookup(
        self,
        key: tuple,
        *,
        schema_version: int,
        stats_generation: int,
        unhealthy_servers: frozenset,
    ) -> Optional[PlanCacheEntry]:
        """Return a fresh entry for ``key`` or ``None`` (counting a miss).

        A stale entry is evicted on sight and counted under the reason
        that made it stale, so an invalidation is always attributable.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                self._count("plan_cache.misses")
                return None
            reason = self._staleness(
                entry,
                schema_version=schema_version,
                stats_generation=stats_generation,
                unhealthy_servers=unhealthy_servers,
            )
            if reason is not None:
                del self._entries[key]
                self._note_invalidation(reason)
                self.misses += 1
                self._count("plan_cache.misses")
                self._gauge_size()
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self.hits += 1
            self._count("plan_cache.hits")
            return entry

    @staticmethod
    def _staleness(
        entry: PlanCacheEntry,
        *,
        schema_version: int,
        stats_generation: int,
        unhealthy_servers: frozenset,
    ) -> Optional[str]:
        if entry.schema_version != schema_version:
            return "ddl"
        if entry.stats_generation != stats_generation:
            return "stats"
        if entry.unhealthy_servers != (unhealthy_servers & entry.servers):
            # the health picture the plan was costed under has changed
            # for a member it actually touches — recompile, never
            # fast-fail a plan that routes through a dark member.
            return "breaker"
        return None

    def store(self, entry: PlanCacheEntry) -> None:
        with self._lock:
            if entry.key in self._entries:
                del self._entries[entry.key]
            self._entries[entry.key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                self._count("plan_cache.evictions")
            self._gauge_size()

    # -- invalidation hooks -------------------------------------------------
    def invalidate_all(self, reason: str) -> int:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._note_invalidation(reason, dropped)
            self._gauge_size()
            return dropped

    def invalidate_stale(
        self, *, schema_version: int, stats_generation: int
    ) -> int:
        """Purge entries compiled under an older schema/stats epoch."""
        with self._lock:
            dropped = 0
            for key in list(self._entries):
                entry = self._entries[key]
                if entry.schema_version != schema_version:
                    del self._entries[key]
                    self._note_invalidation("ddl")
                    dropped += 1
                elif entry.stats_generation != stats_generation:
                    del self._entries[key]
                    self._note_invalidation("stats")
                    dropped += 1
            self._gauge_size()
            return dropped

    def invalidate_tables(self, tables: Iterable[str], reason: str) -> int:
        wanted = {t.lower() for t in tables}
        with self._lock:
            dropped = 0
            for key in list(self._entries):
                if self._entries[key].tables & wanted:
                    del self._entries[key]
                    self._note_invalidation(reason)
                    dropped += 1
            self._gauge_size()
            return dropped

    def invalidate_key(self, key: tuple, reason: str) -> bool:
        with self._lock:
            if key in self._entries:
                del self._entries[key]
                self._note_invalidation(reason)
                self._gauge_size()
                return True
            return False

    def invalidate_query(self, query_hash: str, reason: str) -> int:
        with self._lock:
            dropped = 0
            for key in list(self._entries):
                if self._entries[key].query_hash == query_hash:
                    del self._entries[key]
                    self._note_invalidation(reason)
                    dropped += 1
            self._gauge_size()
            return dropped

    # -- introspection ------------------------------------------------------
    def entries(self) -> list[PlanCacheEntry]:
        with self._lock:
            return list(self._entries.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._gauge_size()
