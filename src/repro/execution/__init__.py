"""Execution engine: Volcano-style iterators over physical plans.

Each physical operator opens into a fresh Python iterator of row
tuples laid out by the operator's ``output_ids()``.  Remote operators
speak OLE DB: remote scans open rowsets, remote ranges drive
IRowsetIndex + IRowsetLocate, remote queries execute ICommand text (and
re-validate remote schema versions first — the *delayed schema
validation* of Section 4.1.5).

Concurrency contract: execution is single-threaded except under a
``Gather``/``GatherMerge`` exchange (:mod:`repro.execution.exchange`),
whose scheduler runs each input branch on a worker thread.  Every
operator *under* an exchange branch is driven by exactly one worker, so
operators themselves stay lock-free; shared statement state crossing
the exchange boundary is synchronized at its source — the spool cache
behind ``ExecutionContext.spool_lock``, telemetry counters behind an
internal lock, circuit breakers / network stats / the query budget
behind their own locks.  Exchange workers never touch the consumer's
iterator; rows cross threads only through the scheduler's bounded
queues.
"""

from repro.execution.context import ExecutionContext
from repro.execution.executor import execute_plan, open_plan

__all__ = ["ExecutionContext", "execute_plan", "open_plan"]
