"""Execution engine: Volcano-style iterators over physical plans.

Each physical operator opens into a fresh Python iterator of row
tuples laid out by the operator's ``output_ids()``.  Remote operators
speak OLE DB: remote scans open rowsets, remote ranges drive
IRowsetIndex + IRowsetLocate, remote queries execute ICommand text (and
re-validate remote schema versions first — the *delayed schema
validation* of Section 4.1.5).
"""

from repro.execution.context import ExecutionContext
from repro.execution.executor import execute_plan, open_plan

__all__ = ["ExecutionContext", "execute_plan", "open_plan"]
