"""Leaf operators: scans, ranges, remote queries, provider rowsets."""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.core import physical as P
from repro.errors import ExecutionError
from repro.execution.context import ExecutionContext

Row = tuple


def _span_wrapped_rows(
    channel: Any, server_name: str, open_fn, description: str
) -> Iterator[Row]:
    """Lazily stream a remote rowset under a ``remote_command`` span.

    The span is created on the first pull — while the consuming
    operator's span is current — and re-entered around every subsequent
    pull, so per-batch network charges land on it even though the
    stream stays fully lazy.  The rowset itself is also opened inside
    the span (the command dispatch is part of the remote operation).
    """
    trace = channel.active_trace
    span = None
    stats_before = None
    rows: Iterator[Row] | None = None
    while True:
        if span is None:
            span = trace.begin_span(
                "remote_command", server=server_name, operation=description
            )
            stats_before = channel.stats.snapshot()
        else:
            trace.enter_span(span)
        started = trace.clock()
        try:
            if rows is None:
                rows = iter(open_fn())
            row = next(rows)
        except StopIteration:
            span.duration_ms += trace.clock() - started
            _finish_remote_span(span, channel, stats_before)
            trace.exit_span(span)
            return
        except BaseException:
            span.duration_ms += trace.clock() - started
            _finish_remote_span(span, channel, stats_before)
            trace.exit_span(span)
            raise
        span.duration_ms += trace.clock() - started
        trace.exit_span(span)
        yield row


def _finish_remote_span(span: Any, channel: Any, stats_before: dict) -> None:
    delta = channel.stats.delta(stats_before)
    span.attrs["retries"] = int(delta["retries"])
    span.attrs["backoff_ms"] = round(delta["backoff_ms"], 3)
    span.attrs["breaker_fast_fails"] = int(delta["breaker_fast_fails"])
    span.attrs["round_trips"] = int(delta["round_trips"])


def _resilient_rows(server: Any, open_fn, description: str) -> Iterator[Row]:
    """Iterate a remote rowset, retrying under faults.

    Fault-free channels keep the original lazy streaming (bytes charge
    as the consumer pulls); when a trace is attached the stream runs
    under a per-rowset ``remote_command`` span.  With a fault injector
    attached, the rowset is materialized *inside* the retry scope
    instead: a mid-stream transient discards the partial transfer and
    re-opens the rowset, so the retry unit is the whole rowset and
    consumers never see duplicated rows.
    """
    channel = getattr(server, "channel", None)
    if channel is None or channel.fault_injector is None:
        if channel is not None and channel.active_trace is not None:
            return _span_wrapped_rows(
                channel, server.name, open_fn, description
            )
        return iter(open_fn())
    return iter(
        server.run_with_retry(
            lambda: open_fn().fetch_all(), description=description
        )
    )


def run_table_scan(plan: P.TableScan, ctx: ExecutionContext) -> Iterator[Row]:
    table = plan.table.local_table
    if table is None:
        raise ExecutionError(
            f"TableScan over non-local table {plan.table.qualified_name}"
        )
    return table.rows()


def run_index_range(plan: P.IndexRange, ctx: ExecutionContext) -> Iterator[Row]:
    table = plan.table.local_table
    if table is None:
        raise ExecutionError("IndexRange over non-local table")
    index = table.indexes[plan.index_name]
    domain = plan.domain
    if plan.dynamic_probe is not None:
        from repro.types.intervals import IntervalSet

        op, probe = plan.dynamic_probe
        value = probe.compile({})((), ctx.params)
        if value is None:
            return iter(())  # comparison with NULL selects nothing
        probe_domain = IntervalSet.from_comparison(op, value)
        domain = (
            probe_domain if domain is None else domain.intersect(probe_domain)
        )

    def generate() -> Iterator[Row]:
        intervals = domain.intervals if domain is not None else ()
        if not intervals:
            for __, rid in index.scan():
                yield table.fetch(rid)
            return
        for interval in intervals:
            for __, rid in index.set_range(interval):
                yield table.fetch(rid)

    rows = generate()
    if plan.residual is not None:
        from repro.execution.executor import compile_expr, layout_of

        predicate = compile_expr(plan.residual, layout_of(plan), ctx)
        params = ctx.params
        return (row for row in rows if predicate(row, params) is True)
    return rows


def run_remote_scan(plan: P.RemoteScan, ctx: ExecutionContext) -> Iterator[Row]:
    server = plan.table.provider
    if server is None:
        raise ExecutionError(
            f"RemoteScan without a provider: {plan.table.qualified_name}"
        )
    if ctx.validate_schemas:
        server.validate_schema_version(
            plan.table.table_name, plan.table.database
        )

    def open_rowset():
        return server.create_session().open_rowset(
            plan.table.table_name,
            schema_name=plan.table.schema_name,
            database_name=plan.table.database,
        )

    return _resilient_rows(
        server, open_rowset, f"scan:{plan.table.qualified_name}"
    )


def run_remote_range(plan: P.RemoteRange, ctx: ExecutionContext) -> Iterator[Row]:
    """IRowsetIndex range + IRowsetLocate bookmark fetch."""
    server = plan.table.provider
    if server is None:
        raise ExecutionError("RemoteRange without a provider")
    if ctx.validate_schemas:
        server.validate_schema_version(
            plan.table.table_name, plan.table.database
        )
    def generate() -> Iterator[Row]:
        session = server.create_session()
        for interval in plan.domain.intervals:
            index_rowset = session.open_index_rowset(
                plan.table.table_name,
                plan.index_name,
                range_interval=interval,
                database_name=plan.table.database,
            )
            bookmarks = [row[-1] for row in index_rowset]
            if not bookmarks:
                continue
            fetched = session.fetch_by_bookmarks(
                plan.table.table_name,
                bookmarks,
                database_name=plan.table.database,
            )
            yield from fetched

    channel = getattr(server, "channel", None)
    if channel is not None and channel.fault_injector is not None:
        rows: Iterator[Row] = iter(
            server.run_with_retry(
                lambda: list(generate()),
                description=f"range:{plan.table.qualified_name}",
            )
        )
    elif channel is not None and channel.active_trace is not None:
        rows = _span_wrapped_rows(
            channel, server.name, generate,
            f"range:{plan.table.qualified_name}",
        )
    else:
        rows = generate()
    if plan.residual is not None:
        from repro.execution.executor import compile_expr, layout_of

        predicate = compile_expr(plan.residual, layout_of(plan), ctx)
        params = ctx.params
        return (row for row in rows if predicate(row, params) is True)
    return rows


def run_remote_query(
    plan: P.RemoteQuery,
    ctx: ExecutionContext,
    outer_row: Sequence[Any] = (),
    outer_layout: dict | None = None,
) -> Iterator[Row]:
    """Execute a pushed SQL statement via ICommand.

    ``?`` markers bind from ``plan.param_exprs`` — plain parameters read
    the context's parameter bag; parameterized-join probes read the
    current ``outer_row``.
    """
    server = plan.server
    if ctx.validate_schemas:
        for database, table_name in plan.tables_referenced:
            server.validate_schema_version(table_name, database)
    if plan.param_exprs:
        layout = outer_layout or {}
        values = [
            expr.compile(layout)(outer_row, ctx.params)
            for expr in plan.param_exprs
        ]
    else:
        values = None

    def open_result():
        session = server.create_session()
        command = session.create_command()
        command.set_text(plan.sql_text)
        if values is not None:
            command.bind_parameters(values)
        return command.execute()

    ctx.record_remote_query(server.name, plan.sql_text)
    return _resilient_rows(server, open_result, f"query:{server.name}")


def run_provider_rowset(
    plan: P.ProviderRowsetScan, ctx: ExecutionContext
) -> Iterator[Row]:
    node = plan.node
    session = node.datasource.create_session()
    if node.command_text is not None:
        command = session.create_command()
        command.set_text(node.command_text)
        ctx.record_remote_query(node.label, node.command_text)
        return iter(command.execute())
    return iter(session.open_rowset(node.rowset_name))


def run_const_scan(plan: P.ConstScan, ctx: ExecutionContext) -> Iterator[Row]:
    params = ctx.params
    for row_exprs in plan.rows:
        compiled = [expr.compile({}) for expr in row_exprs]
        yield tuple(fn((), params) for fn in compiled)


def run_fulltext_lookup(
    plan: P.FullTextKeyLookup, ctx: ExecutionContext
) -> Iterator[Row]:
    """Figure 2's query-support path: (KEY, RANK) rows from the
    external search service."""
    binding = plan.binding
    catalog = binding.service.catalog(binding.catalog_name)
    for match in catalog.search(plan.query_text):
        yield (match.key, match.rank)
