"""Execution context: parameters, spool caches, telemetry.

Telemetry flows through the ``record_*`` hooks rather than ad-hoc
increments at operator sites: each hook maintains the context's summary
counters, feeds the engine's metrics registry when one is attached, and
emits trace/profile events when those recorders are enabled.  With
observability off every hook costs a counter add plus three ``is None``
tests.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional, TYPE_CHECKING

from repro.algebra.expressions import Literal, ScalarExpr, ScalarSubquery

if TYPE_CHECKING:  # pragma: no cover
    from repro.observability.metrics import MetricsRegistry
    from repro.observability.profile import PlanProfiler
    from repro.observability.trace import QueryTrace


class ExecutionContext:
    """Per-execution state shared by all operators of one plan run."""

    def __init__(
        self,
        params: Optional[Dict[str, Any]] = None,
        subquery_executor: Optional[Callable[[Any], list]] = None,
        validate_schemas: bool = True,
        profiler: Optional["PlanProfiler"] = None,
        metrics: Optional["MetricsRegistry"] = None,
        trace: Optional["QueryTrace"] = None,
        spool_cache: Optional[Dict[Any, list]] = None,
        requested_dop: Optional[int] = None,
        max_dop: Optional[int] = None,
        scheduler_registry: Optional[Any] = None,
    ):
        #: @parameter values for this execution
        self.params = dict(params or {})
        #: engine callback: optimize+execute a logical tree, return rows
        self.subquery_executor = subquery_executor
        #: delayed schema validation switch (Section 4.1.5)
        self.validate_schemas = validate_schemas
        #: per-execution spool materializations (Spool.cache_key() ->
        #: rows); an existing cache may be handed in so a bounded
        #: replan reuses results already spooled before a failure
        self.spool_cache: Dict[Any, list] = (
            spool_cache if spool_cache is not None else {}
        )
        #: guards spool_cache lookups/inserts — parallel exchange
        #: workers may hit the same spool key concurrently
        self.spool_lock = threading.Lock()
        #: observability recorders (all optional; None = off)
        self.profiler = profiler
        self.metrics = metrics
        self.trace = trace
        #: summary counters, maintained by the record_* hooks below
        #: (guarded by _telemetry_lock: hooks fire from worker threads)
        self._telemetry_lock = threading.Lock()
        self.rows_produced = 0
        self.remote_queries_executed = 0
        self.startup_filters_skipped = 0
        self.spool_rescans = 0
        #: parallel-exchange accounting (record_gather): simulated ms
        #: hidden by overlapping branches, and the highest DOP any
        #: exchange actually ran at
        self.parallel_saved_ms = 0.0
        self.parallel_branches = 0
        self.max_dop_used = 1
        #: the session's PARALLEL_DOP at execution time; exchange
        #: operators run at this degree rather than the one baked into
        #: the plan, so a cached parallel plan is DOP-invariant (None =
        #: use the plan's compiled dop)
        self.requested_dop = requested_dop
        #: workload-group DOP ceiling (resource governor); clamps both
        #: requested and compiled degrees.  None = ungoverned.
        self.max_dop = max_dop
        #: engine-owned WeakSet the exchange scheduler registers into
        #: so Engine.close() can shut worker threads down
        self.scheduler_registry = scheduler_registry

    # ------------------------------------------------------------------
    # telemetry hooks (the single reporting path for all operators)
    # ------------------------------------------------------------------
    def record_rows_produced(self, count: int) -> None:
        with self._telemetry_lock:
            self.rows_produced += count
        if self.metrics is not None:
            self.metrics.increment("executor.rows_produced", count)

    def record_startup_skip(self, plan: Any) -> None:
        """A startup filter pruned its subtree without opening it."""
        with self._telemetry_lock:
            self.startup_filters_skipped += 1
        if self.metrics is not None:
            self.metrics.increment("executor.startup_filters_skipped")
        if self.profiler is not None:
            self.profiler.record_startup_skip(plan)
        if self.trace is not None:
            self.trace.event(
                "startup_filter_skip", predicate=repr(plan.predicate)
            )

    def record_remote_query(
        self, server_name: str, sql_text: Optional[str] = None
    ) -> None:
        """A SQL statement was shipped to a remote provider."""
        with self._telemetry_lock:
            self.remote_queries_executed += 1
        if self.metrics is not None:
            self.metrics.increment("executor.remote_queries")
        if self.trace is not None:
            self.trace.event(
                "remote_query", server=server_name, sql=sql_text
            )

    def record_spool_rescan(self, plan: Any) -> None:
        """A spool served its materialization again without re-opening
        the child (Section 4.1.4)."""
        with self._telemetry_lock:
            self.spool_rescans += 1
        if self.metrics is not None:
            self.metrics.increment("executor.spool_rescans")
        if self.trace is not None:
            self.trace.event("spool_rescan", reason=plan.reason)

    def record_gather(
        self, dop: int, branches: int, saved_ms: float,
        busiest_ms: float = 0.0,
    ) -> None:
        """A Gather/GatherMerge finished all branches.  ``saved_ms`` is
        the simulated network time hidden by overlap: the sum of branch
        times minus the critical path (busiest worker slot).  Called on
        the consumer thread once per exchange execution."""
        with self._telemetry_lock:
            self.parallel_saved_ms += saved_ms
            self.parallel_branches += branches
            if dop > self.max_dop_used:
                self.max_dop_used = dop
        if self.metrics is not None:
            self.metrics.increment("executor.parallel_branches", branches)
            self.metrics.increment("executor.parallel_saved_ms", saved_ms)
        if self.trace is not None:
            self.trace.event(
                "gather_complete",
                dop=dop,
                branches=branches,
                saved_ms=round(saved_ms, 3),
                busiest_ms=round(busiest_ms, 3),
            )

    def resolve_scalar_subqueries(self, expr: ScalarExpr) -> ScalarExpr:
        """Replace ScalarSubquery nodes with their (once-evaluated)
        values; uncorrelated by construction, so one evaluation per
        execution suffices."""
        if isinstance(expr, ScalarSubquery):
            if self.subquery_executor is None:
                raise RuntimeError(
                    "plan contains a scalar subquery but the context has "
                    "no subquery executor"
                )
            rows = self.subquery_executor(expr.plan)
            if len(rows) > 1:
                from repro.errors import ExecutionError

                raise ExecutionError(
                    "scalar subquery returned more than one row"
                )
            value = rows[0][0] if rows else None
            return Literal(value, expr.type)
        children = expr.children()
        if not children:
            return expr
        # rebuild via substitute on any child containing a subquery
        if not _contains_subquery(expr):
            return expr
        return _rebuild(expr, self)


def _contains_subquery(expr: ScalarExpr) -> bool:
    if isinstance(expr, ScalarSubquery):
        return True
    return any(_contains_subquery(child) for child in expr.children())


def _rebuild(expr: ScalarExpr, ctx: ExecutionContext) -> ScalarExpr:
    """Structural rebuild replacing subquery nodes (rare path)."""
    from repro.algebra.expressions import (
        BinaryOp,
        InListOp,
        IsNullOp,
        LikeOp,
        NotOp,
        FuncCall,
    )

    if isinstance(expr, ScalarSubquery):
        return ctx.resolve_scalar_subqueries(expr)
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op, _rebuild(expr.left, ctx), _rebuild(expr.right, ctx)
        )
    if isinstance(expr, NotOp):
        return NotOp(_rebuild(expr.operand, ctx))
    if isinstance(expr, IsNullOp):
        return IsNullOp(_rebuild(expr.operand, ctx), expr.negated)
    if isinstance(expr, InListOp):
        return InListOp(
            _rebuild(expr.operand, ctx),
            [_rebuild(i, ctx) for i in expr.items],
            expr.negated,
        )
    if isinstance(expr, LikeOp):
        return LikeOp(
            _rebuild(expr.operand, ctx),
            _rebuild(expr.pattern, ctx),
            expr.negated,
        )
    if isinstance(expr, FuncCall):
        return FuncCall(expr.name, [_rebuild(a, ctx) for a in expr.args])
    return expr
