"""Join operators: hash, nested-loops, merge, parameterized remote."""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

from repro.core import physical as P
from repro.execution.context import ExecutionContext
from repro.types.intervals import SortKey

Row = tuple


def _combined_layout(left: P.PhysicalOp, right: P.PhysicalOp) -> Dict[int, int]:
    layout: Dict[int, int] = {}
    position = 0
    for cid in left.output_ids():
        layout[cid] = position
        position += 1
    for cid in right.output_ids():
        layout[cid] = position
        position += 1
    return layout


def _hashable(values: tuple) -> Optional[tuple]:
    """Hash key for join values; None when any component is NULL (SQL
    equality never matches NULLs).  Strings fold to the default
    collation's key so hash joins agree with ``=``."""
    from repro.types.values import collation_key

    out = []
    for value in values:
        if value is None:
            return None
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        out.append(collation_key(value))
    return tuple(out)


def run_hash_join(plan: P.HashJoin, ctx: ExecutionContext) -> Iterator[Row]:
    from repro.execution.executor import compile_expr, layout_of, open_plan

    left_layout = layout_of(plan.left)
    right_layout = layout_of(plan.right)
    left_keys = [compile_expr(k, left_layout, ctx) for k in plan.left_keys]
    right_keys = [compile_expr(k, right_layout, ctx) for k in plan.right_keys]
    params = ctx.params
    residual = None
    if plan.residual is not None:
        residual = compile_expr(
            plan.residual, _combined_layout(plan.left, plan.right), ctx
        )
    # build on the right input
    table: Dict[tuple, list[Row]] = {}
    for row in open_plan(plan.right, ctx):
        key = _hashable(tuple(fn(row, params) for fn in right_keys))
        if key is None:
            continue
        table.setdefault(key, []).append(row)
    right_width = len(plan.right.output_ids())
    null_right = (None,) * right_width
    for left_row in open_plan(plan.left, ctx):
        key = _hashable(tuple(fn(left_row, params) for fn in left_keys))
        matches = table.get(key, ()) if key is not None else ()
        if plan.kind == "inner":
            for right_row in matches:
                combined = left_row + right_row
                if residual is None or residual(combined, params) is True:
                    yield combined
        elif plan.kind == "left_outer":
            emitted = False
            for right_row in matches:
                combined = left_row + right_row
                if residual is None or residual(combined, params) is True:
                    emitted = True
                    yield combined
            if not emitted:
                yield left_row + null_right
        elif plan.kind == "semi":
            for right_row in matches:
                combined = left_row + right_row
                if residual is None or residual(combined, params) is True:
                    yield left_row
                    break
        elif plan.kind == "anti_semi":
            found = False
            for right_row in matches:
                combined = left_row + right_row
                if residual is None or residual(combined, params) is True:
                    found = True
                    break
            if not found:
                yield left_row


def run_nl_join(plan: P.NLJoin, ctx: ExecutionContext) -> Iterator[Row]:
    from repro.execution.executor import compile_expr, open_plan

    params = ctx.params
    condition = None
    if plan.condition is not None:
        condition = compile_expr(
            plan.condition, _combined_layout(plan.left, plan.right), ctx
        )
    right_width = len(plan.right.output_ids())
    null_right = (None,) * right_width
    for left_row in open_plan(plan.left, ctx):
        emitted = False
        for right_row in open_plan(plan.right, ctx):
            combined = left_row + right_row
            if condition is None or condition(combined, params) is True:
                if plan.kind == "semi":
                    emitted = True
                    break
                if plan.kind == "anti_semi":
                    emitted = True
                    break
                emitted = True
                yield combined
        if plan.kind == "semi" and emitted:
            yield left_row
        elif plan.kind == "anti_semi" and not emitted:
            yield left_row
        elif plan.kind == "left_outer" and not emitted:
            yield left_row + null_right


def run_parameterized_remote_join(
    plan: P.ParameterizedRemoteJoin, ctx: ExecutionContext
) -> Iterator[Row]:
    """Per outer row, execute the parameterized remote query
    (Section 4.1.2's parameterization rule at run time).

    Probe results are cached per distinct parameter vector within the
    execution, so duplicate outer keys cost one round trip, not many.
    """
    from repro.execution.executor import compile_expr, layout_of, open_plan
    from repro.execution.scans import run_remote_query

    left_layout = layout_of(plan.left)
    params = ctx.params
    residual = None
    if plan.residual is not None:
        residual = compile_expr(
            plan.residual, _combined_layout(plan.left, plan.inner_query), ctx
        )
    param_fns = [
        expr.compile(left_layout) for expr in plan.inner_query.param_exprs
    ]
    probe_cache: Dict[tuple, list[Row]] = {}
    for left_row in open_plan(plan.left, ctx):
        probe_key = _hashable(
            tuple(fn(left_row, params) for fn in param_fns)
        )
        if probe_key is not None and probe_key in probe_cache:
            inner_rows: Any = probe_cache[probe_key]
        else:
            inner_rows = list(
                run_remote_query(plan.inner_query, ctx, left_row, left_layout)
            )
            if probe_key is not None:
                probe_cache[probe_key] = inner_rows
        if plan.kind == "semi":
            for right_row in inner_rows:
                combined = left_row + right_row
                if residual is None or residual(combined, params) is True:
                    yield left_row
                    break
        else:  # inner
            for right_row in inner_rows:
                combined = left_row + right_row
                if residual is None or residual(combined, params) is True:
                    yield combined


def run_merge_join(plan: P.MergeJoin, ctx: ExecutionContext) -> Iterator[Row]:
    from repro.execution.executor import layout_of, open_plan, compile_expr

    left_layout = layout_of(plan.left)
    right_layout = layout_of(plan.right)
    left_ordinal = left_layout[plan.left_key]
    right_ordinal = right_layout[plan.right_key]
    params = ctx.params
    residual = None
    if plan.residual is not None:
        residual = compile_expr(
            plan.residual, _combined_layout(plan.left, plan.right), ctx
        )
    left_rows = list(open_plan(plan.left, ctx))
    right_rows = list(open_plan(plan.right, ctx))
    i = j = 0
    while i < len(left_rows):
        left_value = left_rows[i][left_ordinal]
        if left_value is None:
            if plan.kind == "anti_semi":
                yield left_rows[i]
            i += 1
            continue
        left_key = SortKey(left_value)
        # advance right cursor
        while j < len(right_rows) and (
            right_rows[j][right_ordinal] is None
            or SortKey(right_rows[j][right_ordinal]) < left_key
        ):
            j += 1
        # collect the matching right run
        k = j
        matches = []
        while k < len(right_rows) and SortKey(
            right_rows[k][right_ordinal]
        ) == left_key:
            matches.append(right_rows[k])
            k += 1
        if plan.kind == "inner":
            for right_row in matches:
                combined = left_rows[i] + right_row
                if residual is None or residual(combined, params) is True:
                    yield combined
        elif plan.kind == "semi":
            for right_row in matches:
                combined = left_rows[i] + right_row
                if residual is None or residual(combined, params) is True:
                    yield left_rows[i]
                    break
        elif plan.kind == "anti_semi":
            survived = True
            for right_row in matches:
                combined = left_rows[i] + right_row
                if residual is None or residual(combined, params) is True:
                    survived = False
                    break
            if survived:
                yield left_rows[i]
        i += 1
