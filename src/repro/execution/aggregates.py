"""Aggregation operators."""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

from repro.algebra.expressions import AggregateCall
from repro.core import physical as P
from repro.execution.context import ExecutionContext
from repro.types.values import collation_key

Row = tuple


class _Accumulator:
    """One aggregate's running state."""

    __slots__ = ("call", "count", "total", "minimum", "maximum", "distinct")

    def __init__(self, call: AggregateCall):
        self.call = call
        self.count = 0
        self.total: Any = None
        self.minimum: Any = None
        self.maximum: Any = None
        self.distinct: Optional[set] = set() if call.distinct else None

    def add(self, value: Any) -> None:
        if self.call.argument is None:  # COUNT(*)
            self.count += 1
            return
        if value is None:
            return
        if self.distinct is not None:
            folded = collation_key(value)
            if folded in self.distinct:
                return
            self.distinct.add(folded)
        self.count += 1
        if self.total is None:
            self.total = value
        else:
            try:
                self.total = self.total + value
            except TypeError:
                pass
        if self.minimum is None or _lt(value, self.minimum):
            self.minimum = value
        if self.maximum is None or _lt(self.maximum, value):
            self.maximum = value

    def result(self) -> Any:
        func = self.call.func
        if func == "count":
            return self.count
        if self.count == 0:
            return None
        if func == "sum":
            return self.total
        if func == "avg":
            return self.total / self.count
        if func == "min":
            return self.minimum
        if func == "max":
            return self.maximum
        raise AssertionError(func)


def _lt(a: Any, b: Any) -> bool:
    from repro.types.intervals import SortKey

    return SortKey(a) < SortKey(b)


def _group_key(values: tuple) -> tuple:
    """Grouping key: numeric kinds unify and strings fold to the
    default collation's key, so ``GROUP BY``/``DISTINCT`` merge the
    same values ``=`` equates.  The first-seen raw tuple stays the
    group's representative."""
    out = []
    for value in values:
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        out.append(collation_key(value))
    return tuple(out)


def run_hash_aggregate(
    plan: P.HashAggregate, ctx: ExecutionContext
) -> Iterator[Row]:
    from repro.execution.executor import compile_expr, layout_of, open_plan

    child_layout = layout_of(plan.child)
    key_ordinals = [child_layout[cid] for cid in plan.group_by]
    arg_fns = [
        compile_expr(call.argument, child_layout, ctx)
        if call.argument is not None
        else None
        for call in plan.aggregates
    ]
    params = ctx.params
    groups: Dict[tuple, tuple[tuple, list[_Accumulator]]] = {}
    saw_rows = False
    for row in open_plan(plan.child, ctx):
        saw_rows = True
        raw_key = tuple(row[o] for o in key_ordinals)
        key = _group_key(raw_key)
        entry = groups.get(key)
        if entry is None:
            entry = (raw_key, [_Accumulator(c) for c in plan.aggregates])
            groups[key] = entry
        for accumulator, fn in zip(entry[1], arg_fns):
            value = fn(row, params) if fn is not None else None
            accumulator.add(value)
    if not groups and not plan.group_by:
        # scalar aggregate over empty input yields one row of defaults
        empties = [_Accumulator(c) for c in plan.aggregates]
        yield tuple(a.result() for a in empties)
        return
    for raw_key, accumulators in groups.values():
        yield raw_key + tuple(a.result() for a in accumulators)


def run_stream_aggregate(
    plan: P.StreamAggregate, ctx: ExecutionContext
) -> Iterator[Row]:
    """Aggregation over group-key-sorted input."""
    from repro.execution.executor import compile_expr, layout_of, open_plan

    child_layout = layout_of(plan.child)
    key_ordinals = [child_layout[cid] for cid in plan.group_by]
    arg_fns = [
        compile_expr(call.argument, child_layout, ctx)
        if call.argument is not None
        else None
        for call in plan.aggregates
    ]
    params = ctx.params
    current_key: Optional[tuple] = None
    current_raw: tuple = ()
    accumulators: list[_Accumulator] = []
    saw_rows = False
    for row in open_plan(plan.child, ctx):
        saw_rows = True
        raw_key = tuple(row[o] for o in key_ordinals)
        key = _group_key(raw_key)
        if current_key is None or key != current_key:
            if current_key is not None:
                yield current_raw + tuple(a.result() for a in accumulators)
            current_key = key
            current_raw = raw_key
            accumulators = [_Accumulator(c) for c in plan.aggregates]
        for accumulator, fn in zip(accumulators, arg_fns):
            value = fn(row, params) if fn is not None else None
            accumulator.add(value)
    if current_key is not None:
        yield current_raw + tuple(a.result() for a in accumulators)
    elif not plan.group_by and not saw_rows:
        empties = [_Accumulator(c) for c in plan.aggregates]
        yield tuple(a.result() for a in empties)
