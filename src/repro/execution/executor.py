"""The plan interpreter: physical operators → row iterators."""

from __future__ import annotations

from itertools import islice
from typing import Any, Dict, Iterator, Optional

from repro.algebra.expressions import ColumnId, ScalarExpr
from repro.core import physical as P
from repro.errors import ExecutionError
from repro.execution.context import ExecutionContext
from repro.execution.exchange import run_gather, run_gather_merge
from repro.execution.joins import (
    run_hash_join,
    run_merge_join,
    run_nl_join,
    run_parameterized_remote_join,
)
from repro.execution.aggregates import run_hash_aggregate, run_stream_aggregate
from repro.execution.scans import (
    run_const_scan,
    run_fulltext_lookup,
    run_index_range,
    run_provider_rowset,
    run_remote_query,
    run_remote_range,
    run_remote_scan,
    run_table_scan,
)
from repro.types.intervals import SortKey

Row = tuple


def layout_of(plan: P.PhysicalOp) -> Dict[ColumnId, int]:
    """Column-id → ordinal mapping of a plan's output rows."""
    return {cid: i for i, cid in enumerate(plan.output_ids())}


def compile_expr(
    expr: ScalarExpr, plan_layout: Dict[ColumnId, int], ctx: ExecutionContext
):
    """Compile an expression against a layout, resolving subqueries."""
    resolved = ctx.resolve_scalar_subqueries(expr)
    return resolved.compile(plan_layout)


def open_plan(plan: P.PhysicalOp, ctx: ExecutionContext) -> Iterator[Row]:
    """Open a physical plan into a fresh iterator (re-openable).

    When the context carries a profiler, every operator's row stream is
    wrapped with per-node row/time accounting; when it carries a trace,
    the stream additionally runs under a per-operator span (created on
    first pull, so the span tree mirrors the plan tree).  Otherwise the
    iterator is returned untouched (one ``is None`` test per open).
    """
    rows = _dispatch(plan, ctx)
    if ctx.profiler is not None:
        rows = ctx.profiler.instrument(plan, rows)
    if ctx.trace is not None:
        rows = ctx.trace.instrument_operator(
            type(plan).__name__, rows, node_id=id(plan)
        )
    return rows


def _dispatch(plan: P.PhysicalOp, ctx: ExecutionContext) -> Iterator[Row]:
    if isinstance(plan, P.TableScan):
        return run_table_scan(plan, ctx)
    if isinstance(plan, P.IndexRange):
        return run_index_range(plan, ctx)
    if isinstance(plan, P.RemoteScan):
        return run_remote_scan(plan, ctx)
    if isinstance(plan, P.RemoteRange):
        return run_remote_range(plan, ctx)
    if isinstance(plan, P.RemoteQuery):
        return run_remote_query(plan, ctx, ())
    if isinstance(plan, P.ProviderRowsetScan):
        return run_provider_rowset(plan, ctx)
    if isinstance(plan, P.ConstScan):
        return run_const_scan(plan, ctx)
    if isinstance(plan, P.FullTextKeyLookup):
        return run_fulltext_lookup(plan, ctx)
    if isinstance(plan, P.Filter):
        return _run_filter(plan, ctx)
    if isinstance(plan, P.StartupFilter):
        return _run_startup_filter(plan, ctx)
    if isinstance(plan, P.ComputeProject):
        return _run_project(plan, ctx)
    if isinstance(plan, P.PhysicalSort):
        return _run_sort(plan, ctx)
    if isinstance(plan, P.PhysicalTop):
        return islice(open_plan(plan.child, ctx), plan.count)
    if isinstance(plan, P.Spool):
        return _run_spool(plan, ctx)
    if isinstance(plan, P.HashJoin):
        return run_hash_join(plan, ctx)
    if isinstance(plan, P.NLJoin):
        return run_nl_join(plan, ctx)
    if isinstance(plan, P.MergeJoin):
        return run_merge_join(plan, ctx)
    if isinstance(plan, P.ParameterizedRemoteJoin):
        return run_parameterized_remote_join(plan, ctx)
    if isinstance(plan, P.HashAggregate):
        return run_hash_aggregate(plan, ctx)
    if isinstance(plan, P.StreamAggregate):
        return run_stream_aggregate(plan, ctx)
    # Gather/GatherMerge subclass Concat — dispatch them first
    if isinstance(plan, P.Gather):
        return run_gather(plan, ctx)
    if isinstance(plan, P.GatherMerge):
        return run_gather_merge(plan, ctx)
    if isinstance(plan, P.Concat):
        return _run_concat(plan, ctx)
    raise ExecutionError(f"no executor for {type(plan).__name__}")


def execute_plan(
    plan: P.PhysicalOp,
    ctx: Optional[ExecutionContext] = None,
) -> list[Row]:
    """Run a plan to completion."""
    ctx = ctx or ExecutionContext()
    rows = list(open_plan(plan, ctx))
    ctx.record_rows_produced(len(rows))
    return rows


# ----------------------------------------------------------------------
# simple unary operators
# ----------------------------------------------------------------------

def _run_filter(plan: P.Filter, ctx: ExecutionContext) -> Iterator[Row]:
    predicate = compile_expr(plan.predicate, layout_of(plan.child), ctx)
    params = ctx.params
    for row in open_plan(plan.child, ctx):
        if predicate(row, params) is True:
            yield row


def _run_startup_filter(
    plan: P.StartupFilter, ctx: ExecutionContext
) -> Iterator[Row]:
    """Evaluate the predicate *before* opening the child (Section 4.1.5:
    "the table scan ... will only be executed if the @customerId
    variable contains a value in the domain")."""
    predicate = compile_expr(plan.predicate, {}, ctx)
    if predicate((), ctx.params) is not True:
        ctx.record_startup_skip(plan)
        return iter(())
    return open_plan(plan.child, ctx)


def _run_project(plan: P.ComputeProject, ctx: ExecutionContext) -> Iterator[Row]:
    child_layout = layout_of(plan.child)
    compiled = [
        compile_expr(expr, child_layout, ctx) for __, expr in plan.outputs
    ]
    params = ctx.params
    for row in open_plan(plan.child, ctx):
        yield tuple(fn(row, params) for fn in compiled)


def _run_sort(plan: P.PhysicalSort, ctx: ExecutionContext) -> Iterator[Row]:
    child_layout = layout_of(plan.child)
    rows = list(open_plan(plan.child, ctx))
    # stable multi-key sort: apply keys last-to-first
    for key in reversed(plan.keys):
        ordinal = child_layout[key.cid]
        rows.sort(
            key=lambda row: SortKey(row[ordinal]), reverse=not key.ascending
        )
    return iter(rows)


def _run_spool(plan: P.Spool, ctx: ExecutionContext) -> Iterator[Row]:
    # stable key (not id(plan)) so a bounded replan after a mid-query
    # failure can reuse rows already spooled from a now-down member
    cache_key = plan.cache_key()
    with ctx.spool_lock:
        cached = ctx.spool_cache.get(cache_key)
    if cached is None:
        # materialize outside the lock (the build may itself run
        # remote traffic); racing parallel workers both build, the
        # first insert wins and both read one consistent rowset
        rows = list(open_plan(plan.child, ctx))
        with ctx.spool_lock:
            cached = ctx.spool_cache.setdefault(cache_key, rows)
    else:
        ctx.record_spool_rescan(plan)
    return iter(cached)


def _run_concat(plan: P.Concat, ctx: ExecutionContext) -> Iterator[Row]:
    output_ids = plan.output_ids()
    for child, branch_map in zip(plan.children, plan.branch_maps):
        child_layout = layout_of(child)
        ordinals = [child_layout[branch_map[cid]] for cid in output_ids]
        for row in open_plan(child, ctx):
            yield tuple(row[o] for o in ordinals)
