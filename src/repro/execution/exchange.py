"""Exchange operators: the parallel side of the Volcano model.

``run_gather`` and ``run_gather_merge`` execute the
:class:`~repro.core.physical.Gather` / ``GatherMerge`` plan nodes the
optimizer inserts above independent remote / partitioned-view branches
when ``SET PARALLEL_DOP n`` (n > 1) is in effect:

* **Gather** — branches run concurrently on a
  :class:`~repro.execution.scheduler.GatherScheduler` worker pool and
  rows are yielded in arrival order (any interleaving; a plain UNION
  ALL has no order contract).
* **GatherMerge** — each branch is produced already sorted on the
  exchange keys; a k-way heap merge over per-branch streams yields the
  globally sorted output without a full blocking sort, using the same
  collation-aware :class:`~repro.types.intervals.SortKey` comparisons
  as ``PhysicalSort``.

Both operators pipeline: rows flow to the consumer as soon as the
first page of any branch arrives, and abandoning the iterator (TOP,
EXISTS) shuts the worker pool down via ``GeneratorExit``.  Errors in
any branch cancel the others and re-raise on the consumer thread, so
the engine's replan-on-unavailable and partial-results machinery work
unchanged.

Concurrency contract: the generators returned here must be consumed
from the thread that opened them (span mirroring and overlap
accounting happen consumer-side); everything the worker threads touch
is covered by the locks documented in
:mod:`repro.execution.scheduler`.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Sequence, Tuple

from repro.execution.scheduler import (
    BranchStream,
    BranchTask,
    GatherMergeScheduler,
    GatherScheduler,
)
from repro.types.intervals import SortKey


def _effective_dop(plan, ctx) -> int:
    """The degree an exchange actually runs at: the session's current
    PARALLEL_DOP when known (so a shared cached plan adapts to each
    session), else the degree the plan was compiled with — then
    clamped to the workload group's MAX_DOP when the resource governor
    set one."""
    requested = getattr(ctx, "requested_dop", None)
    if requested is not None and requested > 1:
        dop = requested
    else:
        dop = plan.dop
    cap = getattr(ctx, "max_dop", None)
    if cap:
        dop = max(1, min(dop, cap))
    return dop


def run_gather(plan, ctx) -> Iterator[tuple]:
    """Execute a Gather: concurrent branches, arrival-order output."""
    scheduler = GatherScheduler(
        ctx, _effective_dop(plan, ctx), _branch_tasks(plan, ctx)
    )
    scheduler.start()
    try:
        for page in scheduler.pages():
            yield from page
    finally:
        scheduler.shutdown()


def run_gather_merge(plan, ctx) -> Iterator[tuple]:
    """Execute a GatherMerge: concurrent sorted branches, k-way heap
    merge preserving the exchange keys' global order."""
    output_ids = list(plan.output_ids())
    key_ordinals = [
        (output_ids.index(key.cid), key.ascending) for key in plan.keys
    ]
    scheduler = GatherMergeScheduler(
        ctx, _effective_dop(plan, ctx), _branch_tasks(plan, ctx)
    )
    scheduler.start()
    try:
        yield from _merge(scheduler, scheduler.streams(), key_ordinals)
    finally:
        scheduler.shutdown()


# -- branch plumbing -------------------------------------------------------

def _branch_tasks(plan, ctx) -> List[BranchTask]:
    """One :class:`BranchTask` per child, each mapping its child's
    layout onto the exchange's output layout (same ordinal mapping as
    the serial Concat)."""
    output_ids = plan.output_ids()
    tasks = []
    for index, (child, branch_map) in enumerate(
        zip(plan.children, plan.branch_maps)
    ):
        child_layout = {
            cid: pos for pos, cid in enumerate(child.output_ids())
        }
        ordinals = [child_layout[branch_map[cid]] for cid in output_ids]
        tasks.append(
            BranchTask(index, _mapped_opener(child, ordinals, ctx), child.cost)
        )
    return tasks


def _mapped_opener(child, ordinals, ctx):
    def open_rows() -> Iterator[tuple]:
        # deferred import: executor dispatches into this module
        from repro.execution.executor import open_plan

        return (
            tuple(row[o] for o in ordinals) for row in open_plan(child, ctx)
        )

    return open_rows


# -- the merge -------------------------------------------------------------

class _Descending:
    """Inverts comparisons so a descending key can ride the min-heap."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other):
        return other.key < self.key

    def __eq__(self, other):
        return self.key == other.key


def _sort_key(row, key_ordinals: Sequence[Tuple[int, bool]]):
    return tuple(
        SortKey(row[ordinal])
        if ascending
        else _Descending(SortKey(row[ordinal]))
        for ordinal, ascending in key_ordinals
    )


def _merge(
    scheduler: GatherMergeScheduler,
    streams: List[BranchStream],
    key_ordinals: Sequence[Tuple[int, bool]],
) -> Iterator[tuple]:
    # heap entries are (key, branch_index, row); at most one entry per
    # branch is in flight, so equal keys tie-break on the branch index
    # and rows themselves are never compared
    heap: list = []
    for stream in streams:
        _advance(heap, scheduler, streams, stream, key_ordinals)
    while heap:
        __key, index, row = heapq.heappop(heap)
        yield row
        _advance(heap, scheduler, streams, streams[index], key_ordinals)
    scheduler.finish([stream.net_ms for stream in streams])


def _advance(heap, scheduler, streams, stream, key_ordinals) -> None:
    row = stream.next_row()
    if stream.error is not None:
        _abort(scheduler, streams, stream)
    if row is not None:
        heapq.heappush(
            heap, (_sort_key(row, key_ordinals), stream.task.index, row)
        )


def _abort(scheduler, streams, failed: BranchStream):
    """First branch error: cancel the others, drain every branch to
    its completion marker so overlap accounting stays exact, then
    re-raise on the consumer thread."""
    scheduler.cancel.set()
    for stream in streams:
        while stream.next_row() is not None:
            pass
    scheduler.finish([stream.net_ms for stream in streams])
    raise failed.error
