"""Worker-pool scheduler for the parallel exchange operators.

Implements the producer side of :mod:`repro.execution.exchange`: a
bounded pool of worker threads runs independent plan branches (remote
subqueries, partitioned-view member scans) concurrently and pushes
*pages* of already-mapped output rows through bounded queues to the
consumer.  Because the simulated network charges latency as counters
rather than wall-clock sleeps, overlap is accounted explicitly: every
worker attaches a thread-local charge accumulator
(:func:`repro.network.channel.attach_worker_charges`) so each branch's
simulated milliseconds are measured exactly, and on completion the
scheduler credits the consumer with ``saved_ms`` — the difference
between the sum of branch times and the critical path of the slot
assignment actually used.

Concurrency contract
--------------------
* Worker threads touch only thread-safe engine state: channels,
  breakers, retry/budget accounting, the per-thread trace span stack,
  and the locked spool cache.  Each plan branch is opened and iterated
  by exactly one worker thread.
* The consumer (``pages()`` / ``_BranchStream``) must stay on the
  thread that opened the exchange; it re-applies each finished
  branch's network time to the consumer-side span stack so the
  execute-span invariant (net_ms == statement simulated_ms) holds.
* Cancellation is cooperative: the shared :class:`threading.Event` is
  checked at page boundaries, and blocked puts poll it, so the first
  branch error (or an abandoning consumer) stops every worker without
  deadlocking against bounded-queue backpressure.
"""

from __future__ import annotations

import itertools
import queue
import threading
from typing import Callable, Iterator, List, Optional, Sequence

from repro.network.channel import (
    attach_statement_scope,
    attach_worker_charges,
    current_statement_scope,
    detach_worker_charges,
    restore_statement_scope,
)

#: rows per page pushed through an exchange queue
PAGE_ROWS = 64
#: pages of queue headroom (per consumer for Gather, per branch for
#: GatherMerge) before producers block — the prefetch depth
QUEUE_PAGES = 4
#: seconds between cancellation checks while blocked on a queue
POLL_S = 0.05


def assign_slots(costs: Sequence[float], dop: int) -> List[int]:
    """Longest-processing-time assignment of branches onto ``dop``
    worker slots: branches sorted by descending estimated cost, each
    placed on the least-loaded slot.  Returns the slot index per
    branch (same order as ``costs``)."""
    slots = max(1, min(int(dop), len(costs)))
    loads = [0.0] * slots
    assignment = [0] * len(costs)
    for index in sorted(range(len(costs)), key=lambda i: -costs[i]):
        slot = min(range(slots), key=loads.__getitem__)
        assignment[index] = slot
        loads[slot] += costs[index]
    return assignment


class BranchTask:
    """One exchange input branch: a thunk that opens the branch's
    mapped row iterator (called on the worker thread), its estimated
    cost for slot assignment, and the slot it landed on."""

    __slots__ = ("index", "open_rows", "est_cost", "slot")

    def __init__(
        self,
        index: int,
        open_rows: Callable[[], Iterator[tuple]],
        est_cost: float,
    ):
        self.index = index
        self.open_rows = open_rows
        self.est_cost = est_cost
        self.slot = 0


class ExchangeScheduler:
    """Shared machinery for :class:`GatherScheduler` and
    :class:`GatherMergeScheduler`: thread lifecycle, cancellation,
    queue draining, span parentage and overlap accounting."""

    def __init__(self, ctx, dop: int, tasks: Sequence[BranchTask], label: str):
        self.ctx = ctx
        self.dop = int(dop)
        # defensive second clamp: callers normally pass a pre-clamped
        # degree, but the governor's MAX_DOP must hold regardless
        cap = getattr(ctx, "max_dop", None)
        if cap:
            self.dop = max(1, min(self.dop, int(cap)))
        registry = getattr(ctx, "scheduler_registry", None)
        if registry is not None:
            registry.add(self)
        self.tasks = list(tasks)
        self.label = label
        self.cancel = threading.Event()
        self.threads: List[threading.Thread] = []
        self._queues: List[queue.Queue] = []
        for task, slot in zip(
            self.tasks,
            assign_slots([t.est_cost for t in self.tasks], self.dop),
        ):
            task.slot = slot
        trace = ctx.trace
        #: the consumer-side span every branch span parents to, so the
        #: trace tree keeps its shape even though branches run on
        #: other threads (whose span stacks start empty)
        self.parent_span_id = (
            trace.current_span_id if trace is not None else None
        )
        #: the spawning statement's (trace, budget) scope — statement
        #: attribution is thread-local on channels, so each worker
        #: thread must re-attach the consumer's scope before charging
        self._statement_scope = current_statement_scope()

    # -- producer side ----------------------------------------------------
    def _worker(self, tasks: Sequence[BranchTask], out_queue: queue.Queue,
                permits: Optional[threading.Semaphore] = None) -> None:
        """Worker-thread entry: run assigned branches sequentially.
        Every branch emits exactly one completion marker, even when it
        is skipped because cancellation happened first."""
        for task in tasks:
            if self.cancel.is_set():
                self._put(out_queue, ("done", task.index, 0.0), always=True)
                continue
            self._produce_branch(task, out_queue, permits)

    def _produce_branch(self, task: BranchTask, out_queue: queue.Queue,
                        permits: Optional[threading.Semaphore]) -> None:
        trace = self.ctx.trace
        charges = [0.0]
        attach_worker_charges(charges)
        prior_scope = attach_statement_scope(*self._statement_scope)
        span = None
        if trace is not None:
            span = trace.begin_span(
                "parallel_branch",
                parent_span_id=self.parent_span_id,
                exchange=self.label,
                parallelism=self.dop,
                worker=task.slot,
                branch=task.index,
            )
        failure = None
        try:
            rows = task.open_rows()
            while not self.cancel.is_set():
                if permits is not None:
                    permits.acquire()
                try:
                    page = list(itertools.islice(rows, PAGE_ROWS))
                finally:
                    if permits is not None:
                        permits.release()
                if not page:
                    break
                if not self._put(out_queue, ("page", task.index, page)):
                    break
        except BaseException as error:  # relayed to the consumer thread
            failure = error
            self.cancel.set()
        finally:
            detach_worker_charges()
            restore_statement_scope(prior_scope)
            if span is not None:
                trace.exit_span(span)
        if failure is not None:
            self._put(
                out_queue, ("error", task.index, (failure, charges[0])),
                always=True,
            )
        else:
            self._put(out_queue, ("done", task.index, charges[0]), always=True)

    def _put(self, out_queue: queue.Queue, item, always: bool = False) -> bool:
        """Blocking put that stays responsive to cancellation.

        Completion markers (``always=True``) are delivered even after
        cancellation: the consumer keeps draining until every branch
        has reported (and ``shutdown`` drains while joining), so queue
        space is guaranteed to appear."""
        while True:
            try:
                out_queue.put(item, timeout=POLL_S)
                return True
            except queue.Full:
                if not always and self.cancel.is_set():
                    return False

    # -- consumer side ----------------------------------------------------
    def _mirror_branch_ms(self, net_ms: float) -> None:
        """Re-apply a finished branch's simulated network time to the
        spans open on the *consumer* thread (the exchange operator
        span, the execute span, ...).  Worker-side charges only
        reached the worker's own span stack, so without this the
        execute span would under-report by exactly the parallel
        work."""
        trace = self.ctx.trace
        if trace is not None and net_ms:
            trace.add_network_ms(net_ms)

    def finish(self, branch_ms: Sequence[float]) -> None:
        """Record overlap accounting once every branch has reported:
        ``saved_ms`` = sum of branch simulated ms minus the critical
        path (busiest slot) of the assignment the workers actually
        ran with."""
        loads: dict = {}
        for task, ms in zip(self.tasks, branch_ms):
            loads[task.slot] = loads.get(task.slot, 0.0) + ms
        elapsed = max(loads.values()) if loads else 0.0
        saved = max(0.0, sum(branch_ms) - elapsed)
        self.ctx.record_gather(
            dop=self.dop,
            branches=len(self.tasks),
            saved_ms=saved,
            busiest_ms=elapsed,
        )

    def shutdown(self) -> None:
        """Cancel, unblock and join every worker.  Safe to call after
        normal completion (threads are already dead) and from a
        ``finally`` when the consumer abandons the exchange early
        (e.g. TOP): draining while joining guarantees no producer
        stays blocked on a full queue."""
        self.cancel.set()
        for thread in self.threads:
            while thread.is_alive():
                thread.join(timeout=POLL_S)
                self._drain()
        self._drain()

    def _drain(self) -> None:
        for q in self._queues:
            while True:
                try:
                    q.get_nowait()
                except queue.Empty:
                    break


class GatherScheduler(ExchangeScheduler):
    """``min(dop, branches)`` slot workers share one bounded queue;
    each worker runs its LPT-assigned branches sequentially,
    prefetching pages ahead of the consumer."""

    def __init__(self, ctx, dop: int, tasks: Sequence[BranchTask]):
        super().__init__(ctx, dop, tasks, "Gather")
        workers = max(1, min(self.dop, len(self.tasks)))
        self.queue: queue.Queue = queue.Queue(maxsize=workers * QUEUE_PAGES)
        self._queues = [self.queue]

    def start(self) -> None:
        by_slot: dict = {}
        for task in self.tasks:
            by_slot.setdefault(task.slot, []).append(task)
        for slot, tasks in sorted(by_slot.items()):
            thread = threading.Thread(
                target=self._worker,
                args=(tasks, self.queue),
                name=f"gather-w{slot}",
                daemon=True,
            )
            self.threads.append(thread)
            thread.start()

    def pages(self) -> Iterator[list]:
        """Yield row pages in arrival order.  On the first branch
        error: cancel, keep draining until every branch has reported
        (accounting stays exact), then re-raise on this thread."""
        pending = len(self.tasks)
        branch_ms = [0.0] * len(self.tasks)
        first_error = None
        while pending:
            try:
                kind, index, payload = self.queue.get(timeout=POLL_S)
            except queue.Empty:
                continue
            if kind == "page":
                if first_error is None:
                    yield payload
                continue
            pending -= 1
            if kind == "error":
                error, net_ms = payload
                branch_ms[index] = net_ms
                self._mirror_branch_ms(net_ms)
                if first_error is None:
                    first_error = error
                self.cancel.set()
            else:
                branch_ms[index] = payload
                self._mirror_branch_ms(payload)
        self.finish(branch_ms)
        if first_error is not None:
            raise first_error


class GatherMergeScheduler(ExchangeScheduler):
    """One producer thread per branch, gated by a ``dop``-permit
    semaphore around each page production, with a small bounded queue
    per branch.

    The merge consumer must be able to pull the next row of *any*
    branch at any moment; slot-sequential workers would deadlock (the
    consumer blocks on a branch whose worker has not started it, while
    that worker blocks on the full queue of a branch the consumer is
    not reading).  Per-branch threads keep every stream live, and the
    semaphore still caps concurrent page production at ``dop``."""

    def __init__(self, ctx, dop: int, tasks: Sequence[BranchTask]):
        super().__init__(ctx, dop, tasks, "GatherMerge")
        permits = max(1, min(self.dop, len(self.tasks)))
        self.permits = threading.BoundedSemaphore(permits)
        self.branch_queues = [
            queue.Queue(maxsize=QUEUE_PAGES) for __ in self.tasks
        ]
        self._queues = list(self.branch_queues)

    def start(self) -> None:
        for task, branch_queue in zip(self.tasks, self.branch_queues):
            thread = threading.Thread(
                target=self._worker,
                args=([task], branch_queue, self.permits),
                name=f"gather-merge-b{task.index}",
                daemon=True,
            )
            self.threads.append(thread)
            thread.start()

    def streams(self) -> List["BranchStream"]:
        return [
            BranchStream(self, task, branch_queue)
            for task, branch_queue in zip(self.tasks, self.branch_queues)
        ]


class BranchStream:
    """Consumer-side cursor over one GatherMerge branch's page queue.
    Must only be used from the consumer thread."""

    __slots__ = (
        "scheduler", "task", "queue", "page", "pos", "done", "net_ms",
        "error",
    )

    def __init__(self, scheduler: GatherMergeScheduler, task: BranchTask,
                 branch_queue: queue.Queue):
        self.scheduler = scheduler
        self.task = task
        self.queue = branch_queue
        self.page: Optional[list] = None
        self.pos = 0
        self.done = False
        self.net_ms = 0.0
        self.error: Optional[BaseException] = None

    def next_row(self):
        """The branch's next row, or ``None`` once its completion
        marker has been processed (check ``error`` afterwards)."""
        while True:
            if self.page is not None and self.pos < len(self.page):
                row = self.page[self.pos]
                self.pos += 1
                return row
            if self.done:
                return None
            try:
                kind, __index, payload = self.queue.get(timeout=POLL_S)
            except queue.Empty:
                continue
            if kind == "page":
                self.page = payload
                self.pos = 0
            elif kind == "error":
                self.error, self.net_ms = payload
                self.done = True
                self.scheduler._mirror_branch_ms(self.net_ms)
            else:
                self.net_ms = payload
                self.done = True
                self.scheduler._mirror_branch_ms(self.net_ms)
