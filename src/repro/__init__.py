"""repro: a reproduction of "Distributed/Heterogeneous Query Processing
in Microsoft SQL Server" (Blakeley et al., ICDE 2005).

Public API highlights:

* :class:`~repro.engine.Engine` (= :class:`~repro.engine.ServerInstance`)
  — a complete mini SQL Server with a built-in distributed/heterogeneous
  query processor (DHQP).
* :class:`~repro.network.channel.NetworkChannel` — the simulated links
  remote rowsets stream over; experiments read its byte accounting.
* The provider zoo in :mod:`repro.providers` — SQL, simple (text),
  ISAM (Access-like), Excel-like, email, full-text, pass-through.
* :mod:`repro.federation` — distributed partitioned views.
* :mod:`repro.workloads` — TPC-H-lite / TPC-C-lite / mail / document
  generators used by the benchmark suite.

Quickstart::

    from repro import Engine, NetworkChannel, ServerInstance

    local = Engine("local")
    remote = ServerInstance("remote0")
    remote.execute("CREATE TABLE customer (id int PRIMARY KEY, name varchar(40))")
    remote.execute("INSERT INTO customer VALUES (1, 'Ada'), (2, 'Grace')")
    local.add_linked_server("remote0", remote, NetworkChannel("wan", latency_ms=2))
    result = local.execute("SELECT name FROM remote0.master.dbo.customer c WHERE c.id = 2")
    print(result.rows)  # [('Grace',)]
"""

from repro.engine import Engine, QueryResult, ServerInstance
from repro.network.channel import NetworkChannel
from repro.core.optimizer import OptimizerOptions
from repro.core.cost import CostModel
from repro.fulltext.service import FullTextService
from repro.observability import (
    MetricsRegistry,
    PlanProfiler,
    QueryStore,
    QueryTrace,
)
from repro.resilience import FaultInjector, QueryBudget, RetryPolicy
from repro.session import Session

__version__ = "1.0.0"

__all__ = [
    "Engine",
    "ServerInstance",
    "QueryResult",
    "NetworkChannel",
    "OptimizerOptions",
    "CostModel",
    "FullTextService",
    "MetricsRegistry",
    "PlanProfiler",
    "QueryStore",
    "QueryTrace",
    "FaultInjector",
    "RetryPolicy",
    "QueryBudget",
    "Session",
    "__version__",
]
