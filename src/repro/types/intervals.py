"""Interval-set algebra for the constraint property framework.

Section 4.1.5 of the paper tracks the domain of every scalar expression
as a set of (possibly open-ended) intervals: e.g. after the predicate
``CustomerId > 50`` the domain of CustomerId narrows from [-inf, +inf]
to (50, +inf]; ``CustomerId IN (1, 5) OR CustomerId BETWEEN 50 AND 100``
derives [1,1] U [5,5] U [50,100].  The optimizer intersects these sets
to prove predicates unsatisfiable (static pruning) and to generate
startup filters (runtime pruning).

Endpoints are ordered via the same coercions as SQL comparison, so
interval sets work for numbers, strings, and dates alike.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence


class _Infinity:
    """A signed infinity that compares beyond every SQL value."""

    __slots__ = ("positive",)

    def __init__(self, positive: bool):
        self.positive = positive

    def __repr__(self) -> str:
        return "+inf" if self.positive else "-inf"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Infinity) and self.positive == other.positive

    def __hash__(self) -> int:
        return hash(("_Infinity", self.positive))


POS_INF = _Infinity(True)
NEG_INF = _Infinity(False)


def _cmp(a: Any, b: Any) -> int:
    """Total order over SQL values extended with +/-inf.

    Returns -1, 0, or 1.  Mixed-type endpoints that SQL cannot compare
    fall back to comparing type names, which keeps the algebra total
    (such intervals only ever arise from contradictory predicates and
    the result is still sound for pruning: we never prune unless the
    comparison is meaningful).
    """
    if a is b:
        return 0
    if isinstance(a, _Infinity):
        if isinstance(b, _Infinity):
            if a.positive == b.positive:
                return 0
            return 1 if a.positive else -1
        return 1 if a.positive else -1
    if isinstance(b, _Infinity):
        return -1 if b.positive else 1
    if isinstance(a, bool):
        a = int(a)
    if isinstance(b, bool):
        b = int(b)
    a, b = _coerce_pair(a, b)
    try:
        if a == b:
            return 0
        return -1 if a < b else 1
    except TypeError:
        ta, tb = type(a).__name__, type(b).__name__
        if ta == tb:
            return 0
        return -1 if ta < tb else 1


def _coerce_pair(a: Any, b: Any) -> tuple[Any, Any]:
    """Coerce mixed-kind endpoints the way SQL comparison would:
    strings against dates parse as dates, strings against numbers as
    numbers, dates against datetimes widen to datetimes; string pairs
    fold to the default collation's comparison key (case-insensitive,
    like SQL Server's Latin1_General_CI_AS)."""
    import datetime as _dt

    from repro.types.collation import DEFAULT_COLLATION

    if isinstance(a, str) and isinstance(b, str):
        return DEFAULT_COLLATION.normalize(a), DEFAULT_COLLATION.normalize(b)
    if isinstance(a, str) and isinstance(b, (_dt.date, _dt.datetime)):
        parsed = _parse_temporal_endpoint(a, b)
        if parsed is not None:
            a = parsed
    elif isinstance(b, str) and isinstance(a, (_dt.date, _dt.datetime)):
        parsed = _parse_temporal_endpoint(b, a)
        if parsed is not None:
            b = parsed
    elif isinstance(a, str) and isinstance(b, (int, float)):
        try:
            a = float(a)
        except ValueError:
            pass
    elif isinstance(b, str) and isinstance(a, (int, float)):
        try:
            b = float(b)
        except ValueError:
            pass
    if (
        isinstance(a, _dt.datetime)
        and isinstance(b, _dt.date)
        and not isinstance(b, _dt.datetime)
    ):
        b = _dt.datetime(b.year, b.month, b.day)
    elif (
        isinstance(b, _dt.datetime)
        and isinstance(a, _dt.date)
        and not isinstance(a, _dt.datetime)
    ):
        a = _dt.datetime(a.year, a.month, a.day)
    return a, b


def _parse_temporal_endpoint(text: str, like: Any) -> Any:
    import datetime as _dt

    try:
        if isinstance(like, _dt.datetime):
            return _dt.datetime.fromisoformat(text)
        return _dt.date.fromisoformat(text)
    except ValueError:
        try:
            # SQL-Serverish loose dates: '1992-1-1'
            parts = [int(p) for p in text.split("-")]
            if len(parts) == 3:
                if isinstance(like, _dt.datetime):
                    return _dt.datetime(*parts)
                return _dt.date(*parts)
        except (ValueError, TypeError):
            pass
        return None


class SortKey:
    """Sort adapter imposing the SQL total order (``_cmp``) on values.

    Use as ``sorted(values, key=SortKey)`` wherever SQL values of mixed
    or non-Python-orderable kinds must be ordered (B-trees, histograms,
    ORDER BY).  NULLs sort first, matching SQL Server.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "SortKey") -> bool:
        if self.value is None:
            return other.value is not None
        if other.value is None:
            return False
        return _cmp(self.value, other.value) < 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SortKey):
            return NotImplemented
        if self.value is None or other.value is None:
            return self.value is None and other.value is None
        return _cmp(self.value, other.value) == 0

    def __le__(self, other: "SortKey") -> bool:
        return self < other or self == other

    def __hash__(self) -> int:
        return hash(repr(self.value))


def row_sort_key(row: Any) -> tuple[SortKey, ...]:
    """Key function ordering whole rows (tuples) under SQL semantics."""
    return tuple(SortKey(v) for v in row)


class Interval:
    """A contiguous range of SQL values with open/closed endpoints."""

    __slots__ = ("low", "high", "low_closed", "high_closed")

    def __init__(
        self,
        low: Any = NEG_INF,
        high: Any = POS_INF,
        low_closed: bool = False,
        high_closed: bool = False,
    ):
        self.low = low
        self.high = high
        # infinite endpoints are always open
        self.low_closed = low_closed and not isinstance(low, _Infinity)
        self.high_closed = high_closed and not isinstance(high, _Infinity)

    # -- constructors ---------------------------------------------------
    @staticmethod
    def point(value: Any) -> "Interval":
        """The degenerate interval [value, value]."""
        return Interval(value, value, True, True)

    @staticmethod
    def at_least(value: Any, closed: bool = True) -> "Interval":
        return Interval(value, POS_INF, closed, False)

    @staticmethod
    def at_most(value: Any, closed: bool = True) -> "Interval":
        return Interval(NEG_INF, value, False, closed)

    @staticmethod
    def full() -> "Interval":
        return Interval()

    # -- predicates -----------------------------------------------------
    def is_empty(self) -> bool:
        c = _cmp(self.low, self.high)
        if c > 0:
            return True
        if c == 0:
            return not (self.low_closed and self.high_closed)
        return False

    def is_point(self) -> bool:
        return (
            _cmp(self.low, self.high) == 0
            and self.low_closed
            and self.high_closed
        )

    def contains(self, value: Any) -> bool:
        c_low = _cmp(value, self.low)
        if c_low < 0 or (c_low == 0 and not self.low_closed):
            return False
        c_high = _cmp(value, self.high)
        if c_high > 0 or (c_high == 0 and not self.high_closed):
            return False
        return True

    # -- algebra ---------------------------------------------------------
    def intersect(self, other: "Interval") -> "Interval":
        if _cmp(self.low, other.low) > 0:
            low, low_closed = self.low, self.low_closed
        elif _cmp(self.low, other.low) < 0:
            low, low_closed = other.low, other.low_closed
        else:
            low, low_closed = self.low, self.low_closed and other.low_closed
        if _cmp(self.high, other.high) < 0:
            high, high_closed = self.high, self.high_closed
        elif _cmp(self.high, other.high) > 0:
            high, high_closed = other.high, other.high_closed
        else:
            high, high_closed = self.high, self.high_closed and other.high_closed
        return Interval(low, high, low_closed, high_closed)

    def overlaps_or_adjacent(self, other: "Interval") -> bool:
        """True when union with ``other`` is a single interval."""
        if self.is_empty() or other.is_empty():
            return True
        lo, hi = (self, other) if _cmp(self.low, other.low) <= 0 else (other, self)
        c = _cmp(lo.high, hi.low)
        if c > 0:
            return True
        if c == 0:
            return lo.high_closed or hi.low_closed
        return False

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval covering both (assumes overlap/adjacency)."""
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        if _cmp(self.low, other.low) < 0:
            low, low_closed = self.low, self.low_closed
        elif _cmp(self.low, other.low) > 0:
            low, low_closed = other.low, other.low_closed
        else:
            low, low_closed = self.low, self.low_closed or other.low_closed
        if _cmp(self.high, other.high) > 0:
            high, high_closed = self.high, self.high_closed
        elif _cmp(self.high, other.high) < 0:
            high, high_closed = other.high, other.high_closed
        else:
            high, high_closed = self.high, self.high_closed or other.high_closed
        return Interval(low, high, low_closed, high_closed)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        if self.is_empty() and other.is_empty():
            return True
        return (
            _cmp(self.low, other.low) == 0
            and _cmp(self.high, other.high) == 0
            and self.low_closed == other.low_closed
            and self.high_closed == other.high_closed
        )

    def __hash__(self) -> int:
        if self.is_empty():
            return hash("empty-interval")
        return hash((repr(self.low), repr(self.high), self.low_closed, self.high_closed))

    def __repr__(self) -> str:
        lo = "[" if self.low_closed else "("
        hi = "]" if self.high_closed else ")"
        return f"{lo}{self.low!r}, {self.high!r}{hi}"


class IntervalSet:
    """A canonical union of disjoint, sorted intervals.

    This is the ``domain property`` of a scalar expression in the
    constraint property framework.  The set is normalized on
    construction: empty intervals dropped, overlapping/adjacent
    intervals merged, results sorted by lower bound.
    """

    __slots__ = ("intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()):
        self.intervals: tuple[Interval, ...] = self._normalize(intervals)

    @staticmethod
    def _normalize(intervals: Iterable[Interval]) -> tuple[Interval, ...]:
        live = [iv for iv in intervals if not iv.is_empty()]
        if not live:
            return ()
        # insertion sort by lower bound under _cmp (endpoints are not
        # directly orderable by Python when infinities are involved)
        ordered: list[Interval] = []
        for iv in live:
            idx = len(ordered)
            while idx > 0 and _cmp(ordered[idx - 1].low, iv.low) > 0:
                idx -= 1
            ordered.insert(idx, iv)
        merged: list[Interval] = [ordered[0]]
        for iv in ordered[1:]:
            if merged[-1].overlaps_or_adjacent(iv):
                merged[-1] = merged[-1].hull(iv)
                # the hull may have closed an endpoint and become
                # adjacent to earlier intervals: re-merge backwards
                while len(merged) >= 2 and merged[-2].overlaps_or_adjacent(
                    merged[-1]
                ):
                    tail = merged.pop()
                    merged[-1] = merged[-1].hull(tail)
            else:
                merged.append(iv)
        return tuple(merged)

    # -- constructors ---------------------------------------------------
    @staticmethod
    def full() -> "IntervalSet":
        return IntervalSet([Interval.full()])

    @staticmethod
    def empty() -> "IntervalSet":
        return IntervalSet()

    @staticmethod
    def point(value: Any) -> "IntervalSet":
        return IntervalSet([Interval.point(value)])

    @staticmethod
    def points(values: Sequence[Any]) -> "IntervalSet":
        return IntervalSet([Interval.point(v) for v in values])

    @staticmethod
    def from_comparison(op: str, value: Any) -> "IntervalSet":
        """Domain implied by ``column <op> value``."""
        if op == "=":
            return IntervalSet.point(value)
        if op == "<":
            return IntervalSet([Interval.at_most(value, closed=False)])
        if op == "<=":
            return IntervalSet([Interval.at_most(value, closed=True)])
        if op == ">":
            return IntervalSet([Interval.at_least(value, closed=False)])
        if op == ">=":
            return IntervalSet([Interval.at_least(value, closed=True)])
        if op in ("<>", "!="):
            return IntervalSet(
                [
                    Interval(NEG_INF, value, False, False),
                    Interval(value, POS_INF, False, False),
                ]
            )
        return IntervalSet.full()

    # -- predicates -----------------------------------------------------
    def is_empty(self) -> bool:
        return not self.intervals

    def is_full(self) -> bool:
        return (
            len(self.intervals) == 1
            and isinstance(self.intervals[0].low, _Infinity)
            and isinstance(self.intervals[0].high, _Infinity)
            and not self.intervals[0].low.positive
            and self.intervals[0].high.positive
        )

    def contains(self, value: Any) -> bool:
        return any(iv.contains(value) for iv in self.intervals)

    def single_point(self) -> Optional[Any]:
        """The sole value of a one-point domain, else None."""
        if len(self.intervals) == 1 and self.intervals[0].is_point():
            return self.intervals[0].low
        return None

    # -- algebra ---------------------------------------------------------
    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        out = []
        for a in self.intervals:
            for b in other.intervals:
                piece = a.intersect(b)
                if not piece.is_empty():
                    out.append(piece)
        return IntervalSet(out)

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(self.intervals + other.intervals)

    def map_endpoints(self, fn) -> "IntervalSet":
        """Apply ``fn`` to every finite endpoint (type normalization)."""
        out = []
        for iv in self.intervals:
            low = iv.low if isinstance(iv.low, _Infinity) else fn(iv.low)
            high = iv.high if isinstance(iv.high, _Infinity) else fn(iv.high)
            out.append(Interval(low, high, iv.low_closed, iv.high_closed))
        return IntervalSet(out)

    def disjoint_from(self, other: "IntervalSet") -> bool:
        """True when no value satisfies both domains — the static
        pruning test of Section 4.1.5."""
        return self.intersect(other).is_empty()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self.intervals == other.intervals

    def __hash__(self) -> int:
        return hash(self.intervals)

    def __repr__(self) -> str:
        if not self.intervals:
            return "{}"
        return " U ".join(repr(iv) for iv in self.intervals)
