"""Collations.

The paper's decoder "responds to different parameter settings of the
connection ... e.g. the SQL dialect the remote sources support, data
collation" (Section 4.1.3).  We model a collation as a case-sensitivity
flag plus an identifier-quoting convention, which is what the decoder
needs to emit compliant SQL.
"""

from __future__ import annotations


class Collation:
    """String comparison + identifier quoting rules for a data source."""

    __slots__ = ("name", "case_sensitive", "quote_open", "quote_close")

    def __init__(
        self,
        name: str,
        case_sensitive: bool = False,
        quote_open: str = "[",
        quote_close: str = "]",
    ):
        self.name = name
        self.case_sensitive = case_sensitive
        self.quote_open = quote_open
        self.quote_close = quote_close

    def normalize(self, text: str) -> str:
        """Canonical comparison key for a string under this collation."""
        return text if self.case_sensitive else text.lower()

    def equals(self, a: str, b: str) -> bool:
        return self.normalize(a) == self.normalize(b)

    def quote_identifier(self, identifier: str) -> str:
        """Quote an identifier per this source's convention."""
        inner = identifier.replace(self.quote_close, self.quote_close * 2)
        return f"{self.quote_open}{inner}{self.quote_close}"

    def __repr__(self) -> str:
        return f"Collation({self.name})"


#: SQL Server default: case-insensitive, bracket quoting.
DEFAULT_COLLATION = Collation("Latin1_General_CI_AS", case_sensitive=False)

#: ANSI double-quote convention (used by the Oracle-like provider).
ANSI_COLLATION = Collation(
    "ANSI_CS", case_sensitive=True, quote_open='"', quote_close='"'
)
