"""Three-valued SQL value semantics.

SQL comparisons involving NULL yield UNKNOWN, which we model as Python
``None``.  The helpers here implement comparison, boolean connectives,
arithmetic, LIKE matching, and the date helpers used by the Section 2.4
email scenario (``date(today(), -2)``).

All helpers accept and return plain Python values; NULL is ``None``.
"""

from __future__ import annotations

import datetime as _dt
import re
from typing import Any, Optional

from repro.errors import ExecutionError
from repro.types.collation import DEFAULT_COLLATION

#: canonical NULL marker (SQL NULL == Python None)
NULL = None


def collation_key(value: Any) -> Any:
    """Canonical comparison/hash key for a value under the engine's
    default collation: strings fold per Latin1_General_CI_AS (so
    ``'Apple' = 'APPLE'``, matching LIKE's existing behaviour); other
    values pass through.  Every equality/grouping/hashing site must use
    the same fold or hash joins and stream aggregates would disagree
    with ``=``.
    """
    if isinstance(value, str):
        return DEFAULT_COLLATION.normalize(value)
    return value


def _comparable(a: Any, b: Any) -> tuple[Any, Any]:
    """Normalize a pair of non-NULL values so Python can compare them."""
    if isinstance(a, bool):
        a = int(a)
    if isinstance(b, bool):
        b = int(b)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return a, b
    if isinstance(a, str) and isinstance(b, str):
        # string comparison honours the default collation
        return DEFAULT_COLLATION.normalize(a), DEFAULT_COLLATION.normalize(b)
    if isinstance(a, _dt.datetime) and isinstance(b, _dt.date) and not isinstance(
        b, _dt.datetime
    ):
        return a, _dt.datetime(b.year, b.month, b.day)
    if isinstance(b, _dt.datetime) and isinstance(a, _dt.date) and not isinstance(
        a, _dt.datetime
    ):
        return _dt.datetime(a.year, a.month, a.day), b
    if type(a) is type(b):
        return a, b
    if isinstance(a, str) and isinstance(b, (int, float)):
        try:
            return float(a), float(b)
        except ValueError:
            pass
    if isinstance(b, str) and isinstance(a, (int, float)):
        try:
            return float(a), float(b)
        except ValueError:
            pass
    if isinstance(a, str) and isinstance(b, (_dt.date, _dt.datetime)):
        return _parse_temporal(a, b), b
    if isinstance(b, str) and isinstance(a, (_dt.date, _dt.datetime)):
        return a, _parse_temporal(b, a)
    raise ExecutionError(f"cannot compare {a!r} with {b!r}")


def _parse_temporal(text: str, like: Any) -> Any:
    try:
        if isinstance(like, _dt.datetime):
            return _dt.datetime.fromisoformat(text)
        return _dt.date.fromisoformat(text)
    except ValueError:
        pass
    try:
        # SQL-Serverish loose dates: '1992-1-1'
        parts = [int(p) for p in text.split("-")]
        if len(parts) == 3:
            if isinstance(like, _dt.datetime):
                return _dt.datetime(*parts)
            return _dt.date(*parts)
    except (ValueError, TypeError):
        pass
    raise ExecutionError(f"cannot compare {text!r} with {like!r}")


def sql_eq(a: Any, b: Any) -> Optional[bool]:
    """SQL ``=``: NULL if either side is NULL."""
    if a is None or b is None:
        return None
    a, b = _comparable(a, b)
    return a == b


def sql_ne(a: Any, b: Any) -> Optional[bool]:
    """SQL ``<>``."""
    eq = sql_eq(a, b)
    return None if eq is None else not eq


def sql_lt(a: Any, b: Any) -> Optional[bool]:
    """SQL ``<``."""
    if a is None or b is None:
        return None
    a, b = _comparable(a, b)
    return a < b


def sql_le(a: Any, b: Any) -> Optional[bool]:
    """SQL ``<=``."""
    if a is None or b is None:
        return None
    a, b = _comparable(a, b)
    return a <= b


def sql_gt(a: Any, b: Any) -> Optional[bool]:
    """SQL ``>``."""
    if a is None or b is None:
        return None
    a, b = _comparable(a, b)
    return a > b


def sql_ge(a: Any, b: Any) -> Optional[bool]:
    """SQL ``>=``."""
    if a is None or b is None:
        return None
    a, b = _comparable(a, b)
    return a >= b


def sql_and(a: Optional[bool], b: Optional[bool]) -> Optional[bool]:
    """Three-valued AND: FALSE dominates UNKNOWN."""
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def sql_or(a: Optional[bool], b: Optional[bool]) -> Optional[bool]:
    """Three-valued OR: TRUE dominates UNKNOWN."""
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def sql_not(a: Optional[bool]) -> Optional[bool]:
    """Three-valued NOT."""
    if a is None:
        return None
    return not a


def sql_is_null(a: Any) -> bool:
    """SQL ``IS NULL`` — never UNKNOWN."""
    return a is None


def sql_add(a: Any, b: Any) -> Any:
    """SQL ``+`` with NULL propagation; strings concatenate."""
    if a is None or b is None:
        return None
    if isinstance(a, str) and isinstance(b, str):
        return a + b
    return a + b


def sql_sub(a: Any, b: Any) -> Any:
    """SQL ``-`` with NULL propagation."""
    if a is None or b is None:
        return None
    return a - b


def sql_mul(a: Any, b: Any) -> Any:
    """SQL ``*`` with NULL propagation."""
    if a is None or b is None:
        return None
    return a * b


def sql_div(a: Any, b: Any) -> Any:
    """SQL ``/`` with NULL propagation; division by zero is an error."""
    if a is None or b is None:
        return None
    if b == 0:
        raise ExecutionError("division by zero")
    if isinstance(a, int) and isinstance(b, int):
        # T-SQL integer division truncates toward zero
        quotient = abs(a) // abs(b)
        return quotient if (a >= 0) == (b >= 0) else -quotient
    return a / b


_LIKE_CACHE: dict[str, re.Pattern[str]] = {}


def _like_regex(pattern: str) -> re.Pattern[str]:
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        parts = []
        for ch in pattern:
            if ch == "%":
                parts.append(".*")
            elif ch == "_":
                parts.append(".")
            else:
                parts.append(re.escape(ch))
        compiled = re.compile("".join(parts) + r"\Z", re.IGNORECASE | re.DOTALL)
        _LIKE_CACHE[pattern] = compiled
    return compiled


def sql_like(value: Any, pattern: Any) -> Optional[bool]:
    """SQL ``LIKE`` with ``%`` and ``_`` wildcards (case-insensitive,
    matching SQL Server's default collation behaviour)."""
    if value is None or pattern is None:
        return None
    return _like_regex(str(pattern)).match(str(value)) is not None


def date_add_days(base: Any, days: Any) -> Any:
    """The paper's ``date(d, n)`` function: ``d`` shifted by ``n`` days."""
    if base is None or days is None:
        return None
    if isinstance(base, str):
        base = _dt.date.fromisoformat(base)
    return base + _dt.timedelta(days=int(days))


def make_date(year: int, month: int, day: int) -> _dt.date:
    """Construct a date value."""
    return _dt.date(year, month, day)
