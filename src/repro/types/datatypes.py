"""SQL datatypes.

Each type knows how to validate/coerce Python values, render literals
in SQL text (used by the decoder when building remote queries), and
estimate its serialized width in bytes (used by the network cost
model: the paper's remote cost model minimizes bytes over the wire,
Section 4.1.3).
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Optional

from repro.errors import TypeCheckError


class SqlType:
    """Abstract base for SQL datatypes.

    Concrete types are lightweight, immutable, and compared by value so
    they can be shared freely between schemas.
    """

    #: short type-family name, e.g. ``"INT"``
    name: str = "ANY"
    #: does the family order/compare numerically?
    numeric: bool = False

    def validate(self, value: Any) -> Any:
        """Coerce ``value`` into this type's canonical Python form.

        ``None`` (SQL NULL) always passes through unchanged.  Raises
        :class:`TypeCheckError` for values that cannot be represented.
        """
        if value is None:
            return None
        return self._coerce(value)

    def _coerce(self, value: Any) -> Any:
        raise NotImplementedError

    def render_literal(self, value: Any) -> str:
        """Render a value of this type as a SQL literal."""
        if value is None:
            return "NULL"
        return self._render(value)

    def _render(self, value: Any) -> str:
        raise NotImplementedError

    def byte_width(self, value: Any = None) -> int:
        """Estimated serialized width in bytes (value-specific if given)."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == getattr(
            other, "__dict__", None
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))

    def __repr__(self) -> str:
        return self.name


class IntType(SqlType):
    """32-bit integer."""

    name = "INT"
    numeric = True

    def _coerce(self, value: Any) -> int:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError:
                raise TypeCheckError(f"cannot coerce {value!r} to INT") from None
        raise TypeCheckError(f"cannot coerce {value!r} to INT")

    def _render(self, value: Any) -> str:
        return str(int(value))

    def byte_width(self, value: Any = None) -> int:
        return 4


class BigIntType(IntType):
    """64-bit integer."""

    name = "BIGINT"

    def byte_width(self, value: Any = None) -> int:
        return 8


class FloatType(SqlType):
    """Double-precision float."""

    name = "FLOAT"
    numeric = True

    def _coerce(self, value: Any) -> float:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                raise TypeCheckError(f"cannot coerce {value!r} to FLOAT") from None
        raise TypeCheckError(f"cannot coerce {value!r} to FLOAT")

    def _render(self, value: Any) -> str:
        return repr(float(value))

    def byte_width(self, value: Any = None) -> int:
        return 8


class BoolType(SqlType):
    """SQL Server BIT; rendered as 0/1."""

    name = "BIT"

    def _coerce(self, value: Any) -> bool:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        raise TypeCheckError(f"cannot coerce {value!r} to BIT")

    def _render(self, value: Any) -> str:
        return "1" if value else "0"

    def byte_width(self, value: Any = None) -> int:
        return 1


class VarcharType(SqlType):
    """Variable-length string with an optional maximum length."""

    name = "VARCHAR"

    def __init__(self, max_length: Optional[int] = None):
        self.max_length = max_length

    def _coerce(self, value: Any) -> str:
        if isinstance(value, str):
            text = value
        elif isinstance(value, (int, float)):
            text = str(value)
        else:
            raise TypeCheckError(f"cannot coerce {value!r} to VARCHAR")
        if self.max_length is not None and len(text) > self.max_length:
            raise TypeCheckError(
                f"string of length {len(text)} exceeds VARCHAR({self.max_length})"
            )
        return text

    def _render(self, value: Any) -> str:
        escaped = str(value).replace("'", "''")
        return f"'{escaped}'"

    def byte_width(self, value: Any = None) -> int:
        if value is not None:
            return len(str(value)) + 2
        if self.max_length is not None:
            # assume half-full on average
            return max(2, self.max_length // 2)
        return 32

    def __repr__(self) -> str:
        if self.max_length is None:
            return "VARCHAR"
        return f"VARCHAR({self.max_length})"


class DateType(SqlType):
    """Calendar date."""

    name = "DATE"
    numeric = False

    def _coerce(self, value: Any) -> _dt.date:
        if isinstance(value, _dt.datetime):
            return value.date()
        if isinstance(value, _dt.date):
            return value
        if isinstance(value, str):
            try:
                return _dt.date.fromisoformat(value)
            except ValueError:
                pass
            parsed = _loose_date(value)
            if parsed is not None:
                return parsed
            raise TypeCheckError(f"cannot coerce {value!r} to DATE")
        raise TypeCheckError(f"cannot coerce {value!r} to DATE")

    def _render(self, value: Any) -> str:
        return f"'{value.isoformat()}'"

    def byte_width(self, value: Any = None) -> int:
        return 4


class DateTimeType(SqlType):
    """Timestamp with second resolution."""

    name = "DATETIME"
    numeric = False

    def _coerce(self, value: Any) -> _dt.datetime:
        if isinstance(value, _dt.datetime):
            return value
        if isinstance(value, _dt.date):
            return _dt.datetime(value.year, value.month, value.day)
        if isinstance(value, str):
            try:
                return _dt.datetime.fromisoformat(value)
            except ValueError:
                pass
            parsed = _loose_date(value)
            if parsed is not None:
                return _dt.datetime(parsed.year, parsed.month, parsed.day)
            raise TypeCheckError(f"cannot coerce {value!r} to DATETIME")
        raise TypeCheckError(f"cannot coerce {value!r} to DATETIME")

    def _render(self, value: Any) -> str:
        return f"'{value.isoformat(sep=' ')}'"

    def byte_width(self, value: Any = None) -> int:
        return 8


def _loose_date(text: str) -> Optional[_dt.date]:
    """SQL-Serverish loose dates: '1992-1-1' parses like '1992-01-01'."""
    parts = text.split("-")
    if len(parts) == 3:
        try:
            return _dt.date(int(parts[0]), int(parts[1]), int(parts[2]))
        except (ValueError, TypeError):
            return None
    return None


# Shared singleton instances; VARCHAR is parameterized via ``varchar()``.
INT = IntType()
BIGINT = BigIntType()
FLOAT = FloatType()
BOOL = BoolType()
DATE = DateType()
DATETIME = DateTimeType()


def varchar(max_length: Optional[int] = None) -> VarcharType:
    """Construct a VARCHAR type with an optional maximum length."""
    return VarcharType(max_length)


def infer_type(value: Any) -> SqlType:
    """Infer the narrowest SqlType for a Python value (NULL → VARCHAR)."""
    if value is None:
        return varchar()
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT if -(2**31) <= value < 2**31 else BIGINT
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, _dt.datetime):
        return DATETIME
    if isinstance(value, _dt.date):
        return DATE
    if isinstance(value, str):
        return varchar()
    raise TypeCheckError(f"cannot infer SQL type for {value!r}")


_NUMERIC_ORDER = ("BIT", "INT", "BIGINT", "FLOAT")


def common_super_type(a: SqlType, b: SqlType) -> SqlType:
    """The narrowest type both ``a`` and ``b`` coerce into.

    Used when typing comparison/arithmetic expressions and when merging
    branches of a partitioned view (Section 4.1.5).
    """
    if a == b:
        return a
    if a.name in _NUMERIC_ORDER and b.name in _NUMERIC_ORDER:
        rank = max(_NUMERIC_ORDER.index(a.name), _NUMERIC_ORDER.index(b.name))
        return {"BIT": BOOL, "INT": INT, "BIGINT": BIGINT, "FLOAT": FLOAT}[
            _NUMERIC_ORDER[rank]
        ]
    if {a.name, b.name} == {"DATE", "DATETIME"}:
        return DATETIME
    if isinstance(a, VarcharType) and isinstance(b, VarcharType):
        if a.max_length is None or b.max_length is None:
            return varchar()
        return varchar(max(a.max_length, b.max_length))
    if isinstance(a, VarcharType) or isinstance(b, VarcharType):
        # strings dominate: mixed-type unions degrade to text
        return varchar()
    raise TypeCheckError(f"no common super type for {a!r} and {b!r}")
