"""Columns and schemas.

A :class:`Schema` is an ordered list of :class:`Column` objects and is
shared by rowsets, tables, and every operator in the optimizer and
executor.  Columns are addressed positionally at run time; the binder
resolves (qualifier, name) pairs to ordinals at compile time.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Sequence

from repro.errors import BindError, CatalogError
from repro.types.datatypes import SqlType


class Column:
    """A named, typed column, optionally qualified by a table alias."""

    __slots__ = ("name", "type", "nullable", "table_alias")

    def __init__(
        self,
        name: str,
        type: SqlType,
        nullable: bool = True,
        table_alias: Optional[str] = None,
    ):
        self.name = name
        self.type = type
        self.nullable = nullable
        self.table_alias = table_alias

    def with_alias(self, alias: Optional[str]) -> "Column":
        """A copy of this column qualified by ``alias``."""
        return Column(self.name, self.type, self.nullable, alias)

    def renamed(self, name: str) -> "Column":
        """A copy of this column with a new name."""
        return Column(name, self.type, self.nullable, self.table_alias)

    @property
    def qualified_name(self) -> str:
        if self.table_alias:
            return f"{self.table_alias}.{self.name}"
        return self.name

    def matches(self, name: str, qualifier: Optional[str] = None) -> bool:
        """Does this column answer to ``qualifier.name``?"""
        if self.name.lower() != name.lower():
            return False
        if qualifier is None:
            return True
        return (
            self.table_alias is not None
            and self.table_alias.lower() == qualifier.lower()
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Column)
            and self.name == other.name
            and self.type == other.type
            and self.nullable == other.nullable
            and self.table_alias == other.table_alias
        )

    def __hash__(self) -> int:
        return hash((self.name, self.type, self.nullable, self.table_alias))

    def __repr__(self) -> str:
        null = "" if self.nullable else " NOT NULL"
        return f"Column({self.qualified_name}: {self.type!r}{null})"


class Schema:
    """An ordered collection of columns with name-resolution helpers."""

    __slots__ = ("columns",)

    def __init__(self, columns: Iterable[Column]):
        self.columns = tuple(columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __getitem__(self, index: int) -> Column:
        return self.columns[index]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def __hash__(self) -> int:
        return hash(self.columns)

    def __repr__(self) -> str:
        return f"Schema({', '.join(c.qualified_name for c in self.columns)})"

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def ordinal_of(self, name: str, qualifier: Optional[str] = None) -> int:
        """Resolve ``qualifier.name`` to a column ordinal.

        Raises :class:`BindError` if the name is missing or ambiguous.
        """
        matches = [
            i for i, c in enumerate(self.columns) if c.matches(name, qualifier)
        ]
        if not matches:
            target = f"{qualifier}.{name}" if qualifier else name
            raise BindError(f"column {target!r} not found")
        if len(matches) > 1:
            target = f"{qualifier}.{name}" if qualifier else name
            raise BindError(f"column {target!r} is ambiguous")
        return matches[0]

    def maybe_ordinal_of(
        self, name: str, qualifier: Optional[str] = None
    ) -> Optional[int]:
        """Like :meth:`ordinal_of` but returns None when not found
        (still raises on ambiguity)."""
        try:
            return self.ordinal_of(name, qualifier)
        except BindError as exc:
            if "ambiguous" in str(exc):
                raise
            return None

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a join: this schema's columns followed by other's."""
        return Schema(self.columns + other.columns)

    def project(self, ordinals: Sequence[int]) -> "Schema":
        """Schema restricted to the given ordinals, in order."""
        return Schema(self.columns[i] for i in ordinals)

    def with_alias(self, alias: Optional[str]) -> "Schema":
        """All columns re-qualified with ``alias``."""
        return Schema(c.with_alias(alias) for c in self.columns)

    def validate_row(self, row: Sequence[Any]) -> tuple[Any, ...]:
        """Coerce a raw row to this schema, enforcing arity and types."""
        if len(row) != len(self.columns):
            raise CatalogError(
                f"row arity {len(row)} does not match schema arity "
                f"{len(self.columns)}"
            )
        out = []
        for value, column in zip(row, self.columns):
            coerced = column.type.validate(value)
            if coerced is None and not column.nullable:
                raise CatalogError(f"column {column.name!r} is NOT NULL")
            out.append(coerced)
        return tuple(out)

    def row_width(self, row: Optional[Sequence[Any]] = None) -> int:
        """Estimated serialized row width in bytes."""
        if row is None:
            return sum(c.type.byte_width() for c in self.columns)
        return sum(
            c.type.byte_width(v) for c, v in zip(self.columns, row)
        )
