"""SQL type system: datatypes, typed values, rows, schemas, intervals.

This package is the foundation of the reproduction.  Rows are plain
Python tuples for speed; columns carry a :class:`~repro.types.datatypes.SqlType`
that governs coercion, comparison, literal rendering, and the byte-width
estimates used by the network cost model.  :mod:`repro.types.intervals`
implements the interval-set algebra behind the paper's constraint
property framework (Section 4.1.5).
"""

from repro.types.datatypes import (
    SqlType,
    IntType,
    BigIntType,
    FloatType,
    BoolType,
    VarcharType,
    DateType,
    DateTimeType,
    INT,
    BIGINT,
    FLOAT,
    BOOL,
    DATE,
    DATETIME,
    varchar,
    infer_type,
    common_super_type,
)
from repro.types.values import (
    NULL,
    sql_eq,
    sql_lt,
    sql_le,
    sql_gt,
    sql_ge,
    sql_ne,
    sql_and,
    sql_or,
    sql_not,
    sql_is_null,
    sql_add,
    sql_sub,
    sql_mul,
    sql_div,
    sql_like,
    date_add_days,
    make_date,
)
from repro.types.schema import Column, Schema
from repro.types.intervals import (
    Interval,
    IntervalSet,
    NEG_INF,
    POS_INF,
    SortKey,
    row_sort_key,
)
from repro.types.collation import Collation, DEFAULT_COLLATION

__all__ = [
    "SqlType",
    "IntType",
    "BigIntType",
    "FloatType",
    "BoolType",
    "VarcharType",
    "DateType",
    "DateTimeType",
    "INT",
    "BIGINT",
    "FLOAT",
    "BOOL",
    "DATE",
    "DATETIME",
    "varchar",
    "infer_type",
    "common_super_type",
    "NULL",
    "sql_eq",
    "sql_lt",
    "sql_le",
    "sql_gt",
    "sql_ge",
    "sql_ne",
    "sql_and",
    "sql_or",
    "sql_not",
    "sql_is_null",
    "sql_add",
    "sql_sub",
    "sql_mul",
    "sql_div",
    "sql_like",
    "date_add_days",
    "make_date",
    "Column",
    "Schema",
    "Interval",
    "IntervalSet",
    "NEG_INF",
    "POS_INF",
    "SortKey",
    "row_sort_key",
    "Collation",
    "DEFAULT_COLLATION",
]
