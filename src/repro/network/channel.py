"""Network channels with latency/bandwidth accounting and fault hooks.

A channel charges a fixed per-message latency plus a per-byte transfer
cost, in simulated milliseconds, and keeps running totals.  Remote
rowsets stream through a channel row by row (with batching, mirroring
tabular data stream packets); commands (SQL text) are charged on the
way out.

Channels are also the failure surface (docs/FAULT_MODEL.md): an
attached :class:`~repro.resilience.faults.FaultInjector` decides per
message whether the channel drops it (transient), hangs past
``timeout_ms`` (timeout), or is unreachable (server-down); a slow-link
factor stretches transfer time.  The channel does all charging, metric
increments and trace events itself so every failure is accounted for
exactly once, whichever layer triggered it.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Iterator, Optional, TYPE_CHECKING

from repro.errors import (
    RemoteTimeoutError,
    ServerUnavailableError,
    TransientNetworkError,
)
from repro.types.schema import Schema

if TYPE_CHECKING:  # pragma: no cover
    from repro.observability.metrics import MetricsRegistry
    from repro.observability.trace import QueryTrace
    from repro.resilience.faults import FaultInjector
    from repro.resilience.retry import QueryBudget

#: default per-row batch size for rowset streaming
DEFAULT_BATCH_ROWS = 128

#: per-thread charge accumulator for parallel workers (see
#: :func:`attach_worker_charges`)
_WORKER = threading.local()


def attach_worker_charges(accumulator: list) -> None:
    """Route every subsequent simulated-ms charge made on the calling
    thread into ``accumulator[0]`` (in addition to normal accounting).

    The exchange scheduler attaches a fresh one-element list per plan
    branch so each branch's exact simulated time is known even when
    several branches share a channel — the basis for the ``saved_ms``
    latency-hiding credit.  Charges are counters, not sleeps, so this
    is the only way to observe per-branch overlap."""
    _WORKER.charges = accumulator


def detach_worker_charges() -> None:
    """Stop routing the calling thread's charges (see
    :func:`attach_worker_charges`)."""
    _WORKER.charges = None


#: per-thread statement scope: the (trace, budget) pair of the statement
#: currently running on this thread.  Channels are shared by every
#: session of an engine, so statement attribution must be thread-local —
#: a plain instance attribute would leak one session's trace/budget into
#: a concurrent session's charges.
_SCOPE = threading.local()


def attach_statement_scope(
    trace: Optional["QueryTrace"], budget: Optional["QueryBudget"]
) -> tuple:
    """Bind ``(trace, budget)`` to the calling thread for the duration
    of one statement; returns the prior pair for
    :func:`restore_statement_scope`."""
    prior = current_statement_scope()
    _SCOPE.trace = trace
    _SCOPE.budget = budget
    return prior


def restore_statement_scope(prior: tuple) -> None:
    """Undo :func:`attach_statement_scope` (pass its return value)."""
    _SCOPE.trace, _SCOPE.budget = prior


def current_statement_scope() -> tuple:
    """The calling thread's ``(trace, budget)`` pair (``(None, None)``
    when no statement is in flight)."""
    return (
        getattr(_SCOPE, "trace", None),
        getattr(_SCOPE, "budget", None),
    )


class NetworkStats:
    """Running totals for one channel (or an aggregate of channels).

    Besides raw traffic, the stats carry resilience outcomes — retry
    attempts, backoff time, breaker trips and breaker fast-fails — so a
    per-statement snapshot/delta (``QueryResult.network``) attributes
    them to the statement that paid for them, not just the aggregate
    ``network.*`` counters.
    """

    __slots__ = (
        "bytes_sent",
        "bytes_received",
        "round_trips",
        "simulated_ms",
        "retries",
        "backoff_ms",
        "breaker_trips",
        "breaker_fast_fails",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0
        self.round_trips = 0
        self.simulated_ms = 0.0
        self.retries = 0
        self.backoff_ms = 0.0
        self.breaker_trips = 0
        self.breaker_fast_fails = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_sent + self.bytes_received

    def merge(self, other: "NetworkStats") -> None:
        self.bytes_sent += other.bytes_sent
        self.bytes_received += other.bytes_received
        self.round_trips += other.round_trips
        self.simulated_ms += other.simulated_ms
        self.retries += other.retries
        self.backoff_ms += other.backoff_ms
        self.breaker_trips += other.breaker_trips
        self.breaker_fast_fails += other.breaker_fast_fails

    def snapshot(self) -> dict[str, float]:
        return {
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "round_trips": self.round_trips,
            "simulated_ms": self.simulated_ms,
            "retries": self.retries,
            "backoff_ms": self.backoff_ms,
            "breaker_trips": self.breaker_trips,
            "breaker_fast_fails": self.breaker_fast_fails,
        }

    def delta(self, before: dict[str, float]) -> dict[str, float]:
        """Difference against an earlier :meth:`snapshot` — the traffic
        attributable to whatever ran between the two points."""
        current = self.snapshot()
        return {
            key: current[key] - before.get(key, 0)
            for key in current
        }

    def __repr__(self) -> str:
        return (
            f"NetworkStats(sent={self.bytes_sent}B, recv={self.bytes_received}B, "
            f"rt={self.round_trips}, {self.simulated_ms:.2f}ms)"
        )


class NetworkChannel:
    """A simulated link between the local engine and one remote source.

    ``latency_ms`` is charged once per round trip; ``mb_per_second``
    converts bytes to simulated transfer time.  ``timeout_ms``, when
    set, bounds one message (command or streamed batch): a message whose
    simulated cost would exceed it charges exactly ``timeout_ms`` and
    raises :class:`~repro.errors.RemoteTimeoutError`.

    A channel with zero latency and infinite bandwidth (see
    :func:`local_channel`) models in-process access to the local storage
    engine — the paper notes local access goes through the same OLE DB
    path.  Local channels skip fault/timeout processing entirely.
    """

    def __init__(
        self,
        name: str = "remote",
        latency_ms: float = 1.0,
        mb_per_second: float = 100.0,
        timeout_ms: Optional[float] = None,
    ):
        self.name = name
        self.latency_ms = float(latency_ms)
        self.mb_per_second = float(mb_per_second)
        self.timeout_ms = timeout_ms
        self.stats = NetworkStats()
        #: marks the in-process channel (no faults, no charging)
        self.is_local = False
        #: optional failure source (docs/FAULT_MODEL.md)
        self.fault_injector: Optional["FaultInjector"] = None
        #: owning engine's registry; fault/retry counters land here
        self.metrics: Optional["MetricsRegistry"] = None
        #: pinned statement trace — overrides the thread-local scope
        #: when set directly (legacy single-session hook; the engine
        #: now attaches per-statement scope thread-locally, see
        #: :func:`attach_statement_scope`)
        self.trace: Optional["QueryTrace"] = None
        #: pinned timeout budget — same override semantics as ``trace``
        self.budget: Optional["QueryBudget"] = None
        #: guards ``stats`` mutations — parallel workers may stream
        #: through the same channel concurrently
        self._lock = threading.RLock()

    # -- cost primitives ------------------------------------------------------
    def transfer_ms(self, nbytes: int) -> float:
        """Simulated milliseconds to move ``nbytes`` (excl. latency)."""
        if self.mb_per_second <= 0:
            return 0.0
        return nbytes / (self.mb_per_second * 1024 * 1024) * 1000.0

    @property
    def cost_per_byte_ms(self) -> float:
        """Per-byte cost the optimizer uses (ms/byte)."""
        return self.transfer_ms(1)

    @property
    def slow_factor(self) -> float:
        """Slow-link multiplier from the attached injector (1.0 = none)."""
        injector = self.fault_injector
        return injector.slow_factor if injector is not None else 1.0

    # -- statement attribution ------------------------------------------------
    @property
    def active_trace(self) -> Optional["QueryTrace"]:
        """The trace charges should land on: a directly-pinned
        ``channel.trace`` wins, else the calling thread's statement
        scope."""
        if self.trace is not None:
            return self.trace
        return getattr(_SCOPE, "trace", None)

    @property
    def active_budget(self) -> Optional["QueryBudget"]:
        """The budget charges draw down (same resolution as
        :attr:`active_trace`)."""
        if self.budget is not None:
            return self.budget
        return getattr(_SCOPE, "budget", None)

    # -- charging ---------------------------------------------------------------
    def _charge_ms(self, ms: float) -> None:
        """Add simulated time to the running totals and, when a
        statement budget is attached, draw it down (which may raise)."""
        with self._lock:
            self.stats.simulated_ms += ms
        charges = getattr(_WORKER, "charges", None)
        if charges is not None:
            charges[0] += ms
        trace = self.active_trace
        if trace is not None:
            # attribute the charge to every open span so each level of
            # the span tree carries its inclusive network time
            trace.add_network_ms(ms)
        budget = self.active_budget
        if budget is not None:
            budget.charge(ms)

    # -- fault surface ----------------------------------------------------------
    def check_available(self) -> None:
        """Raise :class:`ServerUnavailableError` when the peer is down.

        Metadata operations (schema rowsets) use this as their only
        fault check: metadata itself stays free of charge, but an
        unreachable server must still refuse it.
        """
        injector = self.fault_injector
        if injector is not None and injector.is_down:
            self._count("network.faults_injected")
            self._count("network.faults_down")
            self._trace_event("fault_injected", kind="down")
            raise ServerUnavailableError(
                f"server behind channel {self.name!r} is unreachable"
            )

    def _consult_injector(self) -> None:
        """One fault decision for one message; raises on a fault."""
        injector = self.fault_injector
        if injector is None or self.is_local:
            return
        decision = injector.decide()
        if decision == "ok":
            return
        self._count("network.faults_injected")
        self._count(f"network.faults_{decision}")
        self._trace_event("fault_injected", kind=decision)
        if decision == "down":
            raise ServerUnavailableError(
                f"server behind channel {self.name!r} is unreachable"
            )
        if decision == "timeout":
            # the remote side hung: the consumer waits out the full
            # per-message timeout (or one latency, if none configured)
            waited = self.timeout_ms if self.timeout_ms is not None else self.latency_ms
            self._charge_ms(waited)
            self._count("network.timeouts")
            raise RemoteTimeoutError(
                f"message on channel {self.name!r} timed out "
                f"after {waited:g}ms"
            )
        # transient: the message is lost after one latency of waiting
        self._charge_ms(self.latency_ms)
        raise TransientNetworkError(
            f"transient fault on channel {self.name!r}"
        )

    def _charge_message(self, cost_ms: float) -> None:
        """Charge one message's simulated cost, enforcing the
        per-message timeout."""
        if self.timeout_ms is not None and cost_ms > self.timeout_ms:
            self._charge_ms(self.timeout_ms)
            self._count("network.timeouts")
            self._trace_event(
                "message_timeout", cost_ms=round(cost_ms, 3),
                timeout_ms=self.timeout_ms,
            )
            raise RemoteTimeoutError(
                f"message on channel {self.name!r} needed {cost_ms:.2f}ms "
                f"but timeout_ms={self.timeout_ms:g}"
            )
        self._charge_ms(cost_ms)

    # -- retry accounting (called by resilience.retry) --------------------------
    def charge_backoff(
        self, backoff_ms: float, attempt: int, description: str,
        error: Exception,
    ) -> None:
        """Account one retry: simulated backoff time + counters."""
        self._charge_ms(backoff_ms)
        with self._lock:
            self.stats.retries += 1
            self.stats.backoff_ms += backoff_ms
        self._count("network.retries")
        self._count("network.backoff_ms", backoff_ms)
        self._trace_event(
            "retry",
            attempt=attempt,
            backoff_ms=round(backoff_ms, 3),
            operation=description,
            error=type(error).__name__,
        )

    def note_retries_exhausted(self, description: str, attempts: int) -> None:
        self._count("network.retry_giveups")
        self._trace_event(
            "retries_exhausted", operation=description, attempts=attempts
        )

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.increment(name, amount)

    def _trace_event(self, name: str, **attrs: Any) -> None:
        trace = self.active_trace
        if trace is not None:
            trace.event(name, channel=self.name, **attrs)

    # -- accounting -------------------------------------------------------------
    def send_command(self, text: str) -> None:
        """Charge an outgoing command (SQL text) and one round trip."""
        nbytes = len(text.encode("utf-8"))
        if self.is_local:
            with self._lock:
                self.stats.bytes_sent += nbytes
                self.stats.round_trips += 1
            return
        self._consult_injector()
        with self._lock:
            self.stats.bytes_sent += nbytes
            self.stats.round_trips += 1
        self._charge_message(
            self.latency_ms + self.transfer_ms(nbytes) * self.slow_factor
        )

    def stream_rows(
        self,
        rows: Iterable[tuple[Any, ...]],
        schema: Optional[Schema] = None,
        batch_rows: int = DEFAULT_BATCH_ROWS,
    ) -> Iterator[tuple[Any, ...]]:
        """Stream rows through the channel, charging per batch.

        Yields rows unchanged; the accounting happens as a side effect,
        with one round trip per ``batch_rows`` rows plus the per-row
        byte volume.  Each batch is one message for fault purposes: the
        injector is consulted at every batch boundary, and a batch whose
        accumulated cost exceeds ``timeout_ms`` raises mid-stream.
        """
        in_batch = 0
        batch_cost = 0.0
        for row in rows:
            if in_batch == 0:
                self._consult_injector()
                with self._lock:
                    self.stats.round_trips += 1
                batch_cost = self.latency_ms
                self._charge_ms(self.latency_ms)
            nbytes = self._row_bytes(row, schema)
            with self._lock:
                self.stats.bytes_received += nbytes
            row_cost = self.transfer_ms(nbytes) * self.slow_factor
            batch_cost += row_cost
            if (
                self.timeout_ms is not None
                and not self.is_local
                and batch_cost > self.timeout_ms
            ):
                self._count("network.timeouts")
                self._trace_event(
                    "message_timeout",
                    cost_ms=round(batch_cost, 3),
                    timeout_ms=self.timeout_ms,
                )
                raise RemoteTimeoutError(
                    f"streamed batch on channel {self.name!r} exceeded "
                    f"timeout_ms={self.timeout_ms:g}"
                )
            self._charge_ms(row_cost)
            in_batch = (in_batch + 1) % batch_rows
            yield row

    @staticmethod
    def _row_bytes(row: tuple[Any, ...], schema: Optional[Schema]) -> int:
        if schema is not None:
            return schema.row_width(row)
        total = 0
        for value in row:
            if value is None:
                total += 1
            elif isinstance(value, str):
                total += len(value) + 2
            elif isinstance(value, bool):
                total += 1
            elif isinstance(value, float):
                total += 8
            elif isinstance(value, int):
                total += 4 if -(2**31) <= value < 2**31 else 8
            else:
                total += 8
        return total

    def __repr__(self) -> str:
        return (
            f"NetworkChannel({self.name}, {self.latency_ms}ms, "
            f"{self.mb_per_second}MB/s)"
        )


def local_channel() -> NetworkChannel:
    """A fresh in-process "channel": free, instantaneous, fault-proof.

    Every :class:`~repro.oledb.datasource.DataSource` without an
    explicit channel gets its *own* local channel, so local traffic
    counters never aggregate across unrelated instances (the old
    module-level singleton silently did).
    """
    channel = NetworkChannel("local", latency_ms=0.0, mb_per_second=float("inf"))
    channel.is_local = True
    return channel


#: Legacy shared local channel.  Kept only as a recognizable default for
#: old call sites; new code should test ``channel.is_local`` and build
#: instances via :func:`local_channel`.
LOCAL_CHANNEL = local_channel()
