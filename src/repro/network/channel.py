"""Network channels with latency/bandwidth accounting.

A channel charges a fixed per-message latency plus a per-byte transfer
cost, in simulated milliseconds, and keeps running totals.  Remote
rowsets stream through a channel row by row (with batching, mirroring
tabular data stream packets); commands (SQL text) are charged on the
way out.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

from repro.types.schema import Schema

#: default per-row batch size for rowset streaming
DEFAULT_BATCH_ROWS = 128


class NetworkStats:
    """Running totals for one channel (or an aggregate of channels)."""

    __slots__ = ("bytes_sent", "bytes_received", "round_trips", "simulated_ms")

    def __init__(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0
        self.round_trips = 0
        self.simulated_ms = 0.0

    def reset(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0
        self.round_trips = 0
        self.simulated_ms = 0.0

    @property
    def total_bytes(self) -> int:
        return self.bytes_sent + self.bytes_received

    def merge(self, other: "NetworkStats") -> None:
        self.bytes_sent += other.bytes_sent
        self.bytes_received += other.bytes_received
        self.round_trips += other.round_trips
        self.simulated_ms += other.simulated_ms

    def snapshot(self) -> dict[str, float]:
        return {
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "round_trips": self.round_trips,
            "simulated_ms": self.simulated_ms,
        }

    def delta(self, before: dict[str, float]) -> dict[str, float]:
        """Difference against an earlier :meth:`snapshot` — the traffic
        attributable to whatever ran between the two points."""
        return {
            "bytes_sent": self.bytes_sent - before["bytes_sent"],
            "bytes_received": self.bytes_received - before["bytes_received"],
            "round_trips": self.round_trips - before["round_trips"],
            "simulated_ms": self.simulated_ms - before["simulated_ms"],
        }

    def __repr__(self) -> str:
        return (
            f"NetworkStats(sent={self.bytes_sent}B, recv={self.bytes_received}B, "
            f"rt={self.round_trips}, {self.simulated_ms:.2f}ms)"
        )


class NetworkChannel:
    """A simulated link between the local engine and one remote source.

    ``latency_ms`` is charged once per round trip; ``mb_per_second``
    converts bytes to simulated transfer time.  A channel with zero
    latency and infinite bandwidth (``LOCAL_CHANNEL``) models in-process
    access to the local storage engine — the paper notes local access
    goes through the same OLE DB path.
    """

    def __init__(
        self,
        name: str = "remote",
        latency_ms: float = 1.0,
        mb_per_second: float = 100.0,
    ):
        self.name = name
        self.latency_ms = float(latency_ms)
        self.mb_per_second = float(mb_per_second)
        self.stats = NetworkStats()

    # -- cost primitives ------------------------------------------------------
    def transfer_ms(self, nbytes: int) -> float:
        """Simulated milliseconds to move ``nbytes`` (excl. latency)."""
        if self.mb_per_second <= 0:
            return 0.0
        return nbytes / (self.mb_per_second * 1024 * 1024) * 1000.0

    @property
    def cost_per_byte_ms(self) -> float:
        """Per-byte cost the optimizer uses (ms/byte)."""
        return self.transfer_ms(1)

    # -- accounting -------------------------------------------------------------
    def send_command(self, text: str) -> None:
        """Charge an outgoing command (SQL text) and one round trip."""
        nbytes = len(text.encode("utf-8"))
        self.stats.bytes_sent += nbytes
        self.stats.round_trips += 1
        self.stats.simulated_ms += self.latency_ms + self.transfer_ms(nbytes)

    def stream_rows(
        self,
        rows: Iterable[tuple[Any, ...]],
        schema: Optional[Schema] = None,
        batch_rows: int = DEFAULT_BATCH_ROWS,
    ) -> Iterator[tuple[Any, ...]]:
        """Stream rows through the channel, charging per batch.

        Yields rows unchanged; the accounting happens as a side effect,
        with one round trip per ``batch_rows`` rows plus the per-row
        byte volume.
        """
        in_batch = 0
        for row in rows:
            if in_batch == 0:
                self.stats.round_trips += 1
                self.stats.simulated_ms += self.latency_ms
            nbytes = self._row_bytes(row, schema)
            self.stats.bytes_received += nbytes
            self.stats.simulated_ms += self.transfer_ms(nbytes)
            in_batch = (in_batch + 1) % batch_rows
            yield row

    @staticmethod
    def _row_bytes(row: tuple[Any, ...], schema: Optional[Schema]) -> int:
        if schema is not None:
            return schema.row_width(row)
        total = 0
        for value in row:
            if value is None:
                total += 1
            elif isinstance(value, str):
                total += len(value) + 2
            elif isinstance(value, bool):
                total += 1
            elif isinstance(value, float):
                total += 8
            elif isinstance(value, int):
                total += 4 if -(2**31) <= value < 2**31 else 8
            else:
                total += 8
        return total

    def __repr__(self) -> str:
        return (
            f"NetworkChannel({self.name}, {self.latency_ms}ms, "
            f"{self.mb_per_second}MB/s)"
        )


#: The in-process "channel": free and instantaneous.
LOCAL_CHANNEL = NetworkChannel("local", latency_ms=0.0, mb_per_second=0.0)
# a 0 MB/s bandwidth means "do not charge transfer time" for the local path
LOCAL_CHANNEL.mb_per_second = float("inf")
