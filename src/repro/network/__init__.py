"""Simulated network substrate.

The paper ran against real remote servers; we substitute an in-process
channel that *accounts* for every byte and round trip crossing a
server boundary.  Experiments (notably E5/Figure 4 and E10) validate
plan choices by the bytes the channel records, which is exactly the
quantity the paper's remote cost model minimizes ("It aims at finding
plans with minimal network traffic", Section 4.1.3).

Concurrency contract: one :class:`NetworkChannel` per linked server is
shared by every thread of a statement — parallel exchange workers
included — so all counter mutation in ``NetworkStats`` happens under
the channel's internal lock.  Simulated time charges additionally
accumulate into a per-thread worker account
(:func:`~repro.network.channel.attach_worker_charges`) so the exchange
scheduler can compute how much per-branch network time overlapped; the
channel itself never sleeps, blocks, or spawns threads.
"""

from repro.network.channel import (
    LOCAL_CHANNEL,
    NetworkChannel,
    NetworkStats,
    local_channel,
)

__all__ = ["NetworkChannel", "NetworkStats", "LOCAL_CHANNEL", "local_channel"]
