"""Scalar expressions over column identities.

A *column identity* (:class:`ColumnId`, an integer) names one logical
column for the lifetime of a compilation: base-table columns get ids at
bind time; projections and aggregates mint new ids for computed values.
Operators carry ordered lists of the ids they output, so an expression
never depends on physical row layout — exploration rules can commute
joins and push predicates without rewriting expressions.

Evaluation compiles against a *layout* (id → row ordinal) produced by
the physical plan, yielding a plain Python closure per expression.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional, Sequence

from repro.errors import ExecutionError, OptimizerError
from repro.types import values as V
from repro.types.datatypes import (
    BOOL,
    DATE,
    DATETIME,
    FLOAT,
    INT,
    SqlType,
    common_super_type,
    infer_type,
    varchar,
)

#: a column identity
ColumnId = int


class ColumnDef:
    """Metadata for one column identity."""

    __slots__ = ("cid", "name", "type", "nullable", "source_alias")

    def __init__(
        self,
        cid: ColumnId,
        name: str,
        type: SqlType,
        nullable: bool = True,
        source_alias: Optional[str] = None,
    ):
        self.cid = cid
        self.name = name
        self.type = type
        self.nullable = nullable
        #: the table alias this column came from (display / decoding)
        self.source_alias = source_alias

    def __repr__(self) -> str:
        alias = f"{self.source_alias}." if self.source_alias else ""
        return f"ColumnDef(#{self.cid} {alias}{self.name}: {self.type!r})"


#: maps ColumnId -> row ordinal for a given physical layout
Layout = Dict[ColumnId, int]
#: a compiled expression: (row, params) -> value
Compiled = Callable[[Sequence[Any], Dict[str, Any]], Any]


class ScalarExpr:
    """Base scalar expression."""

    #: result type; set by constructors
    type: SqlType = varchar()

    def references(self) -> frozenset[ColumnId]:
        """All column ids this expression reads."""
        raise NotImplementedError

    def parameters(self) -> frozenset[str]:
        """All parameter names this expression reads."""
        return frozenset().union(
            *(child.parameters() for child in self.children())
        ) if self.children() else frozenset()

    def children(self) -> tuple["ScalarExpr", ...]:
        return ()

    def compile(self, layout: Layout) -> Compiled:
        """Compile to a closure over (row, params)."""
        raise NotImplementedError

    def substitute(
        self, mapping: Dict[ColumnId, "ScalarExpr"]
    ) -> "ScalarExpr":
        """Replace column refs per ``mapping`` (predicate pull/push)."""
        return self

    def remap(self, id_map: Dict[ColumnId, ColumnId]) -> "ScalarExpr":
        """Rewrite column ids (e.g. across a union branch)."""
        return self.substitute(
            {old: ColumnRef(new, f"#{new}") for old, new in id_map.items()}
        )

    def is_constant(self) -> bool:
        """True when the expression reads no columns (params allowed)."""
        return not self.references()

    def sql_key(self) -> tuple:
        """Structural identity for memo deduplication."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ScalarExpr) and self.sql_key() == other.sql_key()
        )

    def __hash__(self) -> int:
        return hash(self.sql_key())


class Literal(ScalarExpr):
    """A constant value."""

    def __init__(self, value: Any, type: Optional[SqlType] = None):
        self.value = value
        self.type = type if type is not None else infer_type(value)

    def references(self) -> frozenset[ColumnId]:
        return frozenset()

    def compile(self, layout: Layout) -> Compiled:
        value = self.value
        return lambda row, params: value

    def sql_key(self) -> tuple:
        return ("lit", repr(self.value))

    def __repr__(self) -> str:
        return f"Lit({self.value!r})"


class ColumnRef(ScalarExpr):
    """A reference to a column identity."""

    def __init__(
        self,
        cid: ColumnId,
        display: str = "",
        type: Optional[SqlType] = None,
        nullable: bool = True,
    ):
        self.cid = cid
        self.display = display or f"#{cid}"
        self.type = type if type is not None else varchar()
        self.nullable = nullable

    def references(self) -> frozenset[ColumnId]:
        return frozenset({self.cid})

    def compile(self, layout: Layout) -> Compiled:
        if self.cid not in layout:
            raise ExecutionError(
                f"column {self.display} (#{self.cid}) missing from layout"
            )
        ordinal = layout[self.cid]
        return lambda row, params: row[ordinal]

    def substitute(self, mapping: Dict[ColumnId, ScalarExpr]) -> ScalarExpr:
        return mapping.get(self.cid, self)

    def sql_key(self) -> tuple:
        return ("col", self.cid)

    def __repr__(self) -> str:
        return f"Col({self.display}#{self.cid})"


class Parameter(ScalarExpr):
    """A named query parameter (``@name``).

    Parameters are the fuel of startup filters (Section 4.1.5: "most
    modern SQL applications make use of variables in their queries")
    and of the remote parameterization rule (Section 4.1.2).
    """

    def __init__(self, name: str, type: Optional[SqlType] = None):
        self.name = name.lstrip("@")
        self.type = type if type is not None else varchar()

    def references(self) -> frozenset[ColumnId]:
        return frozenset()

    def parameters(self) -> frozenset[str]:
        return frozenset({self.name})

    def compile(self, layout: Layout) -> Compiled:
        name = self.name
        def evaluate(row: Sequence[Any], params: Dict[str, Any]) -> Any:
            if name not in params:
                raise ExecutionError(f"parameter @{name} not supplied")
            return params[name]
        return evaluate

    def sql_key(self) -> tuple:
        return ("param", self.name)

    def __repr__(self) -> str:
        return f"@{self.name}"


_BINARY_FUNCS: Dict[str, Callable[[Any, Any], Any]] = {
    "=": V.sql_eq,
    "<>": V.sql_ne,
    "!=": V.sql_ne,
    "<": V.sql_lt,
    "<=": V.sql_le,
    ">": V.sql_gt,
    ">=": V.sql_ge,
    "+": V.sql_add,
    "-": V.sql_sub,
    "*": V.sql_mul,
    "/": V.sql_div,
    "AND": V.sql_and,
    "OR": V.sql_or,
}

COMPARISON_OPS = frozenset({"=", "<>", "!=", "<", "<=", ">", ">="})
_FLIPPED = {"=": "=", "<>": "<>", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


class BinaryOp(ScalarExpr):
    """Comparison, arithmetic, or boolean connective."""

    def __init__(self, op: str, left: ScalarExpr, right: ScalarExpr):
        if op not in _BINARY_FUNCS:
            raise OptimizerError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right
        if op in COMPARISON_OPS or op in ("AND", "OR"):
            self.type = BOOL
        else:
            self.type = _arith_type(left.type, right.type)

    def children(self) -> tuple[ScalarExpr, ...]:
        return (self.left, self.right)

    def references(self) -> frozenset[ColumnId]:
        return self.left.references() | self.right.references()

    def compile(self, layout: Layout) -> Compiled:
        fn = _BINARY_FUNCS[self.op]
        left = self.left.compile(layout)
        right = self.right.compile(layout)
        return lambda row, params: fn(left(row, params), right(row, params))

    def substitute(self, mapping: Dict[ColumnId, ScalarExpr]) -> ScalarExpr:
        return BinaryOp(
            self.op, self.left.substitute(mapping), self.right.substitute(mapping)
        )

    def flipped(self) -> "BinaryOp":
        """``a < b`` as ``b > a`` (normalizing join predicates)."""
        return BinaryOp(_FLIPPED.get(self.op, self.op), self.right, self.left)

    def sql_key(self) -> tuple:
        return ("bin", self.op, self.left.sql_key(), self.right.sql_key())

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


def _arith_type(a: SqlType, b: SqlType) -> SqlType:
    try:
        return common_super_type(a, b)
    except Exception:
        return FLOAT


class NotOp(ScalarExpr):
    type = BOOL

    def __init__(self, operand: ScalarExpr):
        self.operand = operand

    def children(self) -> tuple[ScalarExpr, ...]:
        return (self.operand,)

    def references(self) -> frozenset[ColumnId]:
        return self.operand.references()

    def compile(self, layout: Layout) -> Compiled:
        inner = self.operand.compile(layout)
        return lambda row, params: V.sql_not(inner(row, params))

    def substitute(self, mapping: Dict[ColumnId, ScalarExpr]) -> ScalarExpr:
        return NotOp(self.operand.substitute(mapping))

    def sql_key(self) -> tuple:
        return ("not", self.operand.sql_key())

    def __repr__(self) -> str:
        return f"NOT {self.operand!r}"


class IsNullOp(ScalarExpr):
    type = BOOL

    def __init__(self, operand: ScalarExpr, negated: bool = False):
        self.operand = operand
        self.negated = negated

    def children(self) -> tuple[ScalarExpr, ...]:
        return (self.operand,)

    def references(self) -> frozenset[ColumnId]:
        return self.operand.references()

    def compile(self, layout: Layout) -> Compiled:
        inner = self.operand.compile(layout)
        if self.negated:
            return lambda row, params: inner(row, params) is not None
        return lambda row, params: inner(row, params) is None

    def substitute(self, mapping: Dict[ColumnId, ScalarExpr]) -> ScalarExpr:
        return IsNullOp(self.operand.substitute(mapping), self.negated)

    def sql_key(self) -> tuple:
        return ("isnull", self.negated, self.operand.sql_key())

    def __repr__(self) -> str:
        middle = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.operand!r} {middle}"


class InListOp(ScalarExpr):
    """``expr IN (v1, v2, ...)`` over literal/parameter values."""

    type = BOOL

    def __init__(
        self, operand: ScalarExpr, items: Sequence[ScalarExpr], negated: bool = False
    ):
        self.operand = operand
        self.items = tuple(items)
        self.negated = negated

    def children(self) -> tuple[ScalarExpr, ...]:
        return (self.operand,) + self.items

    def references(self) -> frozenset[ColumnId]:
        refs = self.operand.references()
        for item in self.items:
            refs |= item.references()
        return refs

    def compile(self, layout: Layout) -> Compiled:
        operand = self.operand.compile(layout)
        items = [item.compile(layout) for item in self.items]
        negated = self.negated

        def final(row: Sequence[Any], params: Dict[str, Any]) -> Any:
            value = operand(row, params)
            if value is None:
                return None
            saw_null = False
            matched = False
            for item in items:
                verdict = V.sql_eq(value, item(row, params))
                if verdict is True:
                    matched = True
                    break
                if verdict is None:
                    saw_null = True
            if matched:
                return False if negated else True
            if saw_null:
                return None
            return True if negated else False

        return final

    def substitute(self, mapping: Dict[ColumnId, ScalarExpr]) -> ScalarExpr:
        return InListOp(
            self.operand.substitute(mapping),
            [item.substitute(mapping) for item in self.items],
            self.negated,
        )

    def sql_key(self) -> tuple:
        return (
            "in",
            self.negated,
            self.operand.sql_key(),
            tuple(item.sql_key() for item in self.items),
        )

    def __repr__(self) -> str:
        middle = "NOT IN" if self.negated else "IN"
        return f"{self.operand!r} {middle} ({', '.join(map(repr, self.items))})"


class LikeOp(ScalarExpr):
    type = BOOL

    def __init__(self, operand: ScalarExpr, pattern: ScalarExpr, negated: bool = False):
        self.operand = operand
        self.pattern = pattern
        self.negated = negated

    def children(self) -> tuple[ScalarExpr, ...]:
        return (self.operand, self.pattern)

    def references(self) -> frozenset[ColumnId]:
        return self.operand.references() | self.pattern.references()

    def compile(self, layout: Layout) -> Compiled:
        operand = self.operand.compile(layout)
        pattern = self.pattern.compile(layout)
        negated = self.negated

        def evaluate(row: Sequence[Any], params: Dict[str, Any]) -> Any:
            verdict = V.sql_like(operand(row, params), pattern(row, params))
            if verdict is None:
                return None
            return (not verdict) if negated else verdict

        return evaluate

    def substitute(self, mapping: Dict[ColumnId, ScalarExpr]) -> ScalarExpr:
        return LikeOp(
            self.operand.substitute(mapping),
            self.pattern.substitute(mapping),
            self.negated,
        )

    def sql_key(self) -> tuple:
        return ("like", self.negated, self.operand.sql_key(), self.pattern.sql_key())

    def __repr__(self) -> str:
        middle = "NOT LIKE" if self.negated else "LIKE"
        return f"{self.operand!r} {middle} {self.pattern!r}"


def _fn_date(base: Any, days: Any) -> Any:
    return V.date_add_days(base, days)


def _fn_today() -> Any:
    import datetime as _dt

    return _dt.date(2004, 6, 15)  # deterministic "today" for reproducibility


def _fn_year(value: Any) -> Any:
    return None if value is None else value.year


def _fn_upper(value: Any) -> Any:
    return None if value is None else str(value).upper()


def _fn_lower(value: Any) -> Any:
    return None if value is None else str(value).lower()


def _fn_len(value: Any) -> Any:
    return None if value is None else len(str(value))


def _fn_abs(value: Any) -> Any:
    return None if value is None else abs(value)


_SCALAR_FUNCS: Dict[str, tuple[Callable[..., Any], Optional[SqlType]]] = {
    "date": (_fn_date, DATE),
    "today": (_fn_today, DATE),
    "year": (_fn_year, INT),
    "upper": (_fn_upper, None),
    "lower": (_fn_lower, None),
    "len": (_fn_len, INT),
    "abs": (_fn_abs, None),
}


def scalar_function_names() -> frozenset[str]:
    return frozenset(_SCALAR_FUNCS)


def register_scalar_function(
    name: str, fn: Callable[..., Any], result_type: Optional[SqlType] = None
) -> None:
    """Extension point: add a scalar function usable from SQL."""
    _SCALAR_FUNCS[name.lower()] = (fn, result_type)


class FuncCall(ScalarExpr):
    """A scalar function call (``date()``, ``today()``, ``upper()``...)."""

    def __init__(self, name: str, args: Sequence[ScalarExpr]):
        key = name.lower()
        if key not in _SCALAR_FUNCS:
            raise OptimizerError(f"unknown function {name!r}")
        self.name = key
        self.args = tuple(args)
        fn, result_type = _SCALAR_FUNCS[key]
        self.fn = fn
        if result_type is not None:
            self.type = result_type
        elif self.args:
            self.type = self.args[0].type
        else:
            self.type = varchar()

    def children(self) -> tuple[ScalarExpr, ...]:
        return self.args

    def references(self) -> frozenset[ColumnId]:
        refs: frozenset[ColumnId] = frozenset()
        for arg in self.args:
            refs |= arg.references()
        return refs

    def compile(self, layout: Layout) -> Compiled:
        fn = self.fn
        compiled_args = [arg.compile(layout) for arg in self.args]
        return lambda row, params: fn(*(a(row, params) for a in compiled_args))

    def substitute(self, mapping: Dict[ColumnId, ScalarExpr]) -> ScalarExpr:
        return FuncCall(self.name, [arg.substitute(mapping) for arg in self.args])

    def sql_key(self) -> tuple:
        return ("fn", self.name, tuple(arg.sql_key() for arg in self.args))

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(map(repr, self.args))})"


AGGREGATE_NAMES = frozenset({"count", "sum", "avg", "min", "max"})


class AggregateCall:
    """One aggregate computation inside a logical Aggregate operator.

    Not a ScalarExpr: aggregates only appear in Aggregate definitions,
    and downstream expressions reference their *output column id*.
    """

    __slots__ = ("func", "argument", "distinct", "output_cid", "output_name")

    def __init__(
        self,
        func: str,
        argument: Optional[ScalarExpr],
        output_cid: ColumnId,
        output_name: str = "",
        distinct: bool = False,
    ):
        key = func.lower()
        if key not in AGGREGATE_NAMES:
            raise OptimizerError(f"unknown aggregate {func!r}")
        self.func = key
        self.argument = argument
        self.distinct = distinct
        self.output_cid = output_cid
        self.output_name = output_name or f"{key}_{output_cid}"

    @property
    def type(self) -> SqlType:
        if self.func == "count":
            return INT
        if self.func == "avg":
            return FLOAT
        if self.argument is not None:
            return self.argument.type
        return FLOAT

    def references(self) -> frozenset[ColumnId]:
        if self.argument is None:
            return frozenset()
        return self.argument.references()

    def sql_key(self) -> tuple:
        return (
            "agg",
            self.func,
            self.distinct,
            self.argument.sql_key() if self.argument is not None else None,
            self.output_cid,
        )

    def __repr__(self) -> str:
        inner = "*" if self.argument is None else repr(self.argument)
        distinct = "DISTINCT " if self.distinct else ""
        return f"{self.func}({distinct}{inner})→#{self.output_cid}"


class ContainsPredicate(ScalarExpr):
    """A CONTAINS full-text predicate over one text column.

    Unlike ordinary predicates it cannot be evaluated row-at-a-time
    against the column value with fidelity (ranking, stemming, phrase
    positions live in the external index).  The optimizer's full-text
    implementation rule rewrites Select(Contains) over a Get into a
    join with the search service's (KEY, RANK) rowset (Figure 2); as a
    fallback the compiled form re-tokenizes the column text, so plans
    that keep the predicate still return correct (unranked) answers.
    """

    type = BOOL

    def __init__(self, column: ColumnRef, query_text: str):
        self.column = column
        self.query_text = query_text

    def children(self) -> tuple[ScalarExpr, ...]:
        return (self.column,)

    def references(self) -> frozenset[ColumnId]:
        return self.column.references()

    def compile(self, layout: Layout) -> Compiled:
        from repro.fulltext.index import InvertedIndex
        from repro.fulltext.querylang import parse_contains

        column = self.column.compile(layout)
        query = parse_contains(self.query_text)

        def evaluate(row: Sequence[Any], params: Dict[str, Any]) -> Any:
            text = column(row, params)
            if text is None:
                return None
            probe = InvertedIndex()
            probe.add_document(0, str(text))
            return 0 in query.evaluate(probe)

        return evaluate

    def substitute(self, mapping: Dict[ColumnId, ScalarExpr]) -> ScalarExpr:
        replaced = self.column.substitute(mapping)
        if isinstance(replaced, ColumnRef):
            return ContainsPredicate(replaced, self.query_text)
        return self

    def sql_key(self) -> tuple:
        return ("contains", self.column.sql_key(), self.query_text)

    def __repr__(self) -> str:
        return f"CONTAINS({self.column!r}, {self.query_text!r})"


class ScalarSubquery(ScalarExpr):
    """An uncorrelated scalar subquery, evaluated once per execution."""

    def __init__(self, plan: Any, type: Optional[SqlType] = None):
        #: a logical plan (optimized and executed lazily by the executor)
        self.plan = plan
        self.type = type if type is not None else varchar()
        self._cache: Dict[int, Any] = {}

    def references(self) -> frozenset[ColumnId]:
        return frozenset()

    def compile(self, layout: Layout) -> Compiled:
        raise ExecutionError(
            "scalar subqueries must be evaluated by the executor "
            "(bind-time rewrite missing)"
        )

    def sql_key(self) -> tuple:
        return ("scalar_subquery", id(self.plan))

    def __repr__(self) -> str:
        return "ScalarSubquery(...)"


# -- predicate utilities -----------------------------------------------------

def conjuncts(expr: Optional[ScalarExpr]) -> list[ScalarExpr]:
    """Split a predicate into AND-ed conjuncts (the paper's
    splitting-predicates rule operates on these)."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def conjoin(parts: Iterable[ScalarExpr]) -> Optional[ScalarExpr]:
    """AND conjuncts back together (the merging-predicates rule)."""
    result: Optional[ScalarExpr] = None
    for part in parts:
        result = part if result is None else BinaryOp("AND", result, part)
    return result
