"""Relational algebra IR.

"At the beginning of optimization, both local and distributed queries
are algebrized in the same way, i.e., the same logical operator is used
no matter the data source is local or remote, except that the remote
data sources are tagged with a flag indicating their level of
remotability" (Section 4.1.3).  This package holds that shared IR:

* :mod:`expressions` — scalar expressions over *column identities*
  (stable integer ids assigned at bind time, independent of operator
  layout, so exploration rules can reorder operators freely);
* :mod:`logical` — logical operators (Get, Select, Project, Join,
  Aggregate, Sort, UnionAll, Top, Values), each a unique node in the
  query tree as Cascades requires.
"""

from repro.algebra.expressions import (
    ColumnId,
    ColumnDef,
    ScalarExpr,
    Literal,
    ColumnRef,
    Parameter,
    BinaryOp,
    NotOp,
    IsNullOp,
    InListOp,
    LikeOp,
    FuncCall,
    AggregateCall,
    ContainsPredicate,
    ScalarSubquery,
    conjuncts,
    conjoin,
)
from repro.algebra.logical import (
    LogicalOp,
    TableRef,
    Get,
    Select,
    Project,
    Join,
    JoinKind,
    Aggregate,
    Sort,
    SortKeySpec,
    UnionAll,
    Top,
    Values,
    EmptyTable,
    ProviderRowset,
)

__all__ = [
    "ColumnId",
    "ColumnDef",
    "ScalarExpr",
    "Literal",
    "ColumnRef",
    "Parameter",
    "BinaryOp",
    "NotOp",
    "IsNullOp",
    "InListOp",
    "LikeOp",
    "FuncCall",
    "AggregateCall",
    "ContainsPredicate",
    "ScalarSubquery",
    "conjuncts",
    "conjoin",
    "LogicalOp",
    "TableRef",
    "Get",
    "Select",
    "Project",
    "Join",
    "JoinKind",
    "Aggregate",
    "Sort",
    "SortKeySpec",
    "UnionAll",
    "Top",
    "Values",
    "EmptyTable",
    "ProviderRowset",
]
