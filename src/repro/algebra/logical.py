"""Logical operators.

"Unlike some other optimizers, each operator is represented as a unique
node in a query tree.  For example, 'A JOIN B JOIN C' would be
represented as two 'joins' and three 'get' operations" (Section 4.1.1).

Every operator knows its output column ids; inputs are other logical
operators before memo insertion and group numbers afterwards (the memo
replaces children with group references so "rules ... match patterns
without comparing whole trees").
"""

from __future__ import annotations

import enum
from typing import Any, Optional, Sequence

from repro.algebra.expressions import (
    AggregateCall,
    ColumnDef,
    ColumnId,
    ScalarExpr,
)


class TableRef:
    """A resolved table reference: which server, which table, how remote.

    ``server`` is None for local tables; otherwise the linked server
    name, and ``provider`` carries the linked server's capabilities —
    the "flag indicating their level of remotability" of Section 4.1.3.
    """

    __slots__ = (
        "server",
        "database",
        "schema_name",
        "table_name",
        "alias",
        "columns",
        "provider",
        "local_table",
        "remote_info",
        "check_domains",
        "fulltext",
    )

    def __init__(
        self,
        table_name: str,
        alias: str,
        columns: Sequence[ColumnDef],
        server: Optional[str] = None,
        database: Optional[str] = None,
        schema_name: Optional[str] = None,
        provider: Optional[Any] = None,
        local_table: Optional[Any] = None,
        remote_info: Optional[Any] = None,
        check_domains: Optional[dict[str, Any]] = None,
        fulltext: Optional[Any] = None,
    ):
        self.table_name = table_name
        self.alias = alias
        self.columns = tuple(columns)
        self.server = server
        self.database = database
        self.schema_name = schema_name
        #: the LinkedServer (or None for local tables)
        self.provider = provider
        #: the storage Table when local
        self.local_table = local_table
        #: RemoteTableInfo when remote
        self.remote_info = remote_info
        #: column name (lower) -> IntervalSet from CHECK constraints
        self.check_domains = dict(check_domains or {})
        #: FullTextBinding when a full-text index covers this table
        self.fulltext = fulltext

    @property
    def is_remote(self) -> bool:
        return self.server is not None

    @property
    def qualified_name(self) -> str:
        parts = [self.server, self.database, self.schema_name, self.table_name]
        return ".".join(p for p in parts if p)

    def column_ids(self) -> tuple[ColumnId, ...]:
        return tuple(c.cid for c in self.columns)

    def __repr__(self) -> str:
        return f"TableRef({self.qualified_name} AS {self.alias})"


class LogicalOp:
    """Base logical operator."""

    #: child operators (or Group objects once inside the memo)
    inputs: tuple[Any, ...] = ()

    def output_ids(self) -> tuple[ColumnId, ...]:
        """Ordered ids of the columns this operator produces."""
        raise NotImplementedError

    def local_references(self) -> frozenset[ColumnId]:
        """Ids referenced by this operator's own expressions."""
        return frozenset()

    def with_inputs(self, inputs: Sequence[Any]) -> "LogicalOp":
        """A copy with different children (memo insertion)."""
        raise NotImplementedError

    def op_key(self) -> tuple:
        """Structural identity excluding children (memo dedup combines
        this with child group numbers)."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


class Get(LogicalOp):
    """Scan of a base table (local or remote)."""

    def __init__(self, table: TableRef):
        self.table = table
        self.inputs = ()

    def output_ids(self) -> tuple[ColumnId, ...]:
        return self.table.column_ids()

    def with_inputs(self, inputs: Sequence[Any]) -> "Get":
        assert not inputs
        return self

    def op_key(self) -> tuple:
        return ("Get", self.table.qualified_name, self.table.alias,
                self.table.column_ids())

    def __repr__(self) -> str:
        return f"Get({self.table.qualified_name})"


class Select(LogicalOp):
    """Filter rows by a predicate (a *restriction*)."""

    def __init__(self, child: Any, predicate: ScalarExpr):
        self.inputs = (child,)
        self.predicate = predicate

    @property
    def child(self) -> Any:
        return self.inputs[0]

    def output_ids(self) -> tuple[ColumnId, ...]:
        return self.child.output_ids()

    def local_references(self) -> frozenset[ColumnId]:
        return self.predicate.references()

    def with_inputs(self, inputs: Sequence[Any]) -> "Select":
        return Select(inputs[0], self.predicate)

    def op_key(self) -> tuple:
        return ("Select", self.predicate.sql_key())

    def __repr__(self) -> str:
        return f"Select({self.predicate!r})"


class Project(LogicalOp):
    """Projection: keeps/renames columns and computes new ones.

    ``outputs`` is an ordered list of (cid, expr) pairs; pass-through
    columns use a ColumnRef expr with the same cid.
    """

    def __init__(
        self,
        child: Any,
        outputs: Sequence[tuple[ColumnId, ScalarExpr]],
        column_defs: Sequence[ColumnDef],
    ):
        self.inputs = (child,)
        self.outputs = tuple(outputs)
        self.column_defs = tuple(column_defs)

    @property
    def child(self) -> Any:
        return self.inputs[0]

    def output_ids(self) -> tuple[ColumnId, ...]:
        return tuple(cid for cid, __ in self.outputs)

    def local_references(self) -> frozenset[ColumnId]:
        refs: frozenset[ColumnId] = frozenset()
        for __, expr in self.outputs:
            refs |= expr.references()
        return refs

    def with_inputs(self, inputs: Sequence[Any]) -> "Project":
        return Project(inputs[0], self.outputs, self.column_defs)

    def op_key(self) -> tuple:
        return (
            "Project",
            tuple((cid, expr.sql_key()) for cid, expr in self.outputs),
        )

    def __repr__(self) -> str:
        cols = ", ".join(f"#{cid}" for cid, __ in self.outputs)
        return f"Project({cols})"


class JoinKind(enum.Enum):
    INNER = "inner"
    LEFT_OUTER = "left_outer"
    CROSS = "cross"
    SEMI = "semi"
    ANTI_SEMI = "anti_semi"


class Join(LogicalOp):
    """Binary join.  Semi/anti-semi joins come from subquery unrolling
    (Section 4.1.4) and have no direct SQL corollary — the decoder must
    pick a different alternative from the group when remoting."""

    def __init__(
        self,
        left: Any,
        right: Any,
        kind: JoinKind,
        condition: Optional[ScalarExpr] = None,
    ):
        self.inputs = (left, right)
        self.kind = kind
        self.condition = condition

    @property
    def left(self) -> Any:
        return self.inputs[0]

    @property
    def right(self) -> Any:
        return self.inputs[1]

    def output_ids(self) -> tuple[ColumnId, ...]:
        left_ids = self.left.output_ids()
        if self.kind in (JoinKind.SEMI, JoinKind.ANTI_SEMI):
            return tuple(left_ids)
        return tuple(left_ids) + tuple(self.right.output_ids())

    def local_references(self) -> frozenset[ColumnId]:
        if self.condition is None:
            return frozenset()
        return self.condition.references()

    def with_inputs(self, inputs: Sequence[Any]) -> "Join":
        return Join(inputs[0], inputs[1], self.kind, self.condition)

    def op_key(self) -> tuple:
        return (
            "Join",
            self.kind.value,
            self.condition.sql_key() if self.condition is not None else None,
        )

    def __repr__(self) -> str:
        return f"Join[{self.kind.value}]({self.condition!r})"


class Aggregate(LogicalOp):
    """GROUP BY + aggregate computation."""

    def __init__(
        self,
        child: Any,
        group_by: Sequence[ColumnId],
        aggregates: Sequence[AggregateCall],
    ):
        self.inputs = (child,)
        self.group_by = tuple(group_by)
        self.aggregates = tuple(aggregates)

    @property
    def child(self) -> Any:
        return self.inputs[0]

    def output_ids(self) -> tuple[ColumnId, ...]:
        return self.group_by + tuple(a.output_cid for a in self.aggregates)

    def local_references(self) -> frozenset[ColumnId]:
        refs = frozenset(self.group_by)
        for aggregate in self.aggregates:
            refs |= aggregate.references()
        return refs

    def with_inputs(self, inputs: Sequence[Any]) -> "Aggregate":
        return Aggregate(inputs[0], self.group_by, self.aggregates)

    def op_key(self) -> tuple:
        return (
            "Aggregate",
            self.group_by,
            tuple(a.sql_key() for a in self.aggregates),
        )

    def __repr__(self) -> str:
        return f"Aggregate(by={self.group_by}, {list(self.aggregates)!r})"


class SortKeySpec:
    """One ORDER BY key."""

    __slots__ = ("cid", "ascending")

    def __init__(self, cid: ColumnId, ascending: bool = True):
        self.cid = cid
        self.ascending = ascending

    def key(self) -> tuple:
        return (self.cid, self.ascending)

    def __repr__(self) -> str:
        return f"#{self.cid}{'' if self.ascending else ' DESC'}"


class Sort(LogicalOp):
    """ORDER BY (also used as the logical form the sort enforcer
    implements)."""

    def __init__(self, child: Any, keys: Sequence[SortKeySpec]):
        self.inputs = (child,)
        self.keys = tuple(keys)

    @property
    def child(self) -> Any:
        return self.inputs[0]

    def output_ids(self) -> tuple[ColumnId, ...]:
        return self.child.output_ids()

    def local_references(self) -> frozenset[ColumnId]:
        return frozenset(k.cid for k in self.keys)

    def with_inputs(self, inputs: Sequence[Any]) -> "Sort":
        return Sort(inputs[0], self.keys)

    def op_key(self) -> tuple:
        return ("Sort", tuple(k.key() for k in self.keys))

    def __repr__(self) -> str:
        return f"Sort({list(self.keys)!r})"


class UnionAll(LogicalOp):
    """N-ary UNION ALL — the shape of partitioned views (Section 4.1.5).

    Each branch has its own column ids; ``output_defs`` defines the
    union's output ids and ``branch_maps`` maps each branch's ids to
    them.
    """

    def __init__(
        self,
        children: Sequence[Any],
        output_defs: Sequence[ColumnDef],
        branch_maps: Sequence[dict[ColumnId, ColumnId]],
    ):
        self.inputs = tuple(children)
        self.output_defs = tuple(output_defs)
        #: per-branch: output cid -> branch cid
        self.branch_maps = tuple(dict(m) for m in branch_maps)

    def output_ids(self) -> tuple[ColumnId, ...]:
        return tuple(d.cid for d in self.output_defs)

    def with_inputs(self, inputs: Sequence[Any]) -> "UnionAll":
        return UnionAll(inputs, self.output_defs, self.branch_maps)

    def op_key(self) -> tuple:
        return (
            "UnionAll",
            tuple(d.cid for d in self.output_defs),
            tuple(tuple(sorted(m.items())) for m in self.branch_maps),
        )

    def __repr__(self) -> str:
        return f"UnionAll({len(self.inputs)} branches)"


class Top(LogicalOp):
    """TOP n."""

    def __init__(self, child: Any, count: int):
        self.inputs = (child,)
        self.count = count

    @property
    def child(self) -> Any:
        return self.inputs[0]

    def output_ids(self) -> tuple[ColumnId, ...]:
        return self.child.output_ids()

    def with_inputs(self, inputs: Sequence[Any]) -> "Top":
        return Top(inputs[0], self.count)

    def op_key(self) -> tuple:
        return ("Top", self.count)

    def __repr__(self) -> str:
        return f"Top({self.count})"


class Values(LogicalOp):
    """A constant table (VALUES lists, single-row SELECT w/o FROM)."""

    def __init__(
        self,
        rows: Sequence[Sequence[ScalarExpr]],
        column_defs: Sequence[ColumnDef],
    ):
        self.inputs = ()
        self.rows = tuple(tuple(r) for r in rows)
        self.column_defs = tuple(column_defs)

    def output_ids(self) -> tuple[ColumnId, ...]:
        return tuple(d.cid for d in self.column_defs)

    def with_inputs(self, inputs: Sequence[Any]) -> "Values":
        return self

    def op_key(self) -> tuple:
        return (
            "Values",
            tuple(
                tuple(expr.sql_key() for expr in row) for row in self.rows
            ),
            tuple(d.cid for d in self.column_defs),
        )

    def __repr__(self) -> str:
        return f"Values({len(self.rows)} rows)"


class EmptyTable(LogicalOp):
    """The logical empty table static pruning reduces to (Section 4.1.5:
    "we can reduce the operator to a logical empty table operator")."""

    def __init__(self, column_defs: Sequence[ColumnDef]):
        self.inputs = ()
        self.column_defs = tuple(column_defs)

    def output_ids(self) -> tuple[ColumnId, ...]:
        return tuple(d.cid for d in self.column_defs)

    def with_inputs(self, inputs: Sequence[Any]) -> "EmptyTable":
        return self

    def op_key(self) -> tuple:
        return ("EmptyTable", tuple(d.cid for d in self.column_defs))

    def __repr__(self) -> str:
        return "EmptyTable"


class ProviderRowset(LogicalOp):
    """An opaque provider-served rowset: OPENROWSET over a command or
    named rowset, OPENQUERY pass-through, or the paper's MakeTable TVF.

    The DHQP cannot decompose these — it executes the command (or opens
    the named rowset) verbatim and consumes the result, providing any
    further query processing itself (Section 3.3's pass-through rule).
    """

    def __init__(
        self,
        label: str,
        datasource: Any,
        column_defs: Sequence[ColumnDef],
        command_text: Optional[str] = None,
        rowset_name: Optional[str] = None,
        cardinality_hint: float = 1000.0,
    ):
        self.inputs = ()
        self.label = label
        self.datasource = datasource
        self.column_defs = tuple(column_defs)
        self.command_text = command_text
        self.rowset_name = rowset_name
        self.cardinality_hint = cardinality_hint

    def output_ids(self) -> tuple[ColumnId, ...]:
        return tuple(d.cid for d in self.column_defs)

    def with_inputs(self, inputs: Sequence[Any]) -> "ProviderRowset":
        return self

    def op_key(self) -> tuple:
        return (
            "ProviderRowset",
            self.label,
            id(self.datasource),
            self.command_text,
            self.rowset_name,
            tuple(d.cid for d in self.column_defs),
        )

    def __repr__(self) -> str:
        what = self.command_text or self.rowset_name or ""
        return f"ProviderRowset({self.label}, {what[:40]!r})"
