"""OLE DB component data model (Section 3).

The object hierarchy of Figure 3 — Data Source Object (DSO) → Session →
Command → Rowset — plus the common extensions the DHQP consumes:

* property sets describing capabilities (``DBPROP_SQLSUPPORT`` dialect
  levels, index/statistics support, decoder hints such as date literal
  formats, Section 4.1.3's "additional properties"),
* schema rowsets (TABLES, COLUMNS, INDEXES, TABLES_INFO cardinality),
* histogram rowsets (Section 3.2.4),
* ISAM navigation (IRowsetIndex seek/range, IRowsetLocate bookmarks),
* row objects and chaptered rowsets for heterogeneous data
  (Section 3.2.3).

Python ABCs replace COM vtables; a provider "implements an interface"
by advertising its name in :meth:`DataSource.interfaces`, which is what
the Table 2 conformance experiment introspects.
"""

from repro.oledb.properties import (
    SqlSupportLevel,
    ProviderCapabilities,
    PropertySet,
    DBPROP_SQLSUPPORT,
    DBPROP_NESTED_SELECT,
    DBPROP_PARALLEL_SCAN,
    DBPROP_DATE_LITERAL_FORMAT,
)
from repro.oledb.interfaces import (
    IDB_INITIALIZE,
    IDB_CREATE_SESSION,
    IDB_PROPERTIES,
    IDB_INFO,
    IDB_SCHEMA_ROWSET,
    IOPEN_ROWSET,
    IDB_CREATE_COMMAND,
    ICOMMAND,
    IROWSET,
    IROWSET_INDEX,
    IROWSET_LOCATE,
    MANDATORY_DSO_INTERFACES,
    MANDATORY_SESSION_INTERFACES,
)
from repro.oledb.rowset import Rowset, MaterializedRowset
from repro.oledb.row_object import RowObject, ChapteredRowset
from repro.oledb.datasource import DataSource
from repro.oledb.session import Session
from repro.oledb.command import Command
from repro.oledb.schema_rowsets import (
    SCHEMA_TABLES,
    SCHEMA_COLUMNS,
    SCHEMA_INDEXES,
    SCHEMA_TABLES_INFO,
    tables_rowset,
    columns_rowset,
    indexes_rowset,
    tables_info_rowset,
)

__all__ = [
    "SqlSupportLevel",
    "ProviderCapabilities",
    "PropertySet",
    "DBPROP_SQLSUPPORT",
    "DBPROP_NESTED_SELECT",
    "DBPROP_PARALLEL_SCAN",
    "DBPROP_DATE_LITERAL_FORMAT",
    "IDB_INITIALIZE",
    "IDB_CREATE_SESSION",
    "IDB_PROPERTIES",
    "IDB_INFO",
    "IDB_SCHEMA_ROWSET",
    "IOPEN_ROWSET",
    "IDB_CREATE_COMMAND",
    "ICOMMAND",
    "IROWSET",
    "IROWSET_INDEX",
    "IROWSET_LOCATE",
    "MANDATORY_DSO_INTERFACES",
    "MANDATORY_SESSION_INTERFACES",
    "Rowset",
    "MaterializedRowset",
    "RowObject",
    "ChapteredRowset",
    "DataSource",
    "Session",
    "Command",
    "SCHEMA_TABLES",
    "SCHEMA_COLUMNS",
    "SCHEMA_INDEXES",
    "SCHEMA_TABLES_INFO",
    "tables_rowset",
    "columns_rowset",
    "indexes_rowset",
    "tables_info_rowset",
]
