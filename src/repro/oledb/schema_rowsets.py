"""Schema rowsets: metadata returned *as rowsets* (Section 3.1.2).

"Rowsets are also used to return metadata, such as database schema,
supported data type information, extended column information and
statistics."  We implement the four rowsets the DHQP consumes:

* TABLES — one row per table,
* COLUMNS — one row per column,
* INDEXES — one row per index key column,
* TABLES_INFO — per-table cardinality (Section 3.2.4), plus
* histogram rowsets built from :class:`~repro.stats.histogram.Histogram`.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.oledb.rowset import MaterializedRowset
from repro.stats.histogram import Histogram
from repro.storage.table import Table
from repro.types.datatypes import BIGINT, BOOL, FLOAT, INT, varchar
from repro.types.schema import Column, Schema

SCHEMA_TABLES = Schema(
    [
        Column("TABLE_CATALOG", varchar()),
        Column("TABLE_SCHEMA", varchar()),
        Column("TABLE_NAME", varchar(), nullable=False),
        Column("TABLE_TYPE", varchar(), nullable=False),
    ]
)

SCHEMA_COLUMNS = Schema(
    [
        Column("TABLE_NAME", varchar(), nullable=False),
        Column("COLUMN_NAME", varchar(), nullable=False),
        Column("ORDINAL_POSITION", INT, nullable=False),
        Column("DATA_TYPE", varchar(), nullable=False),
        Column("IS_NULLABLE", BOOL, nullable=False),
    ]
)

SCHEMA_INDEXES = Schema(
    [
        Column("TABLE_NAME", varchar(), nullable=False),
        Column("INDEX_NAME", varchar(), nullable=False),
        Column("UNIQUE", BOOL, nullable=False),
        Column("ORDINAL_POSITION", INT, nullable=False),
        Column("COLUMN_NAME", varchar(), nullable=False),
    ]
)

SCHEMA_TABLES_INFO = Schema(
    [
        Column("TABLE_NAME", varchar(), nullable=False),
        Column("CARDINALITY", BIGINT, nullable=False),
        Column("AVG_ROW_WIDTH", FLOAT, nullable=False),
        Column("SCHEMA_VERSION", INT, nullable=False),
    ]
)

# CHECK_CONSTRAINTS is a standard OLE DB schema rowset; we expose the
# symbolic domain (an IntervalSet) as a variant column so the DHQP can
# prune partitioned-view members (Section 4.1.5).  SQL_TEXT carries the
# human-readable constraint body.
SCHEMA_CHECK_CONSTRAINTS = Schema(
    [
        Column("TABLE_NAME", varchar(), nullable=False),
        Column("CONSTRAINT_NAME", varchar(), nullable=False),
        Column("COLUMN_NAME", varchar()),
        Column("DOMAIN", varchar()),  # variant: IntervalSet object
        Column("SQL_TEXT", varchar()),
    ]
)

SCHEMA_HISTOGRAM = Schema(
    [
        Column("RANGE_HI_KEY", varchar()),
        Column("EQ_ROWS", FLOAT, nullable=False),
        Column("RANGE_ROWS", FLOAT, nullable=False),
        Column("DISTINCT_RANGE_ROWS", FLOAT, nullable=False),
    ]
)


def tables_rowset(
    tables: Iterable[tuple[str, str, Table]],
    catalog_name: Optional[str] = None,
) -> MaterializedRowset:
    """Build a TABLES schema rowset from (schema_name, type, table)."""
    rows = [
        (catalog_name, schema_name, table.name, table_type)
        for schema_name, table_type, table in tables
    ]
    return MaterializedRowset(SCHEMA_TABLES, rows)


def columns_rowset(tables: Iterable[Table]) -> MaterializedRowset:
    rows = []
    for table in tables:
        for ordinal, column in enumerate(table.schema):
            rows.append(
                (
                    table.name,
                    column.name,
                    ordinal + 1,
                    repr(column.type),
                    column.nullable,
                )
            )
    return MaterializedRowset(SCHEMA_COLUMNS, rows)


def indexes_rowset(tables: Iterable[Table]) -> MaterializedRowset:
    rows = []
    for table in tables:
        for index in table.indexes.values():
            for ordinal, column_name in enumerate(index.metadata.key_columns):
                rows.append(
                    (
                        table.name,
                        index.metadata.name,
                        index.metadata.unique,
                        ordinal + 1,
                        column_name,
                    )
                )
    return MaterializedRowset(SCHEMA_INDEXES, rows)


def tables_info_rowset(tables: Iterable[Table]) -> MaterializedRowset:
    """Cardinality rowset: what the optimizer reads for remote row counts."""
    rows = [
        (
            table.name,
            table.row_count,
            table.statistics.avg_row_width,
            table.schema_version,
        )
        for table in tables
    ]
    return MaterializedRowset(SCHEMA_TABLES_INFO, rows)


def check_constraints_rowset(tables: Iterable[Table]) -> MaterializedRowset:
    """CHECK constraints with symbolic domains, for partition pruning."""
    rows = []
    for table in tables:
        for constraint in table.check_constraints():
            rows.append(
                (
                    table.name,
                    constraint.name,
                    constraint.column_name,
                    constraint.domain,
                    constraint.sql_text,
                )
            )
    return MaterializedRowset(SCHEMA_CHECK_CONSTRAINTS, rows)


def histogram_rowset(histogram: Histogram) -> MaterializedRowset:
    """Serialize a histogram into the standard histogram rowset shape."""
    rows = [
        (
            bucket.upper_bound,
            bucket.equal_rows,
            bucket.range_rows,
            bucket.distinct_range,
        )
        for bucket in histogram.buckets
    ]
    return MaterializedRowset(
        SCHEMA_HISTOGRAM, rows, properties={"null_rows": histogram.null_rows}
    )


def histogram_from_rowset(rowset: MaterializedRowset) -> Histogram:
    """Reconstruct a histogram on the consumer side of the wire."""
    from repro.stats.histogram import HistogramBucket

    buckets = [
        HistogramBucket(upper, eq_rows, range_rows, distinct_range)
        for upper, eq_rows, range_rows, distinct_range in rowset
    ]
    return Histogram(buckets, rowset.properties.get("null_rows", 0.0))
