"""Row objects and chaptered rowsets (Section 3.2.3).

"For dissimilar results, such as e-mail messages, calendar entries, and
spreadsheet data, which may contain different columns, a single rowset
becomes a limitation. ... OLE DB defines a row object.  Each row object
represents an individual row instance ... Consumers can navigate
through a set of rows viewing the common set of columns through the
rowset abstraction, and then obtain a row object for a particular row
in order to view row-specific columns."

:class:`RowObject` carries the common columns positionally plus a bag
of row-specific columns; :class:`ChapteredRowset` models containment
hierarchies (e.g. a mail folder containing messages containing
attachments) as parent rows with child rowsets per chapter.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Optional

from repro.errors import NotSupportedError
from repro.oledb.rowset import Rowset
from repro.types.schema import Schema


class RowObject:
    """One heterogeneous row: common columns + row-specific extras."""

    __slots__ = ("schema", "values", "extra_columns")

    def __init__(
        self,
        schema: Schema,
        values: tuple[Any, ...],
        extra_columns: Optional[Dict[str, Any]] = None,
    ):
        self.schema = schema
        self.values = values
        self.extra_columns = dict(extra_columns or {})

    def common(self, name: str) -> Any:
        """A common column by name."""
        return self.values[self.schema.ordinal_of(name)]

    def specific(self, name: str) -> Any:
        """A row-specific column; raises if this row lacks it."""
        if name not in self.extra_columns:
            raise NotSupportedError(
                f"row has no row-specific column {name!r}; available: "
                f"{sorted(self.extra_columns)}"
            )
        return self.extra_columns[name]

    def column_names(self) -> list[str]:
        return list(self.schema.names) + sorted(self.extra_columns)

    def __repr__(self) -> str:
        return f"RowObject({self.values!r}, +{sorted(self.extra_columns)})"


class ChapteredRowset(Rowset):
    """A rowset whose rows own child rowsets, keyed by chapter name.

    Models tree-structured sources ("hierarchies of row and rowset
    objects ... via chaptered rowsets").  Iteration yields the common
    columns like an ordinary rowset, so generic consumers work
    unchanged; hierarchy-aware consumers call :meth:`row_objects` and
    :meth:`chapter`.
    """

    def __init__(
        self,
        schema: Schema,
        row_objects: Iterable[RowObject],
        chapters: Optional[Dict[int, Dict[str, "ChapteredRowset"]]] = None,
    ):
        self._row_objects = list(row_objects)
        self._chapters = chapters or {}
        super().__init__(schema, (ro.values for ro in self._row_objects))

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return (ro.values for ro in self._row_objects)

    def row_objects(self) -> Iterator[RowObject]:
        """Navigate rows as full row objects."""
        return iter(self._row_objects)

    def chapter(self, row_index: int, name: str) -> "ChapteredRowset":
        """The child rowset of chapter ``name`` under row ``row_index``."""
        row_chapters = self._chapters.get(row_index, {})
        if name not in row_chapters:
            raise NotSupportedError(
                f"row {row_index} has no chapter {name!r}; available: "
                f"{sorted(row_chapters)}"
            )
        return row_chapters[name]

    def chapter_names(self, row_index: int) -> list[str]:
        return sorted(self._chapters.get(row_index, {}))

    def __len__(self) -> int:
        return len(self._row_objects)

    def __repr__(self) -> str:
        return f"ChapteredRowset({len(self._row_objects)} rows)"
