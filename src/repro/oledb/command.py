"""Command objects (Section 3.2.1).

"The command object encapsulates the functions that enable a consumer
to invoke the execution of data definition or data manipulation
statements" — set text, optionally bind parameters, execute, receive a
rowset.  The language of the text is entirely provider-defined
(Table 1): T-SQL for the SQL Server provider, the Index Server query
language for the full-text provider, and so on.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.errors import ProviderError
from repro.oledb.rowset import Rowset


class Command:
    """Base command.  Providers implement :meth:`_execute`."""

    def __init__(self, session: Any):
        self.session = session
        self.text: Optional[str] = None
        self.parameters: list[Any] = []

    def set_text(self, text: str) -> None:
        """Set the command text (query or DML in the provider's language)."""
        self.text = text

    def bind_parameters(self, values: Sequence[Any]) -> None:
        """Bind positional parameter values (the remote parameterization
        rule of Section 4.1.2 relies on this)."""
        self.parameters = list(values)

    def execute(self) -> Rowset:
        """Execute the command; returns the result rowset.

        Commands over a network channel charge the outgoing text before
        executing.
        """
        if self.text is None:
            raise ProviderError("command has no text")
        channel = self.session.datasource.channel
        rendered = self._render_text()
        channel.send_command(rendered)
        return self._execute(rendered)

    def _render_text(self) -> str:
        """Substitute bound parameters into the text.

        Parameters are marked ``?`` positionally.  Values are rendered
        as SQL literals; providers with exotic literal syntax override.
        """
        assert self.text is not None
        if not self.parameters:
            return self.text
        parts = self.text.split("?")
        if len(parts) - 1 != len(self.parameters):
            raise ProviderError(
                f"command has {len(parts) - 1} parameter markers but "
                f"{len(self.parameters)} bound values"
            )
        out = [parts[0]]
        for value, tail in zip(self.parameters, parts[1:]):
            out.append(self._render_literal(value))
            out.append(tail)
        return "".join(out)

    @staticmethod
    def _render_literal(value: Any) -> str:
        from repro.types.datatypes import infer_type

        return infer_type(value).render_literal(value)

    def _execute(self, text: str) -> Rowset:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.text!r})"
