"""Sessions: transactional scope + rowset/command factory (Figure 3).

The session exposes ``IOpenRowset`` (open a rowset on a table, index,
or histogram — the paper's Table 2 lists exactly these three),
``IDBCreateCommand`` for query-capable providers, ``IDBSchemaRowset``
for metadata, and transaction enlistment for providers that support it.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.errors import NotSupportedError
from repro.oledb.interfaces import (
    IDB_CREATE_COMMAND,
    IDB_SCHEMA_ROWSET,
    IROWSET_INDEX,
    IROWSET_LOCATE,
)
from repro.oledb.rowset import MaterializedRowset, Rowset
from repro.storage.transactions import ResourceManager
from repro.types.intervals import Interval


class Session:
    """Base session.  Providers override the ``IOpenRowset`` family and,
    when capable, command creation, schema rowsets, index navigation,
    bookmark fetch, histogram rowsets, and transactions."""

    def __init__(self, datasource: Any):
        self.datasource = datasource

    # -- interface discovery ------------------------------------------------
    def interfaces(self) -> frozenset[str]:
        return self.datasource.interfaces()

    def supports_interface(self, name: str) -> bool:
        return name in self.interfaces()

    def _require(self, interface: str) -> None:
        if not self.supports_interface(interface):
            raise NotSupportedError(
                f"{self.datasource.provider_name} does not implement "
                f"{interface}"
            )

    # -- IOpenRowset -----------------------------------------------------------
    def open_rowset(self, table_name: str, **kwargs: Any) -> Rowset:
        """Open a rowset over a named table."""
        raise NotImplementedError

    def open_index_rowset(
        self,
        table_name: str,
        index_name: str,
        seek_key: Optional[Sequence[Any]] = None,
        range_interval: Optional[Interval] = None,
    ) -> Rowset:
        """Open a rowset over an index (IRowsetIndex seek / set-range).

        Yields (key columns..., bookmark) rows; consumers fetch base
        rows via :meth:`fetch_by_bookmarks`.
        """
        self._require(IROWSET_INDEX)
        raise NotImplementedError

    def fetch_by_bookmarks(
        self, table_name: str, bookmarks: Sequence[int]
    ) -> Rowset:
        """IRowsetLocate: fetch base-table rows by bookmark."""
        self._require(IROWSET_LOCATE)
        raise NotImplementedError

    def open_histogram_rowset(
        self, table_name: str, column_name: str
    ) -> MaterializedRowset:
        """Histogram rowset (Section 3.2.4 statistics extension)."""
        raise NotSupportedError(
            f"{self.datasource.provider_name} does not expose histogram "
            "rowsets"
        )

    # -- IDBSchemaRowset ---------------------------------------------------------
    def schema_rowset(self, which: str) -> MaterializedRowset:
        """Metadata rowsets: TABLES, COLUMNS, INDEXES, TABLES_INFO."""
        self._require(IDB_SCHEMA_ROWSET)
        raise NotImplementedError

    # -- IDBCreateCommand -----------------------------------------------------
    def create_command(self) -> "Command":  # noqa: F821
        self._require(IDB_CREATE_COMMAND)
        return self._make_command()

    def _make_command(self):
        raise NotImplementedError

    # -- transactions ------------------------------------------------------------
    def begin_transaction(self) -> ResourceManager:
        """Start a local transaction branch enlistable with the DTC."""
        raise NotSupportedError(
            f"{self.datasource.provider_name} does not support transactions"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.datasource.provider_name})"
