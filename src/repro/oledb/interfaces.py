"""OLE DB interface names.

COM interfaces become string identifiers; a provider advertises the set
it implements and the DHQP plans only within that set.  Table 2 of the
paper marks which interfaces are mandatory on the DSO and the session;
the conformance experiment (E3) checks providers against these lists.
"""

from __future__ import annotations

# Data Source Object interfaces
IDB_INITIALIZE = "IDBInitialize"
IDB_CREATE_SESSION = "IDBCreateSession"
IDB_PROPERTIES = "IDBProperties"
IDB_INFO = "IDBInfo"

# Session interfaces
IDB_SCHEMA_ROWSET = "IDBSchemaRowset"
IOPEN_ROWSET = "IOpenRowset"
IDB_CREATE_COMMAND = "IDBCreateCommand"

# Command / rowset interfaces
ICOMMAND = "ICommand"
IROWSET = "IRowset"
IROWSET_INDEX = "IRowsetIndex"
IROWSET_LOCATE = "IRowsetLocate"

#: Table 2: mandatory DSO interfaces
MANDATORY_DSO_INTERFACES = frozenset(
    {IDB_INITIALIZE, IDB_CREATE_SESSION, IDB_PROPERTIES}
)

#: Table 2: mandatory session interfaces
MANDATORY_SESSION_INTERFACES = frozenset({IOPEN_ROWSET})

#: everything a fully capable provider may expose
ALL_INTERFACES = frozenset(
    {
        IDB_INITIALIZE,
        IDB_CREATE_SESSION,
        IDB_PROPERTIES,
        IDB_INFO,
        IDB_SCHEMA_ROWSET,
        IOPEN_ROWSET,
        IDB_CREATE_COMMAND,
        ICOMMAND,
        IROWSET,
        IROWSET_INDEX,
        IROWSET_LOCATE,
    }
)
