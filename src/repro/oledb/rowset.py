"""Rowsets: the unifying tabular abstraction (Section 3.1.2).

"A rowset is a multi-set of rows where each row has zero or more
columns of data. ... it is possible to layer components that consume or
produce data through the same abstraction."  Base-table providers,
query results, schema metadata, and full-text matches all flow through
:class:`Rowset`.

Rowsets are forward-only iterators with a schema.  When the underlying
provider supports bookmarks (``IRowsetLocate``), rows can be paired
with bookmarks via :meth:`iter_with_bookmarks`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

from repro.errors import NotSupportedError
from repro.types.schema import Schema


class Rowset:
    """A streaming rowset over an arbitrary row source."""

    def __init__(
        self,
        schema: Schema,
        rows: Iterable[tuple[Any, ...]],
        bookmarks: Optional[Iterable[int]] = None,
        properties: Optional[dict[str, Any]] = None,
    ):
        self.schema = schema
        self._rows = iter(rows)
        self._bookmarks = iter(bookmarks) if bookmarks is not None else None
        #: rowset properties (e.g. scrollability) a consumer may inspect
        self.properties = dict(properties or {})
        self._consumed = False

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        self._consumed = True
        return self._rows

    def iter_with_bookmarks(self) -> Iterator[tuple[int, tuple[Any, ...]]]:
        """Yield (bookmark, row); requires bookmark support."""
        if self._bookmarks is None:
            raise NotSupportedError("rowset does not expose bookmarks")
        self._consumed = True
        return zip(self._bookmarks, self._rows)

    @property
    def supports_bookmarks(self) -> bool:
        return self._bookmarks is not None

    def fetch_all(self) -> list[tuple[Any, ...]]:
        """Drain the rowset into a list (convenience for consumers)."""
        return list(self)

    def map(
        self, fn: Callable[[tuple[Any, ...]], tuple[Any, ...]], schema: Schema
    ) -> "Rowset":
        """A derived rowset applying ``fn`` to every row."""
        return Rowset(schema, (fn(row) for row in self))

    def __repr__(self) -> str:
        return f"Rowset({self.schema!r})"


class MaterializedRowset(Rowset):
    """A rowset backed by an in-memory list; re-iterable and countable.

    Used for schema rowsets, histogram rowsets, and spooled results.
    """

    def __init__(
        self,
        schema: Schema,
        rows: Sequence[tuple[Any, ...]],
        bookmarks: Optional[Sequence[int]] = None,
        properties: Optional[dict[str, Any]] = None,
    ):
        self.rows = list(rows)
        self._bookmark_list = list(bookmarks) if bookmarks is not None else None
        super().__init__(schema, self.rows, self._bookmark_list, properties)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.rows)

    def iter_with_bookmarks(self) -> Iterator[tuple[int, tuple[Any, ...]]]:
        if self._bookmark_list is None:
            raise NotSupportedError("rowset does not expose bookmarks")
        return zip(self._bookmark_list, self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"MaterializedRowset({len(self.rows)} rows, {self.schema!r})"
